//! Retargeting GPUPlanner to a different technology — the paper:
//! *"our framework can handle any memory and technology with little
//! effort. The designer only has to give the basic information of the
//! memory blocks."* This example slows the memory compiler down 15 %
//! (a low-leakage process corner) and shows how the map's plan and
//! the reachable frequencies change.
//!
//! ```text
//! cargo run --release --example custom_technology
//! ```

use g_gpu::planner::{GpuPlanner, Specification};
use g_gpu::tech::sram::{MemoryCompiler, SramParams};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The stock 65 nm low-power technology...
    let stock = Tech::l65();
    // ...and a corner with 15 % slower memories.
    let mut slow_params = SramParams::l65lp();
    slow_params.t_fixed *= 1.15;
    slow_params.t_word *= 1.15;
    slow_params.t_bit *= 1.15;
    let mut slow = Tech::l65();
    slow.memory_compiler = MemoryCompiler::new(slow_params);

    for (name, tech) in [("stock l65lp", stock), ("slow-memory corner", slow)] {
        let planner = GpuPlanner::new(tech);
        println!("{name}:");
        for freq in [500.0, 590.0, 667.0] {
            let spec = Specification::new(1, Mhz::new(freq));
            match planner.plan(&spec) {
                Ok(v) => println!(
                    "  {:>3.0} MHz: fmax {:>3.0}, {} divisions, {} pipelines, {:.2} mm2",
                    freq,
                    v.synthesis.fmax.map(|f| f.value()).unwrap_or(0.0),
                    v.plan.divisions.len(),
                    v.plan.pipelines.len(),
                    v.synthesis.stats.total_area().to_mm2(),
                ),
                Err(e) => println!("  {freq:>3.0} MHz: {e}"),
            }
        }
    }
    Ok(())
}
