//! Should you replace a RISC-V with a G-GPU? Runs a workload on both
//! simulated targets and reports the raw and per-area speed-ups — the
//! decision data of the paper's Figs. 5 and 6, for a workload mix you
//! choose.
//!
//! ```text
//! cargo run --release --example accelerator_vs_cpu [n]
//! ```

use g_gpu::kernels::{all, scaled_speedup};
use g_gpu::netlist::stats::design_stats;
use g_gpu::rtl::{generate, generate_riscv, GgpuConfig, RiscvConfig};
use g_gpu::tech::Tech;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1024);

    // Area ratio from the same technology models used for synthesis.
    let tech = Tech::l65();
    let riscv_area = design_stats(&generate_riscv(&RiscvConfig::default()), &tech)?.total_area();
    println!("workload size n = {n}\n");
    println!(
        "{:>14}  {:>10}  {:>9}  {:>9}  {:>10}  {:>10}  {:>11}",
        "kernel", "riscv cyc", "gpu 1cu", "speedup", "per-area", "sim wall", "sim cyc/s"
    );

    let mut total_cycles: u64 = 0;
    let mut total_wall = std::time::Duration::ZERO;
    for bench in all() {
        // Keep the heavy quadratic kernels at a laptop-friendly size.
        let n = match bench.name {
            "xcorr" | "parallel_sel" => n.min(512),
            _ => n,
        };
        let rv = bench.run_riscv(n.min(2048))?;
        let gpu = bench.run_gpu(n, 1)?;
        let speedup = scaled_speedup(rv.cycles, n.min(2048), gpu.cycles, n);
        let ggpu_area = design_stats(&generate(&GgpuConfig::with_cus(1)?)?, &tech)?.total_area();
        let per_area = speedup / (ggpu_area / riscv_area);
        total_cycles += gpu.cycles;
        total_wall += gpu.sim_wall;
        println!(
            "{:>14}  {:>10}  {:>9}  {:>8.1}x  {:>9.2}x  {:>8.1?}  {:>10.2e}",
            bench.name,
            rv.cycles,
            gpu.cycles,
            speedup,
            per_area,
            gpu.sim_wall,
            gpu.simulated_cycles_per_second()
        );
    }
    let total_rate = if total_wall.as_secs_f64() > 0.0 {
        total_cycles as f64 / total_wall.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "\nevent-driven simulator: {total_cycles} GPU cycles in {total_wall:.1?} \
         ({total_rate:.2e} simulated cycles/s host throughput)."
    );
    println!(
        "\nreading: >1x per-area means the accelerator outperforms simply \
         tiling the chip with RISC-V cores (paper Fig. 6)."
    );
    Ok(())
}
