//! Design-space exploration over the paper's 12 versions: for every
//! CU count and frequency point, show what the frequency map had to do
//! (which memories were divided, where pipelines were inserted) and
//! the resulting PPA — the paper's §III/§IV narrative end to end.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use g_gpu::planner::{paper_versions, GpuPlanner};
use g_gpu::tech::Tech;
use std::collections::BTreeMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let planner = GpuPlanner::new(Tech::l65());

    // Group the 12 versions by CU count so the frequency progression
    // reads like the paper's Table I.
    let mut by_cu: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for spec in paper_versions() {
        let version = planner.plan(&spec)?;
        let divisions = version.plan.divisions.len();
        let pipelines = version.plan.pipelines.len();
        let s = &version.synthesis;
        by_cu.entry(spec.compute_units).or_default().push(format!(
            "  @{:>3.0} MHz: {:>6.2} mm2, {:>4} macros, fmax {:>3.0}, {} division(s), {} pipeline(s)",
            spec.frequency.value(),
            s.stats.total_area().to_mm2(),
            s.stats.macro_count,
            s.fmax.map(|f| f.value()).unwrap_or(0.0),
            divisions,
            pipelines,
        ));
    }
    for (cus, lines) in &by_cu {
        println!("{cus} CU:");
        for line in lines {
            println!("{line}");
        }
    }

    // Show one full recipe in detail: the 667 MHz single-CU version.
    let spec = g_gpu::planner::Specification::new(1, g_gpu::tech::units::Mhz::new(667.0));
    let version = planner.plan(&spec)?;
    println!("\nrecipe for {}:", spec.version_name());
    for action in version.plan.actions() {
        println!("  {action}");
    }

    // The map also reports when a target is out of reach.
    let too_fast = g_gpu::planner::Specification::new(1, g_gpu::tech::units::Mhz::new(1200.0));
    match planner.plan(&too_fast) {
        Err(e) => println!("\n1.2 GHz request: {e}"),
        Ok(_) => println!("\n1.2 GHz request unexpectedly succeeded"),
    }
    Ok(())
}
