//! "I have X mm² and Y watts — what is the best G-GPU I can have?"
//! Uses [`GpuPlanner::best_within`] to search the version space under
//! PPA ceilings, the everyday question the paper's flow exists to
//! answer.
//!
//! ```text
//! cargo run --release --example budget_fit [area_mm2] [power_w]
//! ```

use g_gpu::planner::{datasheet, GpuPlanner};
use g_gpu::tech::Tech;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let area: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let power: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5.0);

    let planner = GpuPlanner::new(Tech::l65());
    println!("searching for the best G-GPU within {area} mm2 and {power} W...\n");
    match planner.best_within(area, power)? {
        Some(version) => {
            println!(
                "best fit: {} ({:.2} mm2, {:.2} W, fmax {:.0})",
                version.spec.version_name(),
                version.synthesis.stats.total_area().to_mm2(),
                version.synthesis.total_power().to_watts(),
                version.synthesis.fmax.expect("planned versions have paths"),
            );
            let implemented = planner.implement(&version)?;
            println!("\n{}", datasheet(&implemented));
        }
        None => println!("no version fits — relax the budget or shrink the spec"),
    }
    Ok(())
}
