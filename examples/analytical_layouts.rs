//! Renders the extended-geometry layouts the analytical placer
//! unlocks: 16- and 32-CU machines (past the paper's 8-CU ceiling,
//! its listed future work) placed by the electrostatic solver with
//! kernel-derived net weights, as SVG files with macros coloured by
//! role.
//!
//! ```text
//! cargo run --release --example analytical_layouts [out_dir]
//! ```
//!
//! The checked-in `examples/analytical_16cu.svg` and
//! `examples/analytical_32cu.svg` were produced by this example.

use g_gpu::planner::dataflow_net_weights;
use g_gpu::pnr::{place_and_route, to_svg, Placer, PnrOptions};
use g_gpu::rtl::{generate, GgpuConfig};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;
use std::error::Error;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples".into())
        .into();
    fs::create_dir_all(&out_dir)?;
    let tech = Tech::l65();
    let options = PnrOptions {
        placer: Placer::Analytical,
        net_weights: dataflow_net_weights()?,
        ..PnrOptions::default()
    };

    for cus in [16u32, 32] {
        let config = GgpuConfig {
            compute_units: cus,
            memory_controllers: 2,
            allow_extended_cus: true,
            ..GgpuConfig::default()
        };
        let design = generate(&config)?;
        let layout = place_and_route(&design, &tech, Mhz::new(500.0), options)?;
        let path = out_dir.join(format!("analytical_{cus}cu.svg"));
        fs::write(&path, to_svg(&layout))?;
        let macros: usize = layout.placements.iter().map(|p| p.macros.len()).sum();
        println!(
            "{cus} CUs: {} macros, chip {:.2} mm2, HPWL {:.1} mm, fmax {:.0} -> {}",
            macros,
            layout.floorplan.chip.area().to_mm2(),
            layout.macro_hpwl.to_mm(),
            layout.fmax,
            path.display()
        );
    }
    Ok(())
}
