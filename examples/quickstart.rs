//! Quickstart: generate one G-GPU version through the full GPUPlanner
//! flow and print its characteristics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use g_gpu::planner::{GpuPlanner, Specification};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Pick a technology and a specification: 1 compute unit at
    //    590 MHz (one of the paper's Table I versions).
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(1, Mhz::new(590.0));

    // 2. First-order estimate before committing to synthesis.
    let estimate = planner.estimate(&spec)?;
    println!(
        "estimate: baseline fmax {:.0}, ~{:.2} mm2, ~{:.2} W, feasible: {}",
        estimate.baseline_fmax,
        estimate.est_area_mm2,
        estimate.est_power_w,
        estimate.likely_feasible
    );

    // 3. Run the design-space exploration and logic synthesis.
    let version = planner.plan(&spec)?;
    println!("\nmap advice trace:");
    for line in &version.trace {
        println!("  {line}");
    }
    println!("\noptimization recipe:");
    for action in version.plan.actions() {
        println!("  {action}");
    }
    println!(
        "\nsynthesis: {}\n  (area mem #FF #comb #mem leak dynW totW)\n  {}",
        version.synthesis,
        version.synthesis.table_row()
    );

    // 4. Physical synthesis: floorplan, placement, routing, timing.
    let implemented = planner.implement(&version)?;
    println!(
        "\nlayout: chip {:.2} mm2, wirelength {:.1} mm, achieved clock {:.0}",
        implemented.layout.floorplan.chip.area().to_mm2(),
        implemented.layout.wirelength.total().to_mm(),
        implemented.achieved_clock()
    );
    println!("within specification: {}", implemented.within_spec);
    Ok(())
}
