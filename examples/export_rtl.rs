//! Exports the generated G-GPU as structural Verilog plus the
//! frequency-map spreadsheet — the two artifacts a designer takes from
//! GPUPlanner into a downstream flow.
//!
//! ```text
//! cargo run --release --example export_rtl [cus] [out_dir]
//! ```

use g_gpu::netlist::to_structural_verilog;
use g_gpu::planner::{render_map, GpuPlanner, Specification};
use g_gpu::rtl::{generate, GgpuConfig};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;
use std::error::Error;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let cus: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_dir: PathBuf = args.next().unwrap_or_else(|| "target/rtl".into()).into();
    fs::create_dir_all(&out_dir)?;

    let tech = Tech::l65();
    // Baseline RTL + the map toward 667 MHz.
    let baseline = generate(&GgpuConfig::with_cus(cus)?)?;
    fs::write(
        out_dir.join(format!("ggpu_{cus}cu_baseline.v")),
        to_structural_verilog(&baseline),
    )?;
    fs::write(
        out_dir.join(format!("ggpu_{cus}cu_map_667.csv")),
        render_map(&baseline, &tech, Mhz::new(667.0))?,
    )?;

    // Optimized RTL after the DSE applied the map.
    let planner = GpuPlanner::new(tech);
    let optimized = planner.plan(&Specification::new(cus, Mhz::new(667.0)))?;
    fs::write(
        out_dir.join(format!("ggpu_{cus}cu_667mhz.v")),
        to_structural_verilog(&optimized.design),
    )?;

    for entry in fs::read_dir(&out_dir)? {
        let entry = entry?;
        println!(
            "{} ({} bytes)",
            entry.path().display(),
            entry.metadata()?.len()
        );
    }
    Ok(())
}
