//! Renders the paper's Fig. 3 comparison: the 1-CU floorplan without
//! optimizations (500 MHz) next to the memory-divided 667 MHz variant,
//! as SVG files with macros coloured by role.
//!
//! ```text
//! cargo run --release --example floorplan_svg [out_dir]
//! ```

use g_gpu::planner::{GpuPlanner, Specification};
use g_gpu::pnr::to_svg;
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;
use std::error::Error;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/floorplans".into())
        .into();
    fs::create_dir_all(&out_dir)?;
    let planner = GpuPlanner::new(Tech::l65());

    for freq in [500.0, 667.0] {
        let spec = Specification::new(1, Mhz::new(freq));
        let implemented = planner.implement(&planner.plan(&spec)?)?;
        let path = out_dir.join(format!("1cu_{freq:.0}mhz.svg"));
        fs::write(&path, to_svg(&implemented.layout))?;
        let macros: usize = implemented
            .layout
            .placements
            .iter()
            .map(|p| p.macros.len())
            .sum();
        println!(
            "{}: {} macros placed, chip {:.2} mm2, route delays {:?} -> {}",
            spec.version_name(),
            macros,
            implemented.layout.floorplan.chip.area().to_mm2(),
            implemented
                .layout
                .cu_route_delays
                .iter()
                .map(|d| format!("{d:.2}"))
                .collect::<Vec<_>>(),
            path.display()
        );
    }
    Ok(())
}
