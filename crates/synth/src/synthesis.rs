//! Logic synthesis: statistics rollup, power computation and timing in
//! one report.

use crate::report::SynthesisReport;
use ggpu_netlist::stats::design_stats;
use ggpu_netlist::Design;
use ggpu_sta::{analyze, max_frequency, StaError};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;

/// Problems during synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The design failed structural validation.
    Invalid(ggpu_netlist::design::ValidateDesignError),
    /// Timing analysis failed.
    Sta(StaError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Invalid(e) => write!(f, "invalid design: {e}"),
            SynthesisError::Sta(e) => write!(f, "timing: {e}"),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Invalid(e) => Some(e),
            SynthesisError::Sta(e) => Some(e),
        }
    }
}

impl From<StaError> for SynthesisError {
    fn from(e: StaError) -> Self {
        SynthesisError::Sta(e)
    }
}

/// Synthesizes `design` at `clock`: validates it, rolls up statistics
/// and power, and runs timing — producing one Table-I row.
///
/// # Errors
///
/// Returns [`SynthesisError`] if the design is structurally invalid,
/// a macro is outside the compiler range, or a path references a
/// missing macro.
pub fn synthesize(
    design: &Design,
    tech: &Tech,
    clock: Mhz,
) -> Result<SynthesisReport, SynthesisError> {
    design.validate().map_err(SynthesisError::Invalid)?;
    let stats = design_stats(design, tech).map_err(StaError::from)?;
    let report = analyze(design, tech, clock)?;
    let fmax = max_frequency(design, tech)?;
    let leakage = stats.total_leakage().to_milliwatts();
    let dynamic = stats.energy_per_cycle.at_rate(clock);
    Ok(SynthesisReport {
        design: design.name().to_string(),
        clock,
        fmax,
        meets_timing: report.meets_timing(),
        stats,
        leakage,
        dynamic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{CellGroup, Module};
    use ggpu_tech::stdcell::CellClass;

    fn trivial_design() -> Design {
        let mut d = Design::new("triv");
        let id = d.add_module(Module::new("m").with_group(CellGroup::new(
            "r",
            CellClass::Dff,
            100,
            0.3,
        )));
        d.set_top(id);
        d
    }

    #[test]
    fn synthesize_trivial() {
        let r = synthesize(&trivial_design(), &Tech::l65(), Mhz::new(500.0)).unwrap();
        assert!(r.meets_timing);
        assert_eq!(r.stats.ff_cells, 100);
        assert!(r.fmax.is_none(), "no timing paths declared");
        assert!(r.leakage.value() > 0.0);
        assert!(r.dynamic.value() > 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_clock() {
        let d = trivial_design();
        let tech = Tech::l65();
        let slow = synthesize(&d, &tech, Mhz::new(250.0)).unwrap();
        let fast = synthesize(&d, &tech, Mhz::new(500.0)).unwrap();
        let ratio = fast.dynamic / slow.dynamic;
        assert!((ratio - 2.0).abs() < 1e-9);
        // Leakage does not scale with clock.
        assert_eq!(slow.leakage, fast.leakage);
    }

    #[test]
    fn invalid_design_is_rejected() {
        let d = Design::new("empty");
        assert!(matches!(
            synthesize(&d, &Tech::l65(), Mhz::new(500.0)),
            Err(SynthesisError::Invalid(_))
        ));
    }
}
