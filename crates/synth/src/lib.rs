//! Logic-synthesis model and the GPUPlanner netlist transforms.
//!
//! [`synthesize`] produces a [`SynthesisReport`] — one row of the
//! paper's Table I (area, cell/macro counts, leakage, dynamic power,
//! timing closure). [`divide_macro`] and [`insert_pipeline`] are the
//! two optimizations GPUPlanner applies while exploring the design
//! space: memory division when the critical path starts at a memory
//! block, pipeline insertion otherwise. [`bank_macro`] is the third
//! transform: word-interleaved banking that trades a little crossbar
//! area for conflict-free concurrent lane access. All are unified
//! behind the [`Transform`] trait ([`DivideMemory`], [`BankMemory`],
//! [`PipelineInsert`]), whose [`Undo`] records let the planner's
//! transaction journal apply, measure and revert candidates in
//! O(touched modules).
//!
//! # Example
//!
//! ```
//! use ggpu_rtl::{generate, GgpuConfig};
//! use ggpu_synth::synthesize;
//! use ggpu_tech::units::Mhz;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GgpuConfig::with_cus(1)?)?;
//! let report = synthesize(&design, &Tech::l65(), Mhz::new(500.0))?;
//! assert!(report.meets_timing); // the baseline closes at 500 MHz
//! # Ok(())
//! # }
//! ```

pub mod report;
pub mod synthesis;
pub mod transform;

pub use report::SynthesisReport;
pub use synthesis::{synthesize, SynthesisError};
pub use transform::{
    bank_macro, divide_macro, insert_pipeline, revert, BankMemory, BankOutcome, DivideAxis,
    DivideMemory, DivideOutcome, PipelineInsert, Transform, TransformError, Undo,
    PIPELINE_WIDTH_BITS,
};
