//! Synthesis report: one row of the paper's Table I.

use ggpu_netlist::NetlistStats;
use ggpu_tech::units::{Mhz, MilliWatts};
use std::fmt;

/// The result of logic synthesis of one design at one clock — exactly
/// the columns of the paper's Table I plus timing closure data.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Design name.
    pub design: String,
    /// Target clock the design was synthesized at.
    pub clock: Mhz,
    /// Maximum achievable frequency (zero-slack clock).
    pub fmax: Option<Mhz>,
    /// `true` if every path meets timing at `clock`.
    pub meets_timing: bool,
    /// Structural statistics (areas, counts).
    pub stats: NetlistStats,
    /// Static power.
    pub leakage: MilliWatts,
    /// Dynamic power at `clock`.
    pub dynamic: MilliWatts,
}

impl SynthesisReport {
    /// Total power (leakage + dynamic).
    pub fn total_power(&self) -> MilliWatts {
        self.leakage + self.dynamic
    }

    /// Formats the report as a Table-I-style row:
    /// `area_mm2 mem_mm2 #FF #comb #mem leak_mW dyn_W total_W`.
    pub fn table_row(&self) -> String {
        format!(
            "{:>7.2} {:>7.2} {:>8} {:>8} {:>5} {:>8.2} {:>7.2} {:>7.2}",
            self.stats.total_area().to_mm2(),
            self.stats.macro_area.to_mm2(),
            self.stats.ff_cells,
            self.stats.comb_cells,
            self.stats.macro_count,
            self.leakage.value(),
            self.dynamic.to_watts(),
            self.total_power().to_watts(),
        )
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:.0}: {} (fmax {}, area {:.2} mm2, total {:.2} W)",
            self.design,
            self.clock,
            if self.meets_timing { "MET" } else { "VIOLATED" },
            match self.fmax {
                Some(fm) => format!("{fm:.0}"),
                None => "n/a".to_string(),
            },
            self.stats.total_area().to_mm2(),
            self.total_power().to_watts(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SynthesisReport {
        SynthesisReport {
            design: "ggpu_1cu".into(),
            clock: Mhz::new(500.0),
            fmax: Some(Mhz::new(501.0)),
            meets_timing: true,
            stats: NetlistStats::default(),
            leakage: MilliWatts::new(4.6),
            dynamic: MilliWatts::new(1970.0),
        }
    }

    #[test]
    fn total_power_sums() {
        let r = report();
        assert!((r.total_power().value() - 1974.6).abs() < 1e-9);
    }

    #[test]
    fn table_row_has_eight_columns() {
        assert_eq!(report().table_row().split_whitespace().count(), 8);
    }

    #[test]
    fn display_mentions_timing_state() {
        let mut r = report();
        assert!(r.to_string().contains("MET"));
        r.meets_timing = false;
        assert!(r.to_string().contains("VIOLATED"));
    }
}
