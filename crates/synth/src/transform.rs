//! GPUPlanner's two netlist transforms: memory division and on-demand
//! pipeline insertion.
//!
//! The paper (§III): *"dividing the memory blocks in the critical path
//! is a valid strategy for increasing the performance of a design.
//! Memory division can be applied by dividing the number of words, the
//! size of the word, or both. [...] a small extra logic is necessary
//! to accommodate the addressing control of the new blocks (i.e.,
//! MUXes to switch between block memories if the number of words is
//! split according to the MSBs of the address). [...] where the
//! critical path was not in memory blocks [...] pipelines were
//! introduced in those paths."*

use ggpu_netlist::module::{CellGroup, MacroInst};
use ggpu_netlist::timing::{LogicStage, PathEndpoint};
use ggpu_netlist::{Design, ModuleId, ModuleSnapshot};
#[cfg(test)]
use ggpu_tech::sram::PortKind;
use ggpu_tech::sram::{CompileSramError, SramConfig};
use ggpu_tech::stdcell::CellClass;
use std::error::Error;
use std::fmt;

/// An undo record: O(1) pre-apply snapshots of every module a
/// [`Transform`] touched, in application order.
///
/// Snapshots are [`ModuleSnapshot`]s — an `Arc` bump plus the module's
/// cached fingerprint slot — so holding an `Undo` costs a pointer per
/// touched module and [`revert`] restores the design *bit-identically*,
/// including the warm fingerprint cache the incremental STA engine
/// keys on.
#[derive(Debug)]
pub struct Undo {
    snapshots: Vec<ModuleSnapshot>,
}

impl Undo {
    /// The modules this record restores (application order,
    /// deduplicated).
    pub fn dirty_modules(&self) -> Vec<ModuleId> {
        let mut out: Vec<ModuleId> = self.snapshots.iter().map(|s| s.id()).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Restores every module captured in `undo` to its pre-apply state.
///
/// Reverting is O(touched modules): each restore swaps an `Arc` and a
/// fingerprint slot back into the design arena. The result is
/// bit-identical to the pre-apply design — same structural fingerprint,
/// same per-module fingerprints, same Verilog export.
pub fn revert(design: &mut Design, undo: Undo) {
    // Reverse order, so overlapping snapshots of the same module
    // resolve to the earliest (pre-apply) state.
    for snap in undo.snapshots.into_iter().rev() {
        design.restore_module(snap);
    }
}

/// A reversible netlist edit: GPUPlanner's unified transform interface.
///
/// Both optimizations the paper's §III loop applies — memory division
/// ([`DivideMemory`]) and pipeline insertion ([`PipelineInsert`]) —
/// implement this trait, so the planner's transaction journal can
/// apply, measure and revert candidates without knowing which kind of
/// edit it holds.
///
/// # Contract
///
/// * [`apply`](Transform::apply) is **atomic**: on `Err` the design is
///   left exactly as it was (implementations snapshot before mutating
///   and restore on failure).
/// * [`revert`](Transform::revert) after a successful `apply` restores
///   the design bit-identically (fingerprints included).
/// * [`dirty_modules`](Transform::dirty_modules) names every module
///   `apply` may mutate, resolved against the current design — the
///   advisory dirty set the incremental STA engine audits.
pub trait Transform: fmt::Display {
    /// Modules this transform will mutate, resolved against `design`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ModuleNotFound`] if the owning module
    /// does not exist.
    fn dirty_modules(&self, design: &Design) -> Result<Vec<ModuleId>, TransformError>;

    /// Applies the edit, returning the undo record. Atomic: on error
    /// the design is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] if the edit cannot apply; the design
    /// is left untouched.
    fn apply(&self, design: &mut Design) -> Result<Undo, TransformError>;

    /// Restores the design to its pre-[`apply`](Transform::apply)
    /// state. The default implementation replays the snapshots in
    /// `undo`; transforms with extra bookkeeping may override.
    fn revert(&self, design: &mut Design, undo: Undo) {
        revert(design, undo);
    }
}

/// Memory division as a [`Transform`]: divides the named macro — and
/// every structural sibling of the same logical memory (same
/// [`ggpu_netlist::BankGroupId`], same geometry) — into `factor` parts
/// along `axis`.
///
/// A division names one macro (the one on the representative timing
/// path) but the flow divides the *structure*: every sibling bank
/// fails timing identically. Sibling membership is the structural
/// group id assigned by the RTL generator, never the instance name —
/// the retired name-stem matching (`bank_base`) misgrouped user macros
/// whose names merely looked like sibling banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivideMemory {
    /// Owning module name.
    pub module: String,
    /// The macro to divide (any bank of the structure).
    pub macro_name: String,
    /// Division factor (power of two ≥ 2).
    pub factor: u32,
    /// Division axis.
    pub axis: DivideAxis,
}

impl fmt::Display for DivideMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divide {}/{} x{} ({})",
            self.module, self.macro_name, self.factor, self.axis
        )
    }
}

fn resolve_module(design: &Design, name: &str) -> Result<ModuleId, TransformError> {
    design
        .module_by_name(name)
        .ok_or_else(|| TransformError::ModuleNotFound {
            name: name.to_string(),
        })
}

impl Transform for DivideMemory {
    fn dirty_modules(&self, design: &Design) -> Result<Vec<ModuleId>, TransformError> {
        Ok(vec![resolve_module(design, &self.module)?])
    }

    fn apply(&self, design: &mut Design) -> Result<Undo, TransformError> {
        let id = resolve_module(design, &self.module)?;
        let target = design
            .module(id)
            .find_macro(&self.macro_name)
            .cloned()
            .ok_or_else(|| TransformError::MacroNotFound {
                module: self.module.clone(),
                name: self.macro_name.clone(),
            })?;
        let siblings = design.module(id).sibling_macro_names(&target);
        let snapshot = design.snapshot_module(id);
        for name in siblings {
            if let Err(e) = divide_macro(design, id, &name, self.factor, self.axis) {
                // Atomic rollback: a failed sibling undoes the whole
                // structure division.
                design.restore_module(snapshot);
                return Err(e);
            }
        }
        Ok(Undo {
            snapshots: vec![snapshot],
        })
    }
}

/// Pipeline insertion as a [`Transform`]: registers the midpoint of
/// the named path (see [`insert_pipeline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineInsert {
    /// Owning module name.
    pub module: String,
    /// The path to split.
    pub path: String,
}

impl fmt::Display for PipelineInsert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline {}/{}", self.module, self.path)
    }
}

impl Transform for PipelineInsert {
    fn dirty_modules(&self, design: &Design) -> Result<Vec<ModuleId>, TransformError> {
        Ok(vec![resolve_module(design, &self.module)?])
    }

    fn apply(&self, design: &mut Design) -> Result<Undo, TransformError> {
        let id = resolve_module(design, &self.module)?;
        let snapshot = design.snapshot_module(id);
        if let Err(e) = insert_pipeline(design, id, &self.path) {
            design.restore_module(snapshot);
            return Err(e);
        }
        Ok(Undo {
            snapshots: vec![snapshot],
        })
    }
}

/// Memory banking as a [`Transform`]: splits the named macro — and
/// every structural sibling of its logical memory — into `banks`
/// word-interleaved banks (`{name}_b0` …), adding the crossbar and
/// arbitration logic that lets different SIMT lanes hit different
/// banks in the same beat.
///
/// Physically a bank split prices like a word division (each bank is
/// `words / banks` deep), but the semantics differ: a division steers
/// by address MSBs and still serves one access per port per cycle,
/// while banking interleaves consecutive words round-robin so a
/// wavefront's lanes spread across banks — the cycle-side win the
/// simulator's conflict-aware LRAM model measures. The new banks keep
/// (or, for a lone macro, found) a structural bank group, so
/// [`ggpu_netlist::Module::bank_group_geometry`] reports the post-
/// transform bank count to every consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankMemory {
    /// Owning module name.
    pub module: String,
    /// The macro to bank (any member of the structure).
    pub macro_name: String,
    /// Bank count (power of two ≥ 2).
    pub banks: u32,
}

impl fmt::Display for BankMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {}/{} x{}",
            self.module, self.macro_name, self.banks
        )
    }
}

impl Transform for BankMemory {
    fn dirty_modules(&self, design: &Design) -> Result<Vec<ModuleId>, TransformError> {
        Ok(vec![resolve_module(design, &self.module)?])
    }

    fn apply(&self, design: &mut Design) -> Result<Undo, TransformError> {
        let id = resolve_module(design, &self.module)?;
        let target = design
            .module(id)
            .find_macro(&self.macro_name)
            .cloned()
            .ok_or_else(|| TransformError::MacroNotFound {
                module: self.module.clone(),
                name: self.macro_name.clone(),
            })?;
        let siblings = design.module(id).sibling_macro_names(&target);
        let snapshot = design.snapshot_module(id);
        for name in siblings {
            if let Err(e) = bank_macro(design, id, &name, self.banks) {
                design.restore_module(snapshot);
                return Err(e);
            }
        }
        Ok(Undo {
            snapshots: vec![snapshot],
        })
    }
}

/// What a banking did to the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankOutcome {
    /// Names of the replacement banks.
    pub bank_names: Vec<String>,
    /// The geometry of each bank.
    pub bank_config: SramConfig,
    /// Crossbar/arbiter cells added to the owning module.
    pub xbar_cells_added: u64,
}

/// Splits the named macro of `module` into `banks` word-interleaved
/// banks, adding the lane-to-bank crossbar and per-bank arbitration
/// logic and rewiring every timing path that references it.
///
/// The banks inherit the macro's structural group id (a lone macro
/// founds a fresh group), so the logical memory's
/// [`ggpu_netlist::MemGeometry`] grows its bank count by the split
/// factor.
///
/// # Errors
///
/// Returns [`TransformError`] if the macro does not exist or the
/// per-bank geometry is outside the compiler range.
pub fn bank_macro(
    design: &mut Design,
    module: ModuleId,
    macro_name: &str,
    banks: u32,
) -> Result<BankOutcome, TransformError> {
    let module_name = design.module(module).name.clone();
    let original = design
        .module(module)
        .find_macro(macro_name)
        .cloned()
        .ok_or_else(|| TransformError::MacroNotFound {
            module: module_name.clone(),
            name: macro_name.to_string(),
        })?;

    let bank_configs = original.config.banked(banks)?;
    let bank_config = bank_configs[0];
    let group = original
        .bank_group
        .unwrap_or_else(|| design.module(module).next_bank_group_id());

    // Word-interleaved banks: a conflict-free wavefront beat touches
    // each bank once, so per-bank activity is the original's share.
    let per_bank_activity = original.access_activity / f64::from(banks);
    let m = design.module_mut(module);
    m.remove_macro(macro_name);
    let mut bank_names = Vec::with_capacity(banks as usize);
    for (i, cfg) in bank_configs.into_iter().enumerate() {
        let name = format!("{macro_name}_b{i}");
        m.macros.push(
            MacroInst::new(name.clone(), cfg, original.role, per_bank_activity)
                .with_bank_group(group),
        );
        bank_names.push(name);
    }

    // Crossbar: unlike a division's one-of-N read select, banking
    // routes any lane to any bank, so both the data return path and
    // the address fan-in carry a full MUX tree per bank; the grant
    // arbitration adds an AOI node per bank and address bit.
    let select_levels = (banks as f64).log2().ceil() as usize;
    let xbar_cells = 2 * u64::from(bank_config.bits) * u64::from(banks - 1);
    let addr_bits = 32 - bank_config.words.leading_zeros().max(1);
    let arb_cells = u64::from(addr_bits) * u64::from(banks);
    m.groups.push(CellGroup::new(
        format!("{macro_name}_xbar"),
        CellClass::Mux2,
        xbar_cells,
        original.access_activity.min(1.0),
    ));
    m.groups.push(CellGroup::new(
        format!("{macro_name}_arb"),
        CellClass::Aoi21,
        arb_cells,
        original.access_activity.min(1.0),
    ));

    // Rewire timing paths: launching paths gain the return-crossbar
    // MUX levels, capturing paths gain the arbiter grant stage.
    let first = bank_names[0].clone();
    for path in &mut design.module_mut(module).paths {
        if matches!(&path.start, PathEndpoint::Macro(n) if n == macro_name) {
            path.start = PathEndpoint::Macro(first.clone());
            for _ in 0..select_levels {
                path.stages.insert(0, LogicStage::new(CellClass::Mux2, 1));
            }
        }
        if matches!(&path.end, PathEndpoint::Macro(n) if n == macro_name) {
            path.end = PathEndpoint::Macro(first.clone());
            path.stages
                .push(LogicStage::new(CellClass::Aoi21, banks.min(4)));
        }
    }

    Ok(BankOutcome {
        bank_names,
        bank_config,
        xbar_cells_added: xbar_cells + arb_cells,
    })
}

/// Which extent of the macro a division splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivideAxis {
    /// Split the address space; accesses are steered to one part by
    /// the MSBs of the address and the read data is selected with a
    /// MUX tree (the paper's primary strategy).
    Words,
    /// Split the word; all parts are accessed in parallel and the
    /// outputs are concatenated (no MUX, smaller speedup).
    Bits,
}

impl fmt::Display for DivideAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivideAxis::Words => f.write_str("words"),
            DivideAxis::Bits => f.write_str("bits"),
        }
    }
}

/// What a division did to the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivideOutcome {
    /// Names of the replacement macros.
    pub part_names: Vec<String>,
    /// The geometry of each part.
    pub part_config: SramConfig,
    /// Steering/select cells added to the owning module.
    pub mux_cells_added: u64,
}

/// Problems applying a transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The named module does not exist in the design.
    ModuleNotFound {
        /// Requested module name.
        name: String,
    },
    /// The named macro does not exist in the module.
    MacroNotFound {
        /// Owning module name.
        module: String,
        /// Requested macro name.
        name: String,
    },
    /// The divided geometry is invalid (uneven split or out of the
    /// compiler range).
    Sram(CompileSramError),
    /// The named timing path does not exist in the module.
    PathNotFound {
        /// Owning module name.
        module: String,
        /// Requested path name.
        name: String,
    },
    /// The path is too shallow to pipeline (needs at least two
    /// combinational stages).
    PathTooShallow {
        /// Requested path name.
        name: String,
        /// Its stage count.
        depth: usize,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::ModuleNotFound { name } => {
                write!(f, "module {name} not found in design")
            }
            TransformError::MacroNotFound { module, name } => {
                write!(f, "macro {name} not found in module {module}")
            }
            TransformError::Sram(e) => write!(f, "memory compiler: {e}"),
            TransformError::PathNotFound { module, name } => {
                write!(f, "timing path {name} not found in module {module}")
            }
            TransformError::PathTooShallow { name, depth } => {
                write!(f, "path {name} has only {depth} stages, cannot pipeline")
            }
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Sram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileSramError> for TransformError {
    fn from(e: CompileSramError) -> Self {
        TransformError::Sram(e)
    }
}

/// Divides the named macro of `module` into `parts` equal macros along
/// `axis`, updating every timing path that references it and adding
/// the steering logic to the module's cell populations.
///
/// Works for single- and dual-port macros alike (the paper lists
/// single-port support as future work; the transform itself is
/// port-agnostic).
///
/// # Errors
///
/// Returns [`TransformError`] if the macro does not exist or the
/// divided geometry is outside the compiler range.
pub fn divide_macro(
    design: &mut Design,
    module: ModuleId,
    macro_name: &str,
    parts: u32,
    axis: DivideAxis,
) -> Result<DivideOutcome, TransformError> {
    let module_name = design.module(module).name.clone();
    let original = design
        .module(module)
        .find_macro(macro_name)
        .cloned()
        .ok_or_else(|| TransformError::MacroNotFound {
            module: module_name.clone(),
            name: macro_name.to_string(),
        })?;

    let part_configs = match axis {
        DivideAxis::Words => original.config.split_words(parts)?,
        DivideAxis::Bits => original.config.split_bits(parts)?,
    };
    let part_config = part_configs[0];

    // Replace the macro with its parts. For a word split each access
    // activates one part; for a bit split all parts fire together.
    let per_part_activity = match axis {
        DivideAxis::Words => original.access_activity / f64::from(parts),
        DivideAxis::Bits => original.access_activity,
    };
    let m = design.module_mut(module);
    m.remove_macro(macro_name);
    let mut part_names = Vec::with_capacity(parts as usize);
    for (i, cfg) in part_configs.into_iter().enumerate() {
        let name = format!("{macro_name}_d{i}");
        let mut part = MacroInst::new(name.clone(), cfg, original.role, per_part_activity);
        // Parts stay members of the parent's logical memory: the
        // structural group id is how every downstream consumer (fault
        // maps, geometry queries, further transforms) keeps treating
        // the divided structure as one memory.
        if let Some(group) = original.bank_group {
            part = part.with_bank_group(group);
        }
        m.macros.push(part);
        part_names.push(name);
    }

    // Steering logic: a MUX-2 tree per data bit for word splits
    // (parts - 1 nodes per bit), a fan-out buffer per part for the
    // address bus either way.
    let select_levels = (parts as f64).log2().ceil() as usize;
    let mux_cells = match axis {
        DivideAxis::Words => u64::from(part_config.bits) * u64::from(parts - 1),
        DivideAxis::Bits => 0,
    };
    let addr_bits = 32 - part_config.words.leading_zeros().max(1);
    let buf_cells = u64::from(addr_bits) * u64::from(parts - 1);
    if mux_cells > 0 {
        m.groups.push(CellGroup::new(
            format!("{macro_name}_steer_mux"),
            CellClass::Mux2,
            mux_cells,
            original.access_activity.min(1.0),
        ));
    }
    if buf_cells > 0 {
        m.groups.push(CellGroup::new(
            format!("{macro_name}_addr_buf"),
            CellClass::Buf,
            buf_cells,
            original.access_activity.min(1.0),
        ));
    }

    // Rewire timing paths. Launching paths gain the MUX-tree levels in
    // front of their logic; capturing paths gain one address fan-out
    // buffer stage.
    let first = part_names[0].clone();
    for path in &mut design.module_mut(module).paths {
        if matches!(&path.start, PathEndpoint::Macro(n) if n == macro_name) {
            path.start = PathEndpoint::Macro(first.clone());
            if axis == DivideAxis::Words {
                for _ in 0..select_levels {
                    path.stages.insert(0, LogicStage::new(CellClass::Mux2, 1));
                }
            }
        }
        if matches!(&path.end, PathEndpoint::Macro(n) if n == macro_name) {
            path.end = PathEndpoint::Macro(first.clone());
            path.stages
                .push(LogicStage::new(CellClass::Buf, parts.min(4)));
        }
    }

    Ok(DivideOutcome {
        part_names,
        part_config,
        mux_cells_added: mux_cells + buf_cells,
    })
}

/// Number of flip-flops added per pipeline insertion: the datapath
/// width of the deep control paths the paper pipelines (Table I shows
/// ~257 extra FFs for the 1-CU 590 MHz version).
pub const PIPELINE_WIDTH_BITS: u64 = 256;

/// Inserts a pipeline register at the midpoint of the named path,
/// splitting it into two paths and adding the register stage to the
/// module's flip-flop population.
///
/// # Errors
///
/// Returns [`TransformError`] if the path does not exist or has fewer
/// than two combinational stages.
pub fn insert_pipeline(
    design: &mut Design,
    module: ModuleId,
    path_name: &str,
) -> Result<(), TransformError> {
    let module_name = design.module(module).name.clone();
    let m = design.module_mut(module);
    let idx = m
        .paths
        .iter()
        .position(|p| p.name == path_name)
        .ok_or_else(|| TransformError::PathNotFound {
            module: module_name,
            name: path_name.to_string(),
        })?;
    let depth = m.paths[idx].depth();
    if depth < 2 {
        return Err(TransformError::PathTooShallow {
            name: path_name.to_string(),
            depth,
        });
    }
    let (first, second) = m.paths[idx].split_at(depth / 2);
    m.paths[idx] = first;
    m.paths.push(second);
    m.groups.push(CellGroup::new(
        format!("pipe_{path_name}"),
        CellClass::Dff,
        PIPELINE_WIDTH_BITS,
        0.30,
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{MemoryRole, Module};
    use ggpu_netlist::timing::TimingPath;
    use ggpu_netlist::BankGroupId;
    use ggpu_sta::max_frequency;
    use ggpu_tech::Tech;

    fn test_design() -> (Design, ModuleId) {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(2048, 32),
            MemoryRole::CacheData,
            0.8,
        ));
        m.paths.push(TimingPath::new(
            "read",
            PathEndpoint::Macro("ram".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 4, 2),
        ));
        m.paths.push(TimingPath::new(
            "write",
            PathEndpoint::Register,
            PathEndpoint::Macro("ram".into()),
            LogicStage::chain(CellClass::Mux2, 3, 2),
        ));
        m.paths.push(TimingPath::new(
            "deep_logic",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 30, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        (d, id)
    }

    #[test]
    fn word_division_improves_fmax() {
        let (mut d, id) = test_design();
        let tech = Tech::l65();
        let before = max_frequency(&d, &tech).unwrap().unwrap();
        let out = divide_macro(&mut d, id, "ram", 2, DivideAxis::Words).unwrap();
        assert_eq!(out.part_names.len(), 2);
        assert_eq!(out.part_config.words, 1024);
        let after = max_frequency(&d, &tech).unwrap().unwrap();
        assert!(after > before, "fmax {before} -> {after}");
        assert!(d.validate().is_ok());
    }

    #[test]
    fn division_rewires_paths_and_adds_muxes() {
        let (mut d, id) = test_design();
        divide_macro(&mut d, id, "ram", 4, DivideAxis::Words).unwrap();
        let m = d.module(id);
        assert_eq!(m.macros.len(), 4);
        assert!(m.find_macro("ram").is_none());
        assert!(m.find_macro("ram_d3").is_some());
        let read = m.paths.iter().find(|p| p.name == "read").unwrap();
        assert!(read.launches_from_macro("ram_d0"));
        // 4-way split: 2 MUX levels in front of 4 original stages.
        assert_eq!(read.depth(), 6);
        let write = m.paths.iter().find(|p| p.name == "write").unwrap();
        assert!(write.captures_into_macro("ram_d0"));
        assert!(m.groups.iter().any(|g| g.name == "ram_steer_mux"));
        // 32 bits x 3 internal mux nodes.
        let mux = m.groups.iter().find(|g| g.name == "ram_steer_mux").unwrap();
        assert_eq!(mux.count, 96);
    }

    #[test]
    fn bit_division_adds_no_muxes() {
        let (mut d, id) = test_design();
        let out = divide_macro(&mut d, id, "ram", 2, DivideAxis::Bits).unwrap();
        assert_eq!(out.part_config.bits, 16);
        assert_eq!(out.part_config.words, 2048);
        let m = d.module(id);
        assert!(m.groups.iter().all(|g| g.name != "ram_steer_mux"));
        let read = m.paths.iter().find(|p| p.name == "read").unwrap();
        assert_eq!(read.depth(), 4, "bit split adds no mux levels");
    }

    #[test]
    fn word_division_preserves_total_access_energy_roughly() {
        let (d, id) = test_design();
        let tech = Tech::l65();
        let before = ggpu_netlist::stats::local_stats(&d, id, &tech)
            .unwrap()
            .energy_per_cycle;
        let (mut d2, id2) = test_design();
        divide_macro(&mut d2, id2, "ram", 2, DivideAxis::Words).unwrap();
        let after = ggpu_netlist::stats::local_stats(&d2, id2, &tech)
            .unwrap()
            .energy_per_cycle;
        // Smaller parts need less energy per access, but the steering
        // logic adds some back; the net change must be modest.
        let ratio = after / before;
        assert!((0.5..=1.2).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn division_of_missing_macro_fails() {
        let (mut d, id) = test_design();
        let err = divide_macro(&mut d, id, "ghost", 2, DivideAxis::Words).unwrap_err();
        assert!(matches!(err, TransformError::MacroNotFound { .. }));
    }

    #[test]
    fn uneven_division_fails() {
        let (mut d, id) = test_design();
        let err = divide_macro(&mut d, id, "ram", 3, DivideAxis::Words).unwrap_err();
        assert!(matches!(err, TransformError::Sram(_)));
    }

    #[test]
    fn single_port_macros_divide_too() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "spram",
            SramConfig::single(1024, 32),
            MemoryRole::ScratchRam,
            0.5,
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let out = divide_macro(&mut d, id, "spram", 2, DivideAxis::Words).unwrap();
        assert_eq!(out.part_config.ports, PortKind::Single);
        assert_eq!(out.part_config.words, 512);
    }

    #[test]
    fn pipeline_insertion_improves_fmax_and_adds_ffs() {
        let (mut d, id) = test_design();
        let tech = Tech::l65();
        // Make the deep logic path critical first.
        divide_macro(&mut d, id, "ram", 4, DivideAxis::Words).unwrap();
        let before = max_frequency(&d, &tech).unwrap().unwrap();
        let ffs_before = ggpu_netlist::stats::local_stats(&d, id, &tech)
            .unwrap()
            .ff_cells;
        insert_pipeline(&mut d, id, "deep_logic").unwrap();
        let after = max_frequency(&d, &tech).unwrap().unwrap();
        let ffs_after = ggpu_netlist::stats::local_stats(&d, id, &tech)
            .unwrap()
            .ff_cells;
        assert!(after > before, "fmax {before} -> {after}");
        assert_eq!(ffs_after - ffs_before, PIPELINE_WIDTH_BITS);
        // The path count grew by one (split into two halves).
        assert_eq!(d.module(id).paths.len(), 4);
    }

    fn fingerprint(d: &Design) -> u64 {
        d.structural_fingerprint()
    }

    #[test]
    fn transform_apply_revert_round_trips_bit_identically() {
        let (mut d, id) = test_design();
        let fp0 = fingerprint(&d);
        let mfp0 = d.module_fingerprint(id);
        let t = DivideMemory {
            module: "m".into(),
            macro_name: "ram".into(),
            factor: 4,
            axis: DivideAxis::Words,
        };
        let undo = t.apply(&mut d).unwrap();
        assert_eq!(undo.dirty_modules(), vec![id]);
        assert_ne!(fingerprint(&d), fp0, "division must change the design");
        t.revert(&mut d, undo);
        assert_eq!(fingerprint(&d), fp0);
        assert_eq!(d.module_fingerprint(id), mfp0);

        let p = PipelineInsert {
            module: "m".into(),
            path: "deep_logic".into(),
        };
        let undo = p.apply(&mut d).unwrap();
        assert_ne!(fingerprint(&d), fp0);
        p.revert(&mut d, undo);
        assert_eq!(fingerprint(&d), fp0);
    }

    #[test]
    fn divide_memory_expands_sibling_banks() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        for i in 0..4 {
            m.macros.push(
                MacroInst::new(
                    format!("bank{i}"),
                    SramConfig::dual(1024, 32),
                    MemoryRole::RegisterFile,
                    0.5,
                )
                .with_bank_group(BankGroupId(0)),
            );
        }
        // Same group id but different geometry: not a sibling, must
        // stay untouched.
        m.macros.push(
            MacroInst::new("bankx", SramConfig::dual(2048, 32), MemoryRole::Other, 0.5)
                .with_bank_group(BankGroupId(0)),
        );
        let id = d.add_module(m);
        d.set_top(id);
        let t = DivideMemory {
            module: "m".into(),
            macro_name: "bank0".into(),
            factor: 2,
            axis: DivideAxis::Words,
        };
        t.apply(&mut d).unwrap();
        let m = d.module(id);
        // 4 banks x 2 parts + the untouched odd one out.
        assert_eq!(m.macros.len(), 9);
        for i in 0..4 {
            assert!(m.find_macro(&format!("bank{i}_d0")).is_some());
            assert!(m.find_macro(&format!("bank{i}")).is_none());
        }
        assert!(m.find_macro("bankx").is_some());
        // The parts remain members of the original logical memory.
        assert_eq!(
            m.bank_group_of("bank0_d0"),
            Some(BankGroupId(0)),
            "division parts must inherit the structural group"
        );
    }

    #[test]
    fn user_macro_with_bank_like_name_is_never_misgrouped() {
        // Regression for the retired `bank_base()` stem matching: a
        // user macro named `lsu_b12` has the same stem (`lsu_b`) and
        // geometry as the real sibling banks `lsu_b0`/`lsu_b1`, so the
        // old code divided it along with the structure. Structural
        // group ids make membership explicit: the lone macro is
        // untouched.
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        for i in 0..2 {
            m.macros.push(
                MacroInst::new(
                    format!("lsu_b{i}"),
                    SramConfig::dual(1024, 32),
                    MemoryRole::Fifo,
                    0.5,
                )
                .with_bank_group(BankGroupId(7)),
            );
        }
        m.macros.push(MacroInst::new(
            "lsu_b12",
            SramConfig::dual(1024, 32),
            MemoryRole::Other,
            0.5,
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let t = DivideMemory {
            module: "m".into(),
            macro_name: "lsu_b0".into(),
            factor: 2,
            axis: DivideAxis::Words,
        };
        t.apply(&mut d).unwrap();
        let m = d.module(id);
        assert!(m.find_macro("lsu_b0_d0").is_some());
        assert!(m.find_macro("lsu_b1_d0").is_some());
        assert!(
            m.find_macro("lsu_b12").is_some() && m.find_macro("lsu_b12_d0").is_none(),
            "macro outside the bank group must not be divided"
        );
    }

    #[test]
    fn banking_splits_into_interleaved_banks_and_improves_fmax() {
        let (mut d, id) = test_design();
        let tech = Tech::l65();
        let before = max_frequency(&d, &tech).unwrap().unwrap();
        let out = bank_macro(&mut d, id, "ram", 4).unwrap();
        assert_eq!(out.bank_names.len(), 4);
        assert_eq!(out.bank_config.words, 512);
        assert_eq!(out.bank_config.bits, 32);
        let after = max_frequency(&d, &tech).unwrap().unwrap();
        assert!(after > before, "fmax {before} -> {after}");
        let m = d.module(id);
        assert!(m.find_macro("ram").is_none());
        assert!(m.find_macro("ram_b3").is_some());
        assert!(m.groups.iter().any(|g| g.name == "ram_xbar"));
        assert!(m.groups.iter().any(|g| g.name == "ram_arb"));
        // A lone macro founds a fresh group holding all its banks.
        let group = m.bank_group_of("ram_b0").unwrap();
        let geom = m.bank_group_geometry(group).unwrap();
        assert_eq!(geom.banks, 4);
        assert_eq!(geom.words_per_bank, 512);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn banking_a_grouped_structure_grows_the_group() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        for i in 0..4 {
            m.macros.push(
                MacroInst::new(
                    format!("lram{i}"),
                    SramConfig::dual(4096, 32),
                    MemoryRole::ScratchRam,
                    0.5,
                )
                .with_bank_group(BankGroupId(1)),
            );
        }
        let id = d.add_module(m);
        d.set_top(id);
        let t = BankMemory {
            module: "m".into(),
            macro_name: "lram0".into(),
            banks: 2,
        };
        t.apply(&mut d).unwrap();
        let m = d.module(id);
        // All 4 members split: 8 banks now carry the same group id.
        let geom = m.bank_group_geometry(BankGroupId(1)).unwrap();
        assert_eq!(geom.banks, 8);
        assert_eq!(geom.words_per_bank, 2048);
        assert_eq!(geom.total_words(), 4 * 4096);
        assert_eq!(geom.total_ports(), 16);
    }

    #[test]
    fn banking_apply_revert_round_trips_bit_identically() {
        let (mut d, id) = test_design();
        let fp0 = fingerprint(&d);
        let mfp0 = d.module_fingerprint(id);
        let t = BankMemory {
            module: "m".into(),
            macro_name: "ram".into(),
            banks: 4,
        };
        let undo = t.apply(&mut d).unwrap();
        assert_eq!(undo.dirty_modules(), vec![id]);
        assert_ne!(fingerprint(&d), fp0, "banking must change the design");
        t.revert(&mut d, undo);
        assert_eq!(fingerprint(&d), fp0);
        assert_eq!(d.module_fingerprint(id), mfp0);
    }

    #[test]
    fn failed_banking_leaves_design_untouched() {
        let (mut d, _) = test_design();
        let fp0 = fingerprint(&d);
        // Factor 3 is an uneven split; the snapshot rollback restores.
        let t = BankMemory {
            module: "m".into(),
            macro_name: "ram".into(),
            banks: 3,
        };
        assert!(matches!(t.apply(&mut d), Err(TransformError::Sram(_))));
        assert_eq!(fingerprint(&d), fp0);
        let t = BankMemory {
            module: "m".into(),
            macro_name: "ghost".into(),
            banks: 2,
        };
        assert!(matches!(
            t.apply(&mut d),
            Err(TransformError::MacroNotFound { .. })
        ));
        assert_eq!(fingerprint(&d), fp0);
    }

    #[test]
    fn failed_apply_leaves_design_untouched() {
        let (mut d, id) = test_design();
        let fp0 = fingerprint(&d);
        // Factor 3 fails inside divide_macro (uneven split) after the
        // snapshot is taken: the rollback must restore everything.
        let t = DivideMemory {
            module: "m".into(),
            macro_name: "ram".into(),
            factor: 3,
            axis: DivideAxis::Words,
        };
        assert!(matches!(t.apply(&mut d), Err(TransformError::Sram(_))));
        assert_eq!(fingerprint(&d), fp0);
        assert_eq!(d.module(id).macros.len(), 1);

        let t = PipelineInsert {
            module: "m".into(),
            path: "ghost".into(),
        };
        assert!(matches!(
            t.apply(&mut d),
            Err(TransformError::PathNotFound { .. })
        ));
        assert_eq!(fingerprint(&d), fp0);
    }

    #[test]
    fn unknown_module_is_reported() {
        let (mut d, _) = test_design();
        let t = PipelineInsert {
            module: "ghost".into(),
            path: "p".into(),
        };
        assert!(matches!(
            t.dirty_modules(&d),
            Err(TransformError::ModuleNotFound { .. })
        ));
        assert!(matches!(
            t.apply(&mut d),
            Err(TransformError::ModuleNotFound { .. })
        ));
    }

    #[test]
    fn transform_display_names_the_edit() {
        let t = DivideMemory {
            module: "pe".into(),
            macro_name: "rf".into(),
            factor: 2,
            axis: DivideAxis::Words,
        };
        assert_eq!(t.to_string(), "divide pe/rf x2 (words)");
        let p = PipelineInsert {
            module: "pe".into(),
            path: "sched".into(),
        };
        assert_eq!(p.to_string(), "pipeline pe/sched");
        let b = BankMemory {
            module: "cu".into(),
            macro_name: "lram0".into(),
            banks: 4,
        };
        assert_eq!(b.to_string(), "bank cu/lram0 x4");
    }

    #[test]
    fn pipeline_of_missing_path_fails() {
        let (mut d, id) = test_design();
        assert!(matches!(
            insert_pipeline(&mut d, id, "ghost"),
            Err(TransformError::PathNotFound { .. })
        ));
    }

    #[test]
    fn pipeline_of_shallow_path_fails() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "stub",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 1, 1),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        assert!(matches!(
            insert_pipeline(&mut d, id, "stub"),
            Err(TransformError::PathTooShallow { depth: 1, .. })
        ));
    }
}
