//! Property tests of the GPUPlanner transforms: memory division must
//! preserve capacity and improve (never worsen) the divided path's
//! timing, for arbitrary in-range geometries and division factors.

use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_prop::cases;
use ggpu_sta::max_frequency;
use ggpu_synth::{divide_macro, DivideAxis};
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::Tech;

fn design_with(words: u32, bits: u32, depth: usize) -> (Design, ggpu_netlist::ModuleId) {
    let mut d = Design::new("t");
    let mut m = Module::new("m");
    m.macros.push(MacroInst::new(
        "ram",
        SramConfig::dual(words, bits),
        MemoryRole::Other,
        0.5,
    ));
    m.paths.push(TimingPath::new(
        "read",
        PathEndpoint::Macro("ram".into()),
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, depth, 2),
    ));
    let id = d.add_module(m);
    d.set_top(id);
    (d, id)
}

/// For large macros the access time saved always exceeds the MUX
/// levels added, so division improves fmax. (For small macros the
/// trade can go the other way — the diminishing-returns regime the
/// DSE's progress check detects; the structural property below
/// covers that range.)
#[test]
fn division_preserves_capacity_and_improves_fmax() {
    cases(128, |rng| {
        let wp = rng.u32_in(10, 14); // 1024..=16384 words
        let bits = rng.u32_in(4, 128);
        let factor_p = rng.u32_in(1, 3); // divide by 2, 4, 8
        let depth = rng.usize_in(1, 11);

        let words = 1u32 << wp;
        let factor = 1u32 << factor_p;
        if words / factor < 16 {
            return; // out of the compiler's word range; skip the case
        }
        let tech = Tech::l65();
        let (mut d, id) = design_with(words, bits, depth);
        let before = max_frequency(&d, &tech).expect("times").expect("has paths");
        let capacity_before: u64 = d
            .module(id)
            .macros
            .iter()
            .map(|m| m.config.capacity_bits())
            .sum();

        let out =
            divide_macro(&mut d, id, "ram", factor, DivideAxis::Words).expect("in-range division");
        assert!(d.validate().is_ok());
        assert_eq!(out.part_names.len(), factor as usize);

        let capacity_after: u64 = d
            .module(id)
            .macros
            .iter()
            .map(|m| m.config.capacity_bits())
            .sum();
        assert_eq!(capacity_before, capacity_after, "capacity preserved");

        let after = max_frequency(&d, &tech).expect("times").expect("has paths");
        assert!(
            after.value() >= before.value(),
            "division must not slow the design: {before} -> {after}"
        );
    });
}

/// Division of *any* in-range macro — including small ones where
/// fmax may regress — always yields a structurally valid netlist
/// with preserved capacity and rewired paths.
#[test]
fn division_is_always_structurally_sound() {
    cases(128, |rng| {
        let wp = rng.u32_in(5, 14);
        let bits = rng.u32_in(4, 128);
        let depth = rng.usize_in(1, 7);
        let words = 1u32 << wp;
        let (mut d, id) = design_with(words, bits, depth);
        let out = divide_macro(&mut d, id, "ram", 2, DivideAxis::Words).expect("in range");
        assert!(d.validate().is_ok());
        assert!(d.module(id).find_macro("ram").is_none());
        for name in &out.part_names {
            assert!(d.module(id).find_macro(name).is_some());
        }
        let read = d
            .module(id)
            .paths
            .iter()
            .find(|p| p.name == "read")
            .expect("path kept");
        assert!(read.launches_from_macro(&out.part_names[0]));
    });
}

#[test]
fn bit_division_preserves_capacity() {
    cases(128, |rng| {
        let wp = rng.u32_in(4, 14);
        let halves = rng.u32_in(1, 2);
        let depth = rng.usize_in(1, 7);
        let words = 1u32 << wp;
        let bits = 64u32;
        let factor = 1u32 << halves;
        let tech = Tech::l65();
        let (mut d, id) = design_with(words, bits, depth);
        let cap_before: u64 = d
            .module(id)
            .macros
            .iter()
            .map(|m| m.config.capacity_bits())
            .sum();
        divide_macro(&mut d, id, "ram", factor, DivideAxis::Bits).expect("in range");
        let cap_after: u64 = d
            .module(id)
            .macros
            .iter()
            .map(|m| m.config.capacity_bits())
            .sum();
        assert_eq!(cap_before, cap_after);
        assert!(max_frequency(&d, &tech).expect("times").is_some());
    });
}
