//! Property tests of the GPUPlanner transforms: memory division must
//! preserve capacity and improve (never worsen) the divided path's
//! timing, for arbitrary in-range geometries and division factors.

use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_sta::max_frequency;
use ggpu_synth::{divide_macro, DivideAxis};
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::Tech;
use proptest::prelude::*;

fn design_with(words: u32, bits: u32, depth: usize) -> (Design, ggpu_netlist::ModuleId) {
    let mut d = Design::new("t");
    let mut m = Module::new("m");
    m.macros.push(MacroInst::new(
        "ram",
        SramConfig::dual(words, bits),
        MemoryRole::Other,
        0.5,
    ));
    m.paths.push(TimingPath::new(
        "read",
        PathEndpoint::Macro("ram".into()),
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, depth, 2),
    ));
    let id = d.add_module(m);
    d.set_top(id);
    (d, id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For large macros the access time saved always exceeds the MUX
    /// levels added, so division improves fmax. (For small macros the
    /// trade can go the other way — the diminishing-returns regime the
    /// DSE's progress check detects; the structural property below
    /// covers that range.)
    #[test]
    fn division_preserves_capacity_and_improves_fmax(
        wp in 10u32..=14,         // 1024..=16384 words
        bits in 4u32..=128,
        factor_p in 1u32..=3,     // divide by 2, 4, 8
        depth in 1usize..12,
    ) {
        let words = 1 << wp;
        let factor = 1 << factor_p;
        prop_assume!(words / factor >= 16);
        let tech = Tech::l65();
        let (mut d, id) = design_with(words, bits, depth);
        let before = max_frequency(&d, &tech).expect("times").expect("has paths");
        let capacity_before: u64 = d.module(id).macros.iter()
            .map(|m| m.config.capacity_bits()).sum();

        let out = divide_macro(&mut d, id, "ram", factor, DivideAxis::Words)
            .expect("in-range division");
        prop_assert!(d.validate().is_ok());
        prop_assert_eq!(out.part_names.len(), factor as usize);

        let capacity_after: u64 = d.module(id).macros.iter()
            .map(|m| m.config.capacity_bits()).sum();
        prop_assert_eq!(capacity_before, capacity_after, "capacity preserved");

        let after = max_frequency(&d, &tech).expect("times").expect("has paths");
        prop_assert!(
            after.value() >= before.value(),
            "division must not slow the design: {} -> {}", before, after
        );
    }

    /// Division of *any* in-range macro — including small ones where
    /// fmax may regress — always yields a structurally valid netlist
    /// with preserved capacity and rewired paths.
    #[test]
    fn division_is_always_structurally_sound(
        wp in 5u32..=14,
        bits in 4u32..=128,
        depth in 1usize..8,
    ) {
        let words = 1 << wp;
        let (mut d, id) = design_with(words, bits, depth);
        let out = divide_macro(&mut d, id, "ram", 2, DivideAxis::Words).expect("in range");
        prop_assert!(d.validate().is_ok());
        prop_assert!(d.module(id).find_macro("ram").is_none());
        for name in &out.part_names {
            prop_assert!(d.module(id).find_macro(name).is_some());
        }
        let read = d.module(id).paths.iter().find(|p| p.name == "read").expect("path kept");
        prop_assert!(read.launches_from_macro(&out.part_names[0]));
    }

    #[test]
    fn bit_division_preserves_capacity(
        wp in 4u32..=14,
        halves in 1u32..=2,
        depth in 1usize..8,
    ) {
        let words = 1 << wp;
        let bits = 64u32;
        let factor = 1 << halves;
        let tech = Tech::l65();
        let (mut d, id) = design_with(words, bits, depth);
        let cap_before: u64 = d.module(id).macros.iter().map(|m| m.config.capacity_bits()).sum();
        divide_macro(&mut d, id, "ram", factor, DivideAxis::Bits).expect("in range");
        let cap_after: u64 = d.module(id).macros.iter().map(|m| m.config.capacity_bits()).sum();
        prop_assert_eq!(cap_before, cap_after);
        prop_assert!(max_frequency(&d, &tech).expect("times").is_some());
    }
}
