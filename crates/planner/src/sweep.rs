//! Crash-safe, resumable DSE sweep campaigns.
//!
//! [`GpuPlanner::best_within`] plans the full 24-point `(CU count,
//! frequency)` grid — minutes of design-space exploration that, before
//! this module, restarted from zero whenever the host died. A
//! [`SweepConfig`] with a checkpoint path turns the sweep into a
//! campaign over the shared write-ahead journal (`ggpu-wal`, the same
//! machinery behind the fault crate's resumable campaigns):
//!
//! * every finished grid point appends **one journal line** carrying
//!   its status and — for planned points — the full optimization
//!   recipe and advice trace, fsynced by default;
//! * `kill -9` at *any* byte offset leaves either a whole record
//!   (the point is never re-run) or a torn tail (repaired on open; the
//!   point re-runs). Resumed sweeps reconstruct each recorded
//!   [`PlannedVersion`] deterministically — regenerate the baseline,
//!   replay the recipe, re-synthesize — so the final winner is
//!   byte-identical to an uninterrupted run;
//! * on completion the journal is **compacted** into a canonical
//!   snapshot (tmp sibling + fsync + atomic rename), deduplicated and
//!   sorted by point index.
//!
//! A per-candidate wall-clock budget ([`SweepConfig::candidate_budget`])
//! turns pathological points into structured, journaled skips
//! ([`SweepSkip`]) instead of unbounded stalls. With no checkpoint and
//! no budget the sweep is bit-identical to the legacy
//! [`GpuPlanner::best_within_with_threads`] — which now delegates
//! here.

use crate::dse::OptimizationPlan;
use crate::flow::{parallel_map, worker_threads, GpuPlanner, PlanError, PlannedVersion};
use crate::spec::Specification;
use ggpu_synth::synthesize;
use ggpu_tech::units::Mhz;
use ggpu_wal::{Journal, WalError, WalOp};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sweep campaign policy.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Total-area ceiling, mm².
    pub max_area_mm2: f64,
    /// Total-power ceiling, W.
    pub max_power_w: f64,
    /// Worker threads; `0` picks [`worker_threads`].
    pub threads: usize,
    /// Optional journal path: set to make the campaign resumable.
    pub checkpoint: Option<PathBuf>,
    /// Per-candidate wall-clock budget: a grid point whose planning
    /// exceeds it is recorded as a structured skip instead of a
    /// candidate. `None` (the default) never skips.
    pub candidate_budget: Option<Duration>,
    /// `fsync` each journal record (the default). Disable to trade
    /// power-loss durability for throughput (`kill -9` still loses
    /// nothing either way).
    pub sync: bool,
}

impl SweepConfig {
    /// A sweep under the given PPA ceilings, with defaults everywhere
    /// else (auto threads, no checkpoint, no budget, fsync on).
    pub fn budgets(max_area_mm2: f64, max_power_w: f64) -> Self {
        Self {
            max_area_mm2,
            max_power_w,
            threads: 0,
            checkpoint: None,
            candidate_budget: None,
            sync: true,
        }
    }

    /// Sets an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Makes the campaign resumable through a journal at `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the per-candidate wall-clock budget.
    pub fn with_candidate_budget(mut self, budget: Duration) -> Self {
        self.candidate_budget = Some(budget);
        self
    }

    /// Toggles per-record fsync.
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    fn header(&self, points: usize) -> String {
        let budget = match self.candidate_budget {
            Some(d) => format!("{}", d.as_millis()),
            None => "none".to_string(),
        };
        format!(
            "ggpu-sweep v1 area={:016x} power={:016x} points={points} budget={budget}",
            self.max_area_mm2.to_bits(),
            self.max_power_w.to_bits(),
        )
    }
}

/// Errors of a sweep campaign.
#[derive(Debug)]
pub enum SweepError {
    /// A grid point failed structurally (invalid configuration,
    /// synthesis error — the same failures that abort
    /// [`GpuPlanner::best_within`]).
    Plan(PlanError),
    /// Journal I/O failed; carries the offending path and operation.
    Io(WalError),
    /// The journal does not belong to this campaign, or a record is
    /// corrupt.
    Checkpoint(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Plan(e) => write!(f, "sweep point: {e}"),
            SweepError::Io(e) => write!(f, "sweep journal: {e}"),
            SweepError::Checkpoint(m) => write!(f, "sweep checkpoint: {m}"),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Plan(e) => Some(e),
            SweepError::Io(e) => Some(e),
            SweepError::Checkpoint(_) => None,
        }
    }
}

impl From<WalError> for SweepError {
    fn from(e: WalError) -> Self {
        // A complete-but-foreign header is a caller mistake, not an
        // I/O failure.
        if e.op == WalOp::Open && e.source.kind() == std::io::ErrorKind::InvalidData {
            SweepError::Checkpoint(e.source.to_string())
        } else {
            SweepError::Io(e)
        }
    }
}

impl From<PlanError> for SweepError {
    fn from(e: PlanError) -> Self {
        SweepError::Plan(e)
    }
}

/// One budget-exceeded grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSkip {
    /// CU count of the skipped point.
    pub compute_units: u32,
    /// Frequency of the skipped point, MHz.
    pub frequency_mhz: f64,
    /// Wall-clock the point consumed before being cut, ms (informative
    /// only; excluded from [`SweepReport::render`] so reports stay
    /// byte-stable across runs).
    pub elapsed_ms: u64,
}

/// The outcome of a sweep campaign.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The winning version under the ceilings, if any — identical to
    /// [`GpuPlanner::best_within`]'s under the same ceilings.
    pub winner: Option<PlannedVersion>,
    /// Grid points planned by this invocation.
    pub evaluated: usize,
    /// Grid points answered from the journal.
    pub resumed: usize,
    /// Grid points whose target frequency is unreachable.
    pub unreachable: usize,
    /// Budget-exceeded points, in grid order.
    pub skips: Vec<SweepSkip>,
}

impl SweepReport {
    /// A deterministic text summary. Skip wall-clocks and the
    /// evaluated/resumed split are omitted so an uninterrupted run and
    /// a resume from **any** kill point render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.evaluated + self.resumed;
        let _ = writeln!(out, "ggpu sweep: {total} points");
        let _ = writeln!(
            out,
            "winner      : {}",
            self.winner
                .as_ref()
                .map(|w| w.spec.version_name())
                .unwrap_or_else(|| "none".into())
        );
        let _ = writeln!(out, "unreachable : {}", self.unreachable);
        let _ = writeln!(out, "budget skips: {}", self.skips.len());
        for s in &self.skips {
            let _ = writeln!(out, "  {}cu@{:.0}MHz", s.compute_units, s.frequency_mhz);
        }
        out
    }
}

/// Journal-record status of one grid point.
#[derive(Debug, Clone, PartialEq)]
enum PointOutcome {
    Planned {
        plan: OptimizationPlan,
        trace: Vec<String>,
    },
    Unreachable,
    Budget {
        elapsed_ms: u64,
    },
}

/// One freshly-planned grid point: index, journal-record status, and
/// the planned version when the point was actually kept.
type FreshPoint = (usize, PointOutcome, Option<PlannedVersion>);

impl GpuPlanner {
    /// Runs a (optionally resumable, optionally budgeted) sweep
    /// campaign over [`GpuPlanner::sweep_points`] and reduces it to
    /// the best version within the configured ceilings.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] on structural planning failures
    /// (never for unreachable frequencies or budget skips), and
    /// [`SweepError::Io`]/[`SweepError::Checkpoint`] for journal
    /// problems.
    pub fn sweep(&self, config: &SweepConfig) -> Result<SweepReport, SweepError> {
        let points = Self::sweep_points();
        let spec_for = |i: usize| {
            let (cus, mhz) = points[i];
            Specification::new(cus, Mhz::new(mhz))
                .with_max_area_mm2(config.max_area_mm2)
                .with_max_power_w(config.max_power_w)
        };

        // Load whatever a previous invocation journaled (last record
        // per point wins, tolerating a pre-compaction duplicate).
        let mut done: BTreeMap<usize, PointOutcome> = BTreeMap::new();
        let journal = match &config.checkpoint {
            Some(path) => {
                let (journal, lines, _) = Journal::open(path, &config.header(points.len()))?;
                for line in &lines {
                    let (i, outcome) = parse_record(line)?;
                    if i >= points.len() {
                        return Err(SweepError::Checkpoint(format!(
                            "record for point {i} outside the {}-point grid",
                            points.len()
                        )));
                    }
                    done.insert(i, outcome);
                }
                Some(Mutex::new(journal.with_sync(config.sync)))
            }
            None => None,
        };
        let resumed = done.len();

        // Plan the missing points in parallel, journaling each outcome
        // the moment it exists. Structural errors are not recorded:
        // they abort the campaign and the point re-runs on resume.
        let missing: Vec<usize> = (0..points.len())
            .filter(|i| !done.contains_key(i))
            .collect();
        let threads = if config.threads == 0 {
            worker_threads(missing.len())
        } else {
            config.threads
        };
        let fresh: Vec<Result<FreshPoint, SweepError>> =
            parallel_map(missing.len(), threads, |k| {
                let i = missing[k];
                let started = Instant::now();
                let (outcome, version) = match self.plan(&spec_for(i)) {
                    Ok(v) => {
                        let elapsed = started.elapsed();
                        match config.candidate_budget {
                            Some(budget) if elapsed > budget => (
                                PointOutcome::Budget {
                                    elapsed_ms: elapsed.as_millis() as u64,
                                },
                                None,
                            ),
                            _ => (
                                PointOutcome::Planned {
                                    plan: v.plan.clone(),
                                    trace: v.trace.clone(),
                                },
                                Some(v),
                            ),
                        }
                    }
                    Err(PlanError::Dse(_)) => (PointOutcome::Unreachable, None),
                    Err(e) => return Err(SweepError::Plan(e)),
                };
                if let Some(journal) = &journal {
                    let mut j = journal.lock().unwrap_or_else(|p| p.into_inner());
                    j.append(&encode_record(i, &outcome))?;
                }
                Ok((i, outcome, version))
            });

        // First structural error in grid order aborts, exactly like
        // the legacy reduction.
        let mut outcomes: BTreeMap<usize, (PointOutcome, Option<PlannedVersion>)> =
            done.into_iter().map(|(i, o)| (i, (o, None))).collect();
        let mut evaluated = 0usize;
        for result in fresh {
            let (i, outcome, version) = result?;
            evaluated += 1;
            outcomes.insert(i, (outcome, version));
        }

        // Deterministic reduction in grid order: reconstruct resumed
        // candidates from their recorded recipe, keep the highest
        // throughput (ties broken by smaller area).
        let mut best: Option<(f64, PlannedVersion)> = None;
        let mut unreachable = 0usize;
        let mut skips = Vec::new();
        for (i, &(cus, mhz)) in points.iter().enumerate() {
            let Some((outcome, version)) = outcomes.remove(&i) else {
                continue;
            };
            let planned = match (outcome, version) {
                (PointOutcome::Unreachable, _) => {
                    unreachable += 1;
                    continue;
                }
                (PointOutcome::Budget { elapsed_ms }, _) => {
                    skips.push(SweepSkip {
                        compute_units: cus,
                        frequency_mhz: mhz,
                        elapsed_ms,
                    });
                    continue;
                }
                (PointOutcome::Planned { .. }, Some(v)) => v,
                (PointOutcome::Planned { plan, trace }, None) => {
                    self.rebuild_planned(&spec_for(i), plan, trace)?
                }
            };
            let area = planned.synthesis.stats.total_area().to_mm2();
            let power = planned.synthesis.total_power().to_watts();
            if area > config.max_area_mm2 || power > config.max_power_w {
                continue;
            }
            let throughput = f64::from(cus) * mhz;
            let better = match &best {
                None => true,
                Some((t, b)) => {
                    throughput > *t
                        || (throughput == *t && area < b.synthesis.stats.total_area().to_mm2())
                }
            };
            if better {
                best = Some((throughput, planned));
            }
        }

        // The grid is complete: compact the journal into a canonical
        // snapshot (deduplicated, sorted, atomically renamed into
        // place).
        if let (Some(_), Some(path)) = (&journal, &config.checkpoint) {
            let mut contents = config.header(points.len());
            contents.push('\n');
            // Re-read through a fresh open to fold this run's appends
            // and any pre-existing duplicates into one record per
            // point.
            let (_, lines, _) = Journal::open(path, &config.header(points.len()))?;
            let mut canonical: BTreeMap<usize, String> = BTreeMap::new();
            for line in &lines {
                let (i, outcome) = parse_record(line)?;
                canonical.insert(i, encode_record(i, &outcome));
            }
            for record in canonical.values() {
                contents.push_str(record);
                contents.push('\n');
            }
            ggpu_wal::write_snapshot(path, &contents)?;
        }

        Ok(SweepReport {
            winner: best.map(|(_, p)| p),
            evaluated,
            resumed,
            unreachable,
            skips,
        })
    }

    /// Deterministically reconstructs a [`PlannedVersion`] from its
    /// journaled recipe: regenerate the baseline, replay the plan,
    /// re-synthesize. Bit-identical to the original `plan` result
    /// (`rebuild_replays_the_recipe` pins the netlist identity).
    fn rebuild_planned(
        &self,
        spec: &Specification,
        plan: OptimizationPlan,
        trace: Vec<String>,
    ) -> Result<PlannedVersion, SweepError> {
        let config = self.config_for(spec)?;
        let mut design = self.rebuild(spec, &plan)?;
        design.set_name(format!(
            "ggpu_{}cu_{:.0}mhz",
            spec.compute_units,
            spec.frequency.value()
        ));
        // The original run passed the lint and resilience gates
        // (deterministic on the same netlist), so only the resilience
        // *report* needs recomputing.
        let resilience = self.resilience_policy(spec).and_then(|policy| {
            ggpu_fault::MacroMap::from_design(&design, &policy)
                .ok()
                .map(|map| ggpu_fault::ResilienceReport::from_map(&map, policy.to_string()))
        });
        let synthesis =
            synthesize(&design, self.tech(), spec.frequency).map_err(PlanError::Synthesis)?;
        Ok(PlannedVersion {
            spec: *spec,
            config,
            design,
            plan,
            synthesis,
            trace,
            resilience,
        })
    }
}

/// Percent-escapes a record field (delimiters, whitespace and `%`
/// itself become `%hh`).
fn esc(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.' | b'@' | b'-' | b'/' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

fn unesc(s: &str) -> Result<String, SweepError> {
    let bad = || SweepError::Checkpoint(format!("malformed escape in field `{s}`"));
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or_else(bad)?;
            let hex = std::str::from_utf8(hex).map_err(|_| bad())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| bad())?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| bad())
}

fn encode_plan(plan: &OptimizationPlan) -> String {
    let mut items = Vec::new();
    for ((module, mac), factor) in &plan.divisions {
        items.push(format!("d,{},{},{factor}", esc(module), esc(mac)));
    }
    for ((module, mac), banks) in &plan.bankings {
        items.push(format!("b,{},{},{banks}", esc(module), esc(mac)));
    }
    for (module, path) in &plan.pipelines {
        items.push(format!("l,{},{}", esc(module), esc(path)));
    }
    if items.is_empty() {
        "-".into()
    } else {
        items.join(";")
    }
}

fn decode_plan(s: &str) -> Result<OptimizationPlan, SweepError> {
    let mut plan = OptimizationPlan::default();
    if s == "-" {
        return Ok(plan);
    }
    let bad = |item: &str| SweepError::Checkpoint(format!("malformed plan item `{item}`"));
    for item in s.split(';') {
        let fields: Vec<&str> = item.split(',').collect();
        match fields.as_slice() {
            ["d", module, mac, factor] => {
                let factor = factor.parse::<u32>().map_err(|_| bad(item))?;
                plan.divisions.insert((unesc(module)?, unesc(mac)?), factor);
            }
            ["b", module, mac, banks] => {
                let banks = banks.parse::<u32>().map_err(|_| bad(item))?;
                plan.bankings.insert((unesc(module)?, unesc(mac)?), banks);
            }
            ["l", module, path] => plan.pipelines.push((unesc(module)?, unesc(path)?)),
            _ => return Err(bad(item)),
        }
    }
    Ok(plan)
}

fn encode_trace(trace: &[String]) -> String {
    if trace.is_empty() {
        "-".into()
    } else {
        trace.iter().map(|t| esc(t)).collect::<Vec<_>>().join(",")
    }
}

fn decode_trace(s: &str) -> Result<Vec<String>, SweepError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(unesc).collect()
}

fn encode_record(i: usize, outcome: &PointOutcome) -> String {
    match outcome {
        PointOutcome::Planned { plan, trace } => {
            format!("p {i} ok {} t={}", encode_plan(plan), encode_trace(trace))
        }
        PointOutcome::Unreachable => format!("p {i} dse"),
        PointOutcome::Budget { elapsed_ms } => format!("p {i} budget {elapsed_ms}"),
    }
}

fn parse_record(line: &str) -> Result<(usize, PointOutcome), SweepError> {
    let bad = || SweepError::Checkpoint(format!("malformed sweep record `{line}`"));
    let mut fields = line.split(' ');
    if fields.next() != Some("p") {
        return Err(bad());
    }
    let i = fields
        .next()
        .and_then(|f| f.parse::<usize>().ok())
        .ok_or_else(bad)?;
    let outcome = match fields.next() {
        Some("ok") => {
            let plan = decode_plan(fields.next().ok_or_else(bad)?)?;
            let trace_field = fields.next().ok_or_else(bad)?;
            let trace = decode_trace(trace_field.strip_prefix("t=").ok_or_else(bad)?)?;
            PointOutcome::Planned { plan, trace }
        }
        Some("dse") => PointOutcome::Unreachable,
        Some("budget") => PointOutcome::Budget {
            elapsed_ms: fields
                .next()
                .and_then(|f| f.parse::<u64>().ok())
                .ok_or_else(bad)?,
        },
        _ => return Err(bad()),
    };
    if fields.next().is_some() {
        return Err(bad());
    }
    Ok((i, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let mut plan = OptimizationPlan::default();
        plan.divisions.insert(("cu 0".into(), "reg;file".into()), 4);
        plan.bankings.insert(("gmc".into(), "tag%ram".into()), 2);
        plan.pipelines.push(("top".into(), "p__p0,p1".into()));
        let outcomes = [
            PointOutcome::Planned {
                plan,
                trace: vec!["divide cu 0/reg;file x4".into(), "100% done".into()],
            },
            PointOutcome::Unreachable,
            PointOutcome::Budget { elapsed_ms: 912 },
            PointOutcome::Planned {
                plan: OptimizationPlan::default(),
                trace: Vec::new(),
            },
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            let line = encode_record(i, outcome);
            assert!(!line.contains('\n'));
            let (j, parsed) = parse_record(&line).expect("round trip");
            assert_eq!(j, i);
            assert_eq!(&parsed, outcome);
        }
    }

    #[test]
    fn corrupt_records_are_refused() {
        for line in [
            "q 0 ok - t=-",
            "p x ok - t=-",
            "p 0 nonsense",
            "p 0 ok - t=- extra",
            "p 0 budget notanumber",
            "p 0 ok d,only,three t=-",
            "p 0 ok - t=%zz",
        ] {
            assert!(
                matches!(parse_record(line), Err(SweepError::Checkpoint(_))),
                "`{line}` must be refused"
            );
        }
    }

    #[test]
    fn escaping_is_reversible_for_hostile_strings() {
        for s in ["", "a b", "100%", "a,b;c d\te\nf", "ünïcode", "p 0 ok"] {
            assert_eq!(unesc(&esc(s)).expect("reversible"), s, "{s:?}");
        }
    }
}
