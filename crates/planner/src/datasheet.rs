//! Datasheet rendering: one self-contained text report per
//! implemented version — the document a designer would archive with
//! the tapeout-ready IP.

use crate::flow::ImplementedVersion;
use std::fmt::Write as _;

/// Renders a full datasheet for an implemented version: the
/// specification, the optimization recipe, the logic-synthesis PPA,
/// the layout characteristics and the per-CU route delays.
pub fn datasheet(version: &ImplementedVersion) -> String {
    let planned = &version.planned;
    let s = &planned.synthesis;
    let layout = &version.layout;
    let mut out = String::new();
    let _ = writeln!(out, "G-GPU datasheet: {}", planned.spec.version_name());
    let _ = writeln!(out, "=================================================");
    let _ = writeln!(out, "specification : {}", planned.spec);
    let _ = writeln!(out, "configuration : {}", planned.config);
    let _ = writeln!(out, "within spec   : {}", version.within_spec);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "optimization recipe ({} steps):",
        planned.plan.actions().len()
    );
    if planned.plan.is_empty() {
        let _ = writeln!(out, "  (baseline, no optimization required)");
    }
    for action in planned.plan.actions() {
        let _ = writeln!(out, "  {action}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "logic synthesis:");
    let _ = writeln!(
        out,
        "  total area    : {:>9.2} mm2",
        s.stats.total_area().to_mm2()
    );
    let _ = writeln!(
        out,
        "  memory area   : {:>9.2} mm2",
        s.stats.macro_area.to_mm2()
    );
    let _ = writeln!(out, "  flip-flops    : {:>9}", s.stats.ff_cells);
    let _ = writeln!(out, "  combinational : {:>9}", s.stats.comb_cells);
    let _ = writeln!(out, "  memory macros : {:>9}", s.stats.macro_count);
    let _ = writeln!(out, "  leakage       : {:>9.2} mW", s.leakage.value());
    let _ = writeln!(out, "  dynamic       : {:>9.2} W", s.dynamic.to_watts());
    let _ = writeln!(
        out,
        "  fmax          : {:>9}",
        s.fmax
            .map(|f| format!("{f:.0}"))
            .unwrap_or_else(|| "n/a".into())
    );
    if let Some(res) = &planned.resilience {
        let _ = writeln!(out);
        let _ = writeln!(out, "resilience:");
        let _ = writeln!(out, "  ecc policy    : {}", res.policy);
        let _ = writeln!(
            out,
            "  stored bits   : {:>9} ({} data + check)",
            res.stored_bits_total(),
            res.data_bits_total()
        );
        let _ = writeln!(out, "  ecc overhead  : {:>8.2} %", res.overhead_pct());
        let _ = writeln!(
            out,
            "  unprotected   : {:>8.2} % of stored bits",
            res.unprotected_fraction() * 100.0
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "physical synthesis:");
    let _ = writeln!(
        out,
        "  chip outline  : {:.2} x {:.2} mm ({:.2} mm2)",
        layout.floorplan.chip.w.to_mm(),
        layout.floorplan.chip.h.to_mm(),
        layout.floorplan.chip.area().to_mm2()
    );
    let _ = writeln!(
        out,
        "  wirelength    : {:>9.1} mm",
        layout.wirelength.total().to_mm()
    );
    for (layer, wl) in layout.wirelength.iter() {
        let _ = writeln!(out, "    {layer:<4}        : {:>9.0} um", wl.value());
    }
    // Gated on the analytical placer so datasheets of the default
    // (legacy) flow stay byte-identical across releases.
    if layout.placer == ggpu_pnr::Placer::Analytical {
        let _ = writeln!(
            out,
            "  macro HPWL    : {:>9.1} mm (analytical placer)",
            layout.macro_hpwl.to_mm()
        );
    }
    let _ = writeln!(out, "  achieved clock: {:.0}", layout.achieved_clock);
    let _ = writeln!(
        out,
        "  post-route    : {}",
        if layout.meets_timing {
            "MET"
        } else {
            "VIOLATED"
        }
    );
    let _ = writeln!(out, "  CU route delays to memory controller:");
    for (i, d) in layout.cu_route_delays.iter().enumerate() {
        let _ = writeln!(out, "    cu{i:<2}        : {:>9.3}", d);
    }
    out
}

/// [`datasheet`] plus the supervision record: when the flow degraded
/// or retried, a `flow supervision:` section lists every ladder step
/// and the retry count. A clean run appends **nothing** — the output
/// is byte-identical to [`datasheet`], so archived datasheets of
/// healthy flows never change.
pub fn datasheet_with_supervision(
    version: &ImplementedVersion,
    flow: &crate::supervise::DegradationReport,
) -> String {
    let mut out = datasheet(version);
    if flow.is_clean() {
        return out;
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "flow supervision:");
    let _ = writeln!(out, "  retries       : {:>9}", flow.retries);
    for step in &flow.steps {
        let _ = writeln!(
            out,
            "  degraded      : {}: {} -> {} ({})",
            step.stage, step.from, step.to, step.reason
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuPlanner, Specification};
    use ggpu_tech::units::Mhz;
    use ggpu_tech::Tech;

    #[test]
    fn datasheet_contains_every_section() {
        let planner = GpuPlanner::new(Tech::l65());
        let planned = planner
            .plan(&Specification::new(1, Mhz::new(590.0)))
            .unwrap();
        let implemented = planner.implement(&planned).unwrap();
        let text = datasheet(&implemented);
        for needle in [
            "G-GPU datasheet: 1cu@590MHz",
            "optimization recipe",
            "divide",
            "logic synthesis:",
            "memory macros",
            "physical synthesis:",
            "achieved clock: 590",
            "cu0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn resilient_spec_gets_a_resilience_section() {
        use ggpu_tech::sram::EccScheme;
        let planner = GpuPlanner::new(Tech::l65());
        let spec = Specification::new(1, Mhz::new(500.0)).with_resilience(EccScheme::SecDed);
        let implemented = planner.implement(&planner.plan(&spec).unwrap()).unwrap();
        let text = datasheet(&implemented);
        for needle in [
            "resilience:",
            "ecc policy    : default=secded",
            "ecc overhead",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // An unconstrained spec has no such section.
        let plain = planner
            .implement(
                &planner
                    .plan(&Specification::new(1, Mhz::new(500.0)))
                    .unwrap(),
            )
            .unwrap();
        assert!(!datasheet(&plain).contains("resilience:"));
    }

    #[test]
    fn legacy_datasheet_is_bit_identical_across_placer_wiring() {
        // The macro-HPWL line is the only placer-dependent datasheet
        // content, and it only appears under the analytical placer:
        // stripping it from the analytical sheet must reproduce the
        // legacy sheet byte for byte.
        use ggpu_pnr::Placer;
        let legacy = GpuPlanner::new(Tech::l65());
        let planned = legacy
            .plan(&Specification::new(2, Mhz::new(500.0)))
            .unwrap();
        let shelf_text = datasheet(&legacy.implement(&planned).unwrap());
        assert!(!shelf_text.contains("macro HPWL"));
        let analytic = GpuPlanner::new(Tech::l65()).with_placer(Placer::Analytical);
        let analytic_text = datasheet(&analytic.implement(&planned).unwrap());
        assert!(analytic_text.contains("macro HPWL"));
        let stripped: String = analytic_text
            .lines()
            .filter(|l| !l.contains("macro HPWL"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, shelf_text);
    }

    #[test]
    fn paper_layout_datasheets_pin_wirelength_and_route_summary() {
        // Regression fence for the paper's four physical versions: the
        // per-layer wirelength ordering of Table II and the route-delay
        // summary must not drift when placement internals change.
        let planner = GpuPlanner::new(Tech::l65());
        for spec in crate::versions::physical_versions() {
            let imp = planner.implement(&planner.plan(&spec).unwrap()).unwrap();
            let text = datasheet(&imp);
            let wl = &imp.layout.wirelength;
            // Table II shape: M3 dominates, upper layers taper off.
            assert!(wl.layer("M3") > wl.layer("M2"), "{spec}");
            assert!(wl.layer("M2") > wl.layer("M6"), "{spec}");
            assert!(wl.layer("M6") > wl.layer("M7"), "{spec}");
            assert!(wl.layer("M7").value() > 0.0, "{spec}");
            // Route-delay summary: one line per CU, last one present.
            let cus = spec.compute_units as usize;
            assert_eq!(imp.layout.cu_route_delays.len(), cus, "{spec}");
            assert!(text.contains(&format!("cu{}", cus - 1)), "{spec}");
            // Only 8cu@667 misses timing post-route (closes near 600).
            let expect_met = !(spec.compute_units == 8 && spec.frequency.value() > 600.0);
            assert_eq!(text.contains("post-route    : MET"), expect_met, "{spec}");
        }
    }

    #[test]
    fn baseline_datasheet_says_no_recipe() {
        let planner = GpuPlanner::new(Tech::l65());
        let implemented = planner
            .implement(
                &planner
                    .plan(&Specification::new(1, Mhz::new(500.0)))
                    .unwrap(),
            )
            .unwrap();
        assert!(datasheet(&implemented).contains("baseline, no optimization required"));
    }
}
