//! The design-space-exploration loop: iterate the frequency map's
//! advice until the target frequency is met.

use crate::cache::StaCache;
use crate::map::{advise_delta, advise_with, Advice};
use ggpu_lint::{check_division, check_pipeline, FlowSnapshot, LintConfig, Report};
use ggpu_netlist::{Design, ModuleId};
use ggpu_sta::StaError;
use ggpu_synth::{divide_macro, insert_pipeline, DivideAxis, TransformError};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// One concrete optimization action in a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Divide the named macro (original, pre-division name) into
    /// `factor` parts.
    Divide {
        /// Module owning the macro.
        module: String,
        /// Original macro name in the generated netlist.
        macro_name: String,
        /// Total division factor (power of two).
        factor: u32,
        /// Division axis.
        axis: DivideAxis,
    },
    /// Insert a pipeline register at the midpoint of the named path.
    Pipeline {
        /// Module owning the path.
        module: String,
        /// Path name at the time of insertion (halves of earlier
        /// insertions carry `__p0`/`__p1` suffixes).
        path: String,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Divide {
                module,
                macro_name,
                factor,
                axis,
            } => write!(f, "divide {module}/{macro_name} x{factor} ({axis})"),
            Action::Pipeline { module, path } => write!(f, "pipeline {module}/{path}"),
        }
    }
}

/// A reproducible optimization recipe: division factors per macro plus
/// an ordered list of pipeline insertions. Applying the same plan to a
/// freshly generated baseline yields the same optimized netlist, which
/// is how GPUPlanner regenerates versions "from a single push of a
/// button".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizationPlan {
    /// Total division factor per `(module, macro)`.
    pub divisions: BTreeMap<(String, String), u32>,
    /// Pipeline insertions in application order.
    pub pipelines: Vec<(String, String)>,
}

impl OptimizationPlan {
    /// `true` if the plan performs no work.
    pub fn is_empty(&self) -> bool {
        self.divisions.is_empty() && self.pipelines.is_empty()
    }

    /// All actions of the plan in application order.
    pub fn actions(&self) -> Vec<Action> {
        let mut out: Vec<Action> = self
            .divisions
            .iter()
            .map(|((module, macro_name), factor)| Action::Divide {
                module: module.clone(),
                macro_name: macro_name.clone(),
                factor: *factor,
                axis: DivideAxis::Words,
            })
            .collect();
        out.extend(
            self.pipelines
                .iter()
                .map(|(module, path)| Action::Pipeline {
                    module: module.clone(),
                    path: path.clone(),
                }),
        );
        out
    }
}

/// Errors of the DSE loop.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// A transform failed to apply.
    Transform(TransformError),
    /// Timing analysis failed.
    Sta(StaError),
    /// The target frequency is not reachable; the error carries the
    /// best frequency found.
    Unreachable {
        /// The requested frequency.
        target: Mhz,
        /// The best fmax achieved before getting stuck.
        best: Mhz,
    },
    /// A plan refers to a module missing from the design.
    UnknownModule(String),
    /// A transform step broke a flow invariant (memory division must
    /// preserve total macro bits, pipeline insertion must preserve
    /// macro timing endpoints); the report carries every finding.
    FlowInvariant(Report),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Transform(e) => write!(f, "transform: {e}"),
            DseError::Sta(e) => write!(f, "timing: {e}"),
            DseError::Unreachable { target, best } => {
                write!(f, "target {target:.0} unreachable; best {best:.0}")
            }
            DseError::UnknownModule(m) => write!(f, "plan references unknown module {m}"),
            DseError::FlowInvariant(report) => {
                write!(f, "flow invariant violated: {report}")
            }
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Transform(e) => Some(e),
            DseError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for DseError {
    fn from(e: TransformError) -> Self {
        DseError::Transform(e)
    }
}

impl From<StaError> for DseError {
    fn from(e: StaError) -> Self {
        DseError::Sta(e)
    }
}

/// Strips one `_d<digits>` division suffix, recovering the original
/// macro name a plan keys on.
fn original_macro_name(name: &str) -> &str {
    if let Some(pos) = name.rfind("_d") {
        if name[pos + 2..].chars().all(|c| c.is_ascii_digit()) && !name[pos + 2..].is_empty() {
            return &name[..pos];
        }
    }
    name
}

fn module_id(design: &Design, name: &str) -> Result<ModuleId, DseError> {
    design
        .module_by_name(name)
        .ok_or_else(|| DseError::UnknownModule(name.to_string()))
}

/// Strips a trailing bank index (`"cram0"` → `"cram"`), grouping the
/// identically-sized banks of one memory structure.
fn bank_base(name: &str) -> &str {
    name.trim_end_matches(|c: char| c.is_ascii_digit())
}

/// Applies `plan` to a fresh copy of `base`.
///
/// A division names one macro (the one on the representative timing
/// path), but is applied to *every* sibling bank of the same structure
/// (same name stem and geometry) — all banks of a divided memory fail
/// timing identically, and the paper's flow divides the structure, not
/// one bank.
///
/// # Errors
///
/// Returns [`DseError`] if a transform fails or a module is missing.
pub fn apply_plan(base: &Design, plan: &OptimizationPlan) -> Result<Design, DseError> {
    Ok(apply_plan_dirty(base, plan)?.0)
}

/// [`apply_plan`], additionally reporting which modules the plan
/// mutated (in ascending id order, deduplicated).
///
/// Module ids are arena indices and stable across [`Design::clone`],
/// so the returned set is valid against both `base` and the returned
/// design — it is exactly the advisory dirty set the incremental STA
/// entry points ([`crate::StaCache::analyze_delta`]) expect.
///
/// # Errors
///
/// Returns [`DseError`] if a transform fails or a module is missing.
pub fn apply_plan_dirty(
    base: &Design,
    plan: &OptimizationPlan,
) -> Result<(Design, Vec<ModuleId>), DseError> {
    let lint_config = LintConfig::new();
    let mut invariants = Report::new(base.name());
    let mut design = base.clone();
    let mut dirty = BTreeSet::new();
    for ((module, macro_name), factor) in &plan.divisions {
        let id = module_id(&design, module)?;
        dirty.insert(id);
        let target = design
            .module(id)
            .find_macro(macro_name)
            .cloned()
            .ok_or_else(|| {
                DseError::Transform(TransformError::MacroNotFound {
                    module: module.clone(),
                    name: macro_name.clone(),
                })
            })?;
        let base_name = bank_base(macro_name).to_string();
        let siblings: Vec<String> = design
            .module(id)
            .macros
            .iter()
            .filter(|m| bank_base(&m.name) == base_name && m.config == target.config)
            .map(|m| m.name.clone())
            .collect();
        let before = FlowSnapshot::of(&design);
        for name in siblings {
            divide_macro(&mut design, id, &name, *factor, DivideAxis::Words)?;
        }
        let after = FlowSnapshot::of(&design);
        check_division(
            before,
            after,
            &format!("{module}/{macro_name} x{factor}"),
            &lint_config,
            &mut invariants,
        );
        if invariants.denial_count() > 0 {
            return Err(DseError::FlowInvariant(invariants));
        }
    }
    for (module, path) in &plan.pipelines {
        let id = module_id(&design, module)?;
        dirty.insert(id);
        let before = FlowSnapshot::of(&design);
        insert_pipeline(&mut design, id, path)?;
        let after = FlowSnapshot::of(&design);
        check_pipeline(
            before,
            after,
            &format!("{module}/{path}"),
            &lint_config,
            &mut invariants,
        );
        if invariants.denial_count() > 0 {
            return Err(DseError::FlowInvariant(invariants));
        }
    }
    Ok((design, dirty.into_iter().collect()))
}

/// The result of a successful exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The optimized netlist.
    pub design: Design,
    /// The recipe that produced it.
    pub plan: OptimizationPlan,
    /// Achieved maximum frequency.
    pub fmax: Mhz,
    /// Human-readable trace of the map's advice at each iteration.
    pub trace: Vec<String>,
}

/// Iterates the frequency map until `base` (plus accumulated
/// transforms) meets `target`.
///
/// Mirrors the paper's §III loop: find the critical path; if it starts
/// at a memory block, divide that memory (factors double on repeated
/// advice); otherwise insert a pipeline; repeat.
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for(base: &Design, tech: &Tech, target: Mhz) -> Result<Optimized, DseError> {
    optimize_for_with(base, tech, target, &StaCache::new())
}

/// [`optimize_for`] with timing analyses memoized in `cache`.
///
/// Sharing one [`StaCache`] across the exploration of several targets
/// (and across worker threads) turns the repeated re-timing of common
/// plan prefixes into table lookups; see [`crate::cache`].
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for_with(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Optimized, DseError> {
    const MAX_ITERS: usize = 64;
    let mut plan = OptimizationPlan::default();
    let mut current = base.clone();
    let mut trace = Vec::new();
    let mut best = Mhz::new(0.0);
    // Modules mutated by the accumulated plan relative to `base`.
    // Empty until the first transform lands; thereafter every iteration
    // analyzes a design that differs from already-timed content only in
    // these modules, so advice flows through the incremental
    // `analyze_delta` path.
    let mut dirty: Option<Vec<ModuleId>> = None;

    for _ in 0..MAX_ITERS {
        let advice = match &dirty {
            // First iteration: the baseline is (possibly) cold, so no
            // dirty-set audit applies.
            None => advise_with(&current, tech, target, cache)?,
            Some(d) => advise_delta(&current, tech, target, cache, d)?,
        };
        trace.push(advice.to_string());
        match advice {
            Advice::Met { fmax } => {
                return Ok(Optimized {
                    design: current,
                    plan,
                    fmax,
                    trace,
                });
            }
            Advice::DivideMemory {
                module,
                macro_name,
                fmax,
            } => {
                if fmax.value() <= best.value() + 0.1 {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                let key = (module, original_macro_name(&macro_name).to_string());
                *plan.divisions.entry(key).or_insert(1) *= 2;
                let (next, touched) = apply_plan_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::InsertPipeline { module, path, fmax } => {
                if fmax.value() <= best.value() + 0.1 {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                plan.pipelines.push((module, path));
                let (next, touched) = apply_plan_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::Stuck { fmax, .. } => {
                return Err(DseError::Unreachable {
                    target,
                    best: fmax.max(best),
                });
            }
        }
    }
    Err(DseError::Unreachable { target, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::stats::design_stats;
    use ggpu_rtl::{generate, GgpuConfig};

    fn base() -> Design {
        generate(&GgpuConfig::with_cus(1).unwrap()).unwrap()
    }

    #[test]
    fn original_name_stripping() {
        assert_eq!(original_macro_name("rf_bank_d0"), "rf_bank");
        assert_eq!(original_macro_name("rf_bank_d12"), "rf_bank");
        assert_eq!(original_macro_name("rf_bank"), "rf_bank");
        assert_eq!(original_macro_name("dram_device"), "dram_device");
        assert_eq!(original_macro_name("x_d"), "x_d");
    }

    #[test]
    fn target_500_needs_no_plan() {
        let opt = optimize_for(&base(), &Tech::l65(), Mhz::new(500.0)).unwrap();
        assert!(opt.plan.is_empty());
        assert!(opt.fmax.value() >= 500.0);
    }

    #[test]
    fn target_590_divides_rf_and_cram_and_pipelines_scheduler() {
        let tech = Tech::l65();
        let opt = optimize_for(&base(), &tech, Mhz::new(590.0)).unwrap();
        assert!(opt.fmax.value() >= 590.0);
        // The paper's 590 MHz version: register files and instruction
        // memories divided, the scheduler logic pipelined.
        assert!(opt
            .plan
            .divisions
            .contains_key(&("processing_element".into(), "rf_bank".into())));
        assert!(!opt.plan.pipelines.is_empty());
        // Per-CU macro count grows from 42 to 52 (8 RF + 2 CRAM parts).
        let stats = design_stats(&opt.design, &tech).unwrap();
        assert!(
            (60..=72).contains(&(stats.macro_count as i64)),
            "1-CU total macros {}",
            stats.macro_count
        );
    }

    #[test]
    fn target_667_is_reachable() {
        let opt = optimize_for(&base(), &Tech::l65(), Mhz::new(667.0)).unwrap();
        assert!(opt.fmax.value() >= 667.0, "fmax {}", opt.fmax);
    }

    #[test]
    fn impossible_target_reports_best() {
        let err = optimize_for(&base(), &Tech::l65(), Mhz::new(2000.0)).unwrap_err();
        match err {
            DseError::Unreachable { target, best } => {
                assert_eq!(target, Mhz::new(2000.0));
                assert!(best.value() > 500.0, "best {best}");
                assert!(best.value() < 2000.0);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn plans_are_reproducible() {
        let tech = Tech::l65();
        let b = base();
        let opt = optimize_for(&b, &tech, Mhz::new(590.0)).unwrap();
        let replayed = apply_plan(&b, &opt.plan).unwrap();
        assert_eq!(replayed, opt.design);
    }

    #[test]
    fn apply_plan_preserves_total_macro_bits() {
        // Divisions re-bank memories but never change total storage;
        // the per-step FlowSnapshot checks in apply_plan enforce this,
        // and the end-to-end totals agree.
        let tech = Tech::l65();
        let b = base();
        let opt = optimize_for(&b, &tech, Mhz::new(590.0)).unwrap();
        assert!(!opt.plan.divisions.is_empty());
        assert_eq!(
            FlowSnapshot::of(&b).total_macro_bits,
            FlowSnapshot::of(&opt.design).total_macro_bits
        );
    }

    #[test]
    fn plan_with_unknown_module_fails() {
        let mut plan = OptimizationPlan::default();
        plan.divisions.insert(("ghost".into(), "x".into()), 2);
        assert!(matches!(
            apply_plan(&base(), &plan),
            Err(DseError::UnknownModule(_))
        ));
    }

    #[test]
    fn actions_listing_matches_plan() {
        let tech = Tech::l65();
        let opt = optimize_for(&base(), &tech, Mhz::new(590.0)).unwrap();
        let actions = opt.plan.actions();
        assert_eq!(
            actions.len(),
            opt.plan.divisions.len() + opt.plan.pipelines.len()
        );
        assert!(actions.iter().any(|a| matches!(a, Action::Divide { .. })));
    }
}
