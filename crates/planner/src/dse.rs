//! The design-space-exploration loop: iterate the frequency map's
//! advice until the target frequency is met.
//!
//! Since the transactional refactor, a DSE candidate is a
//! *transaction* on a [`crate::TransformJournal`], not a clone: the
//! greedy loop keeps one copy-on-write working design and moves it
//! between candidate plans by reverting/re-applying only the actions
//! that differ. The pre-journal clone-and-replay path is retained
//! verbatim ([`apply_plan_clone_dirty`], [`optimize_for_clone`]) as
//! the reference the equivalence property suite and `sta_bench`
//! compare against — the two paths are bit-identical in plans,
//! designs, traces and fmax bit patterns.

use crate::cache::StaCache;
use crate::journal::TransformJournal;
use crate::map::{advise_delta, advise_with, Advice};
use ggpu_lint::{check_banking, check_division, check_pipeline, FlowSnapshot, LintConfig, Report};
use ggpu_netlist::{Design, ModuleId};
use ggpu_sta::StaError;
use ggpu_synth::{bank_macro, divide_macro, insert_pipeline, DivideAxis, TransformError};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// One concrete optimization action in a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Divide the named macro (original, pre-division name) into
    /// `factor` parts.
    Divide {
        /// Module owning the macro.
        module: String,
        /// Original macro name in the generated netlist.
        macro_name: String,
        /// Total division factor (power of two).
        factor: u32,
        /// Division axis.
        axis: DivideAxis,
    },
    /// Re-bank the named macro's structural group into `banks`
    /// word-interleaved banks each.
    Bank {
        /// Module owning the macro.
        module: String,
        /// Macro name (one representative member of the group).
        macro_name: String,
        /// Banks per member macro (power of two, >= 2).
        banks: u32,
    },
    /// Insert a pipeline register at the midpoint of the named path.
    Pipeline {
        /// Module owning the path.
        module: String,
        /// Path name at the time of insertion (halves of earlier
        /// insertions carry `__p0`/`__p1` suffixes).
        path: String,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Divide {
                module,
                macro_name,
                factor,
                axis,
            } => write!(f, "divide {module}/{macro_name} x{factor} ({axis})"),
            Action::Bank {
                module,
                macro_name,
                banks,
            } => write!(f, "bank {module}/{macro_name} x{banks}"),
            Action::Pipeline { module, path } => write!(f, "pipeline {module}/{path}"),
        }
    }
}

/// A reproducible optimization recipe: division factors per macro plus
/// an ordered list of pipeline insertions. Applying the same plan to a
/// freshly generated baseline yields the same optimized netlist, which
/// is how GPUPlanner regenerates versions "from a single push of a
/// button".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizationPlan {
    /// Total division factor per `(module, macro)`.
    pub divisions: BTreeMap<(String, String), u32>,
    /// Banks per member macro for each banked `(module, macro)` group.
    /// Keys name post-division macros (banking composes after the
    /// divisions of the same plan). Empty on every legacy plan — the
    /// frequency-map loop never banks; only the memory co-optimizer
    /// ([`crate::memopt`]) fills this in.
    pub bankings: BTreeMap<(String, String), u32>,
    /// Pipeline insertions in application order.
    pub pipelines: Vec<(String, String)>,
}

impl OptimizationPlan {
    /// `true` if the plan performs no work.
    pub fn is_empty(&self) -> bool {
        self.divisions.is_empty() && self.bankings.is_empty() && self.pipelines.is_empty()
    }

    /// All actions of the plan in canonical application order:
    /// divisions in `BTreeMap` key order, then bankings in key order,
    /// then pipelines in insertion order. The journal's rebase diffs
    /// exactly this list.
    pub fn actions(&self) -> Vec<Action> {
        let mut out: Vec<Action> = self
            .divisions
            .iter()
            .map(|((module, macro_name), factor)| Action::Divide {
                module: module.clone(),
                macro_name: macro_name.clone(),
                factor: *factor,
                axis: DivideAxis::Words,
            })
            .collect();
        out.extend(
            self.bankings
                .iter()
                .map(|((module, macro_name), banks)| Action::Bank {
                    module: module.clone(),
                    macro_name: macro_name.clone(),
                    banks: *banks,
                }),
        );
        out.extend(
            self.pipelines
                .iter()
                .map(|(module, path)| Action::Pipeline {
                    module: module.clone(),
                    path: path.clone(),
                }),
        );
        out
    }
}

/// Errors of the DSE loop.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// A transform failed to apply.
    Transform(TransformError),
    /// Timing analysis failed.
    Sta(StaError),
    /// The target frequency is not reachable; the error carries the
    /// best frequency found.
    Unreachable {
        /// The requested frequency.
        target: Mhz,
        /// The best fmax achieved before getting stuck.
        best: Mhz,
    },
    /// A plan refers to a module missing from the design.
    UnknownModule(String),
    /// A transform step broke a flow invariant (memory division must
    /// preserve total macro bits, pipeline insertion must preserve
    /// macro timing endpoints); the report carries every finding.
    FlowInvariant(Report),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Transform(e) => write!(f, "transform: {e}"),
            DseError::Sta(e) => write!(f, "timing: {e}"),
            DseError::Unreachable { target, best } => {
                write!(f, "target {target:.0} unreachable; best {best:.0}")
            }
            DseError::UnknownModule(m) => write!(f, "plan references unknown module {m}"),
            DseError::FlowInvariant(report) => {
                write!(f, "flow invariant violated: {report}")
            }
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Transform(e) => Some(e),
            DseError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for DseError {
    fn from(e: TransformError) -> Self {
        DseError::Transform(e)
    }
}

impl From<StaError> for DseError {
    fn from(e: StaError) -> Self {
        DseError::Sta(e)
    }
}

/// Strips one `_d<digits>` division suffix, recovering the original
/// macro name a plan keys on.
pub(crate) fn original_macro_name(name: &str) -> &str {
    if let Some(pos) = name.rfind("_d") {
        if name[pos + 2..].chars().all(|c| c.is_ascii_digit()) && !name[pos + 2..].is_empty() {
            return &name[..pos];
        }
    }
    name
}

fn module_id(design: &Design, name: &str) -> Result<ModuleId, DseError> {
    design
        .module_by_name(name)
        .ok_or_else(|| DseError::UnknownModule(name.to_string()))
}

/// Applies `plan` to a fresh copy of `base`.
///
/// A division names one macro (the one on the representative timing
/// path), but is applied to *every* sibling bank of the same structure
/// (same name stem and geometry) — all banks of a divided memory fail
/// timing identically, and the paper's flow divides the structure, not
/// one bank.
///
/// # Errors
///
/// Returns [`DseError`] if a transform fails or a module is missing.
pub fn apply_plan(base: &Design, plan: &OptimizationPlan) -> Result<Design, DseError> {
    Ok(apply_plan_dirty(base, plan)?.0)
}

/// [`apply_plan`], additionally reporting which modules the plan
/// mutated (in ascending id order, deduplicated).
///
/// Module ids are arena indices and stable across [`Design::clone`],
/// so the returned set is valid against both `base` and the returned
/// design — it is exactly the advisory dirty set the incremental STA
/// entry points ([`crate::StaCache::analyze_delta`]) expect.
///
/// Implemented as a one-shot [`crate::TransformJournal`]: every action
/// is a lint-gated transaction, and the returned design shares every
/// untouched module (and its cached fingerprint) with `base` via
/// copy-on-write.
///
/// # Errors
///
/// Returns [`DseError`] if a transform fails or a module is missing.
pub fn apply_plan_dirty(
    base: &Design,
    plan: &OptimizationPlan,
) -> Result<(Design, Vec<ModuleId>), DseError> {
    let mut journal = TransformJournal::new(base);
    let dirty = journal.rebase(plan)?;
    Ok((journal.into_design(), dirty))
}

/// The pre-journal [`apply_plan_dirty`], retained verbatim: deep-clone
/// the base, then replay the plan step by step with the flow lints
/// checked per step. The equivalence property suite and `sta_bench`
/// replay plans through this path and through the journal and assert
/// the results are bit-identical.
///
/// # Errors
///
/// Returns [`DseError`] if a transform fails or a module is missing.
pub fn apply_plan_clone_dirty(
    base: &Design,
    plan: &OptimizationPlan,
) -> Result<(Design, Vec<ModuleId>), DseError> {
    let lint_config = LintConfig::new();
    let mut invariants = Report::new(base.name());
    let mut design = base.deep_clone();
    let mut dirty = BTreeSet::new();
    for ((module, macro_name), factor) in &plan.divisions {
        let id = module_id(&design, module)?;
        dirty.insert(id);
        let target = design
            .module(id)
            .find_macro(macro_name)
            .cloned()
            .ok_or_else(|| {
                DseError::Transform(TransformError::MacroNotFound {
                    module: module.clone(),
                    name: macro_name.clone(),
                })
            })?;
        let siblings = design.module(id).sibling_macro_names(&target);
        let before = FlowSnapshot::of(&design);
        for name in siblings {
            divide_macro(&mut design, id, &name, *factor, DivideAxis::Words)?;
        }
        let after = FlowSnapshot::of(&design);
        check_division(
            before,
            after,
            &format!("{module}/{macro_name} x{factor}"),
            &lint_config,
            &mut invariants,
        );
        if invariants.denial_count() > 0 {
            return Err(DseError::FlowInvariant(invariants));
        }
    }
    for ((module, macro_name), banks) in &plan.bankings {
        let id = module_id(&design, module)?;
        dirty.insert(id);
        let group_ports = design
            .module(id)
            .find_macro(macro_name)
            .map(|m| m.config.port_count())
            .ok_or_else(|| {
                DseError::Transform(TransformError::MacroNotFound {
                    module: module.clone(),
                    name: macro_name.clone(),
                })
            })?;
        let before = FlowSnapshot::of(&design);
        bank_macro(&mut design, id, macro_name, *banks)?;
        let after = FlowSnapshot::of(&design);
        check_banking(
            before,
            after,
            *banks,
            group_ports,
            &format!("{module}/{macro_name} x{banks}"),
            &lint_config,
            &mut invariants,
        );
        if invariants.denial_count() > 0 {
            return Err(DseError::FlowInvariant(invariants));
        }
    }
    for (module, path) in &plan.pipelines {
        let id = module_id(&design, module)?;
        dirty.insert(id);
        let before = FlowSnapshot::of(&design);
        insert_pipeline(&mut design, id, path)?;
        let after = FlowSnapshot::of(&design);
        check_pipeline(
            before,
            after,
            &format!("{module}/{path}"),
            &lint_config,
            &mut invariants,
        );
        if invariants.denial_count() > 0 {
            return Err(DseError::FlowInvariant(invariants));
        }
    }
    Ok((design, dirty.into_iter().collect()))
}

/// The result of a successful exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The optimized netlist.
    pub design: Design,
    /// The recipe that produced it.
    pub plan: OptimizationPlan,
    /// Achieved maximum frequency.
    pub fmax: Mhz,
    /// Human-readable trace of the map's advice at each iteration.
    pub trace: Vec<String>,
}

/// Search configuration for the DSE loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseConfig {
    /// Number of candidate plans kept alive per iteration.
    ///
    /// `1` (the default) is the paper's greedy loop — follow the
    /// frequency map's single advice — and is bit-identical to the
    /// pre-refactor path. Widths above 1 run a beam search over the
    /// journal: each iteration expands every surviving plan with the
    /// remedies for its worst paths and keeps the best `beam_width`,
    /// always including the protected greedy chain, so the result is
    /// never worse than greedy.
    pub beam_width: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self { beam_width: 1 }
    }
}

impl DseConfig {
    /// The default greedy configuration (`beam_width == 1`).
    pub fn greedy() -> Self {
        Self::default()
    }

    /// A beam of `width` candidate plans (`0` is clamped to `1`).
    pub fn with_beam_width(width: usize) -> Self {
        Self {
            beam_width: width.max(1),
        }
    }
}

/// Iterates the frequency map until `base` (plus accumulated
/// transforms) meets `target`.
///
/// Mirrors the paper's §III loop: find the critical path; if it starts
/// at a memory block, divide that memory (factors double on repeated
/// advice); otherwise insert a pipeline; repeat.
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for(base: &Design, tech: &Tech, target: Mhz) -> Result<Optimized, DseError> {
    optimize_for_with(base, tech, target, &StaCache::new())
}

/// [`optimize_for`] with timing analyses memoized in `cache`.
///
/// Sharing one [`StaCache`] across the exploration of several targets
/// (and across worker threads) turns the repeated re-timing of common
/// plan prefixes into table lookups; see [`crate::cache`].
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for_with(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Optimized, DseError> {
    optimize_with_config(base, tech, target, cache, &DseConfig::default())
}

/// [`optimize_for_with`] under an explicit [`DseConfig`].
///
/// `beam_width == 1` runs the journal-backed greedy loop
/// (bit-identical to [`optimize_for_clone`]); wider beams run
/// [`crate::beam`]'s search, which is never worse than greedy (the
/// greedy chain is kept alive in the beam).
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if no surviving candidate meets
/// the target.
pub fn optimize_with_config(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
    config: &DseConfig,
) -> Result<Optimized, DseError> {
    if config.beam_width <= 1 {
        optimize_greedy_journal(base, tech, target, cache)
    } else {
        crate::beam::optimize_beam(base, tech, target, cache, config.beam_width)
    }
}

/// Maximum DSE iterations before declaring the target unreachable.
pub(crate) const MAX_ITERS: usize = 64;

/// Minimum fmax improvement (MHz) an iteration must deliver for the
/// loop to count it as progress.
pub(crate) const MIN_PROGRESS_MHZ: f64 = 0.1;

/// The greedy loop over a [`TransformJournal`]: one working design,
/// candidates reached by rebase (revert + re-apply of the differing
/// suffix), zero clones on the candidate hot path.
fn optimize_greedy_journal(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Optimized, DseError> {
    let mut plan = OptimizationPlan::default();
    let mut journal = TransformJournal::new(base);
    let mut trace = Vec::new();
    let mut best = Mhz::new(0.0);
    // Modules mutated by the latest rebase. Empty until the first
    // transform lands; thereafter every iteration analyzes a design
    // that differs from already-timed content only in these modules,
    // so advice flows through the incremental `analyze_delta` path.
    let mut dirty: Option<Vec<ModuleId>> = None;

    for _ in 0..MAX_ITERS {
        let advice = match &dirty {
            // First iteration: the baseline is (possibly) cold, so no
            // dirty-set audit applies.
            None => advise_with(journal.design(), tech, target, cache)?,
            Some(d) => advise_delta(journal.design(), tech, target, cache, d)?,
        };
        trace.push(advice.to_string());
        match advice {
            Advice::Met { fmax } => {
                return Ok(Optimized {
                    design: journal.into_design(),
                    plan,
                    fmax,
                    trace,
                });
            }
            Advice::DivideMemory {
                module,
                macro_name,
                fmax,
            } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                let key = (module, original_macro_name(&macro_name).to_string());
                *plan.divisions.entry(key).or_insert(1) *= 2;
                dirty = Some(journal.rebase(&plan)?);
            }
            Advice::InsertPipeline { module, path, fmax } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                plan.pipelines.push((module, path));
                dirty = Some(journal.rebase(&plan)?);
            }
            Advice::Stuck { fmax, .. } => {
                return Err(DseError::Unreachable {
                    target,
                    best: fmax.max(best),
                });
            }
        }
    }
    Err(DseError::Unreachable { target, best })
}

/// The greedy loop over copy-on-write replays: every iteration
/// replays the whole accumulated plan from the base through
/// [`apply_plan_dirty`] (a CoW clone plus a one-shot journal), but
/// never keeps a journal alive across iterations.
///
/// This is the *middle* leg of `sta_bench`'s clone-vs-CoW-vs-journal
/// comparison: it isolates how much of the speedup comes from CoW
/// clones alone (cheap copies, full replays) versus the journal's
/// rebase (no replays at all). Bit-identical to both neighbours.
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for_cow(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Optimized, DseError> {
    let mut plan = OptimizationPlan::default();
    let mut current = base.clone();
    let mut trace = Vec::new();
    let mut best = Mhz::new(0.0);
    let mut dirty: Option<Vec<ModuleId>> = None;

    for _ in 0..MAX_ITERS {
        let advice = match &dirty {
            None => advise_with(&current, tech, target, cache)?,
            Some(d) => advise_delta(&current, tech, target, cache, d)?,
        };
        trace.push(advice.to_string());
        match advice {
            Advice::Met { fmax } => {
                return Ok(Optimized {
                    design: current,
                    plan,
                    fmax,
                    trace,
                });
            }
            Advice::DivideMemory {
                module,
                macro_name,
                fmax,
            } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                let key = (module, original_macro_name(&macro_name).to_string());
                *plan.divisions.entry(key).or_insert(1) *= 2;
                let (next, touched) = apply_plan_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::InsertPipeline { module, path, fmax } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                plan.pipelines.push((module, path));
                let (next, touched) = apply_plan_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::Stuck { fmax, .. } => {
                return Err(DseError::Unreachable {
                    target,
                    best: fmax.max(best),
                });
            }
        }
    }
    Err(DseError::Unreachable { target, best })
}

/// The pre-journal greedy loop, retained verbatim as the reference:
/// every iteration deep-clones the base and replays the whole
/// accumulated plan through [`apply_plan_clone_dirty`].
///
/// Exists so the equivalence suite and `sta_bench` can assert the
/// journal path is bit-identical (plans, designs, traces, fmax bit
/// patterns) while measuring what the clone tax used to cost.
///
/// # Errors
///
/// Returns [`DseError::Unreachable`] if the advice runs out or stops
/// making progress before the target is met.
pub fn optimize_for_clone(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Optimized, DseError> {
    let mut plan = OptimizationPlan::default();
    let mut current = base.deep_clone();
    let mut trace = Vec::new();
    let mut best = Mhz::new(0.0);
    let mut dirty: Option<Vec<ModuleId>> = None;

    for _ in 0..MAX_ITERS {
        let advice = match &dirty {
            None => advise_with(&current, tech, target, cache)?,
            Some(d) => advise_delta(&current, tech, target, cache, d)?,
        };
        trace.push(advice.to_string());
        match advice {
            Advice::Met { fmax } => {
                return Ok(Optimized {
                    design: current,
                    plan,
                    fmax,
                    trace,
                });
            }
            Advice::DivideMemory {
                module,
                macro_name,
                fmax,
            } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                let key = (module, original_macro_name(&macro_name).to_string());
                *plan.divisions.entry(key).or_insert(1) *= 2;
                let (next, touched) = apply_plan_clone_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::InsertPipeline { module, path, fmax } => {
                if fmax.value() <= best.value() + MIN_PROGRESS_MHZ {
                    return Err(DseError::Unreachable { target, best });
                }
                best = fmax;
                plan.pipelines.push((module, path));
                let (next, touched) = apply_plan_clone_dirty(base, &plan)?;
                current = next;
                dirty = Some(touched);
            }
            Advice::Stuck { fmax, .. } => {
                return Err(DseError::Unreachable {
                    target,
                    best: fmax.max(best),
                });
            }
        }
    }
    Err(DseError::Unreachable { target, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::stats::design_stats;
    use ggpu_rtl::{generate, GgpuConfig};

    fn base() -> Design {
        generate(&GgpuConfig::with_cus(1).unwrap()).unwrap()
    }

    #[test]
    fn original_name_stripping() {
        assert_eq!(original_macro_name("rf_bank_d0"), "rf_bank");
        assert_eq!(original_macro_name("rf_bank_d12"), "rf_bank");
        assert_eq!(original_macro_name("rf_bank"), "rf_bank");
        assert_eq!(original_macro_name("dram_device"), "dram_device");
        assert_eq!(original_macro_name("x_d"), "x_d");
    }

    #[test]
    fn target_500_needs_no_plan() {
        let opt = optimize_for(&base(), &Tech::l65(), Mhz::new(500.0)).unwrap();
        assert!(opt.plan.is_empty());
        assert!(opt.fmax.value() >= 500.0);
    }

    #[test]
    fn target_590_divides_rf_and_cram_and_pipelines_scheduler() {
        let tech = Tech::l65();
        let opt = optimize_for(&base(), &tech, Mhz::new(590.0)).unwrap();
        assert!(opt.fmax.value() >= 590.0);
        // The paper's 590 MHz version: register files and instruction
        // memories divided, the scheduler logic pipelined.
        assert!(opt
            .plan
            .divisions
            .contains_key(&("processing_element".into(), "rf_bank".into())));
        assert!(!opt.plan.pipelines.is_empty());
        // Per-CU macro count grows from 42 to 52 (8 RF + 2 CRAM parts).
        let stats = design_stats(&opt.design, &tech).unwrap();
        assert!(
            (60..=72).contains(&(stats.macro_count as i64)),
            "1-CU total macros {}",
            stats.macro_count
        );
    }

    #[test]
    fn target_667_is_reachable() {
        let opt = optimize_for(&base(), &Tech::l65(), Mhz::new(667.0)).unwrap();
        assert!(opt.fmax.value() >= 667.0, "fmax {}", opt.fmax);
    }

    #[test]
    fn legacy_plans_never_bank() {
        // The frequency-map exploration only divides and pipelines;
        // `bankings` stays empty unless `co_optimize_memory` is asked
        // for. This is what keeps all 12 Table-I versions (and their
        // datasheets) byte-identical to the pre-banking flow.
        let tech = Tech::l65();
        let b = base();
        for mhz in [500.0, 590.0, 667.0] {
            let opt = optimize_for(&b, &tech, Mhz::new(mhz)).unwrap();
            assert!(
                opt.plan.bankings.is_empty(),
                "{mhz} MHz plan banked: {:?}",
                opt.plan.bankings
            );
        }
    }

    #[test]
    fn impossible_target_reports_best() {
        let err = optimize_for(&base(), &Tech::l65(), Mhz::new(2000.0)).unwrap_err();
        match err {
            DseError::Unreachable { target, best } => {
                assert_eq!(target, Mhz::new(2000.0));
                assert!(best.value() > 500.0, "best {best}");
                assert!(best.value() < 2000.0);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn plans_are_reproducible() {
        let tech = Tech::l65();
        let b = base();
        let opt = optimize_for(&b, &tech, Mhz::new(590.0)).unwrap();
        let replayed = apply_plan(&b, &opt.plan).unwrap();
        assert_eq!(replayed, opt.design);
    }

    #[test]
    fn journal_loop_matches_clone_reference() {
        // The headline bit-identity claim, on the real design: the
        // journal-backed greedy loop, the CoW-replay middle leg and the
        // retained clone-and-replay loop agree on everything, down to
        // fmax bit patterns.
        let tech = Tech::l65();
        let b = base();
        for target in [500.0, 590.0, 667.0] {
            let target = Mhz::new(target);
            let journal = optimize_for_with(&b, &tech, target, &StaCache::new()).unwrap();
            let cow = optimize_for_cow(&b, &tech, target, &StaCache::new()).unwrap();
            let clone = optimize_for_clone(&b, &tech, target, &StaCache::new()).unwrap();
            for (name, other) in [("cow", &cow), ("clone", &clone)] {
                assert_eq!(journal.plan, other.plan, "{name} plan diverges at {target}");
                assert_eq!(
                    journal.design, other.design,
                    "{name} design diverges at {target}"
                );
                assert_eq!(
                    journal.trace, other.trace,
                    "{name} trace diverges at {target}"
                );
                assert_eq!(
                    journal.fmax.value().to_bits(),
                    other.fmax.value().to_bits(),
                    "{name} fmax bits diverge at {target}"
                );
            }
        }
    }

    #[test]
    fn apply_plan_matches_clone_replay() {
        let tech = Tech::l65();
        let b = base();
        let opt = optimize_for(&b, &tech, Mhz::new(667.0)).unwrap();
        let (journal, dirty_j) = apply_plan_dirty(&b, &opt.plan).unwrap();
        let (clone, dirty_c) = apply_plan_clone_dirty(&b, &opt.plan).unwrap();
        assert_eq!(journal, clone);
        assert_eq!(dirty_j, dirty_c);
        assert_eq!(
            ggpu_netlist::to_structural_verilog(&journal),
            ggpu_netlist::to_structural_verilog(&clone)
        );
    }

    #[test]
    fn apply_plan_preserves_total_macro_bits() {
        // Divisions re-bank memories but never change total storage;
        // the per-transaction FlowSnapshot checks in the journal
        // enforce this, and the end-to-end totals agree.
        let tech = Tech::l65();
        let b = base();
        let opt = optimize_for(&b, &tech, Mhz::new(590.0)).unwrap();
        assert!(!opt.plan.divisions.is_empty());
        assert_eq!(
            FlowSnapshot::of(&b).total_macro_bits,
            FlowSnapshot::of(&opt.design).total_macro_bits
        );
    }

    #[test]
    fn plan_with_unknown_module_fails() {
        let mut plan = OptimizationPlan::default();
        plan.divisions.insert(("ghost".into(), "x".into()), 2);
        assert!(matches!(
            apply_plan(&base(), &plan),
            Err(DseError::UnknownModule(_))
        ));
        assert!(matches!(
            apply_plan_clone_dirty(&base(), &plan),
            Err(DseError::UnknownModule(_))
        ));
    }

    #[test]
    fn actions_listing_matches_plan() {
        let tech = Tech::l65();
        let opt = optimize_for(&base(), &tech, Mhz::new(590.0)).unwrap();
        let actions = opt.plan.actions();
        assert_eq!(
            actions.len(),
            opt.plan.divisions.len() + opt.plan.pipelines.len()
        );
        assert!(actions.iter().any(|a| matches!(a, Action::Divide { .. })));
    }

    #[test]
    fn dse_config_defaults_to_greedy() {
        assert_eq!(DseConfig::default().beam_width, 1);
        assert_eq!(DseConfig::greedy(), DseConfig::default());
        assert_eq!(DseConfig::with_beam_width(0).beam_width, 1);
        assert_eq!(DseConfig::with_beam_width(3).beam_width, 3);
    }
}
