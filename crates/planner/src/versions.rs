//! The version lists evaluated in the paper.

use crate::spec::Specification;
use ggpu_tech::units::Mhz;

/// The paper's three frequency points.
pub const PAPER_FREQUENCIES_MHZ: [f64; 3] = [500.0, 590.0, 667.0];
/// The paper's four CU counts.
pub const PAPER_CU_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// The 12 logic-synthesis versions of Table I
/// ({1, 2, 4, 8} CUs × {500, 590, 667} MHz).
pub fn paper_versions() -> Vec<Specification> {
    let mut out = Vec::with_capacity(12);
    for &cus in &PAPER_CU_COUNTS {
        for &f in &PAPER_FREQUENCIES_MHZ {
            out.push(Specification::new(cus, Mhz::new(f)));
        }
    }
    out
}

/// The four extreme versions taken through physical synthesis
/// (1CU@500, 1CU@667, 8CU@500, 8CU@667 — the last closing at 600 MHz).
pub fn physical_versions() -> Vec<Specification> {
    vec![
        Specification::new(1, Mhz::new(500.0)),
        Specification::new(1, Mhz::new(667.0)),
        Specification::new(8, Mhz::new(500.0)),
        Specification::new(8, Mhz::new(667.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_paper_versions() {
        let v = paper_versions();
        assert_eq!(v.len(), 12);
        assert_eq!(v[0].version_name(), "1cu@500MHz");
        assert_eq!(v[11].version_name(), "8cu@667MHz");
    }

    #[test]
    fn four_physical_versions_are_the_extremes() {
        let v = physical_versions();
        assert_eq!(v.len(), 4);
        assert!(v
            .iter()
            .all(|s| s.compute_units == 1 || s.compute_units == 8));
    }
}
