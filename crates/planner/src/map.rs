//! The frequency map: GPUPlanner's "dynamic spreadsheet".
//!
//! The paper describes a map that, given the memory delays of the
//! unoptimized design, tells the designer *"the maximum performance
//! and which memory has to be divided or where to introduce pipelines
//! to enhance the performance"*, iterated until the target is met.
//! [`advise`] is that map as a function: it times the design and
//! returns the next recommended action for a frequency target.

use crate::cache::StaCache;
use ggpu_netlist::{Design, ModuleId};
use ggpu_sta::StaError;
use ggpu_tech::sram::MIN_WORDS;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::fmt;

/// The map's recommendation for the next optimization step.
#[derive(Debug, Clone, PartialEq)]
pub enum Advice {
    /// The design already meets the target.
    Met {
        /// Its maximum frequency.
        fmax: Mhz,
    },
    /// Divide a memory macro: the critical path launches from it.
    DivideMemory {
        /// Module owning the macro.
        module: String,
        /// The macro on the critical path (possibly an earlier
        /// division part, e.g. `"rf_bank_d0"`).
        macro_name: String,
        /// Current fmax, for the designer's log.
        fmax: Mhz,
    },
    /// Insert a pipeline register: the critical path is pure logic.
    InsertPipeline {
        /// Module owning the path.
        module: String,
        /// The critical path's name.
        path: String,
        /// Current fmax.
        fmax: Mhz,
    },
    /// No further structural remedy exists (macro at minimum size and
    /// path too shallow to pipeline, or the target exceeds what the
    /// technology supports).
    Stuck {
        /// Best achievable frequency found.
        fmax: Mhz,
        /// The limiting path.
        path: String,
    },
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::Met { fmax } => write!(f, "target met (fmax {fmax:.0})"),
            Advice::DivideMemory {
                module,
                macro_name,
                fmax,
            } => write!(f, "divide {module}/{macro_name} (fmax {fmax:.0})"),
            Advice::InsertPipeline { module, path, fmax } => {
                write!(f, "pipeline {module}/{path} (fmax {fmax:.0})")
            }
            Advice::Stuck { fmax, path } => {
                write!(f, "stuck at {fmax:.0} on {path}")
            }
        }
    }
}

/// Produces the next recommended action toward `target`.
///
/// Decision rule, straight from the paper: if the critical path starts
/// at a memory block, divide that memory; otherwise insert a pipeline.
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn advise(design: &Design, tech: &Tech, target: Mhz) -> Result<Advice, StaError> {
    advise_with(design, tech, target, &StaCache::new())
}

/// [`advise`] with timing analyses memoized in `cache`.
///
/// The DSE loop re-times near-identical netlists — the baseline and
/// every shared plan prefix — once per frequency target; threading one
/// [`StaCache`] through makes those repeats table lookups.
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn advise_with(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
) -> Result<Advice, StaError> {
    advise_inner(design, tech, target, cache, None)
}

/// [`advise_with`] for a design derived from one the cache has already
/// timed: `dirty` names the modules mutated since. The full report
/// behind the advice is produced by
/// [`StaCache::analyze_delta`](crate::StaCache::analyze_delta), which
/// re-times only content the module-level engine has not seen — the
/// dirty set itself is advisory and audited, never trusted for
/// correctness.
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn advise_delta(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
    dirty: &[ModuleId],
) -> Result<Advice, StaError> {
    advise_inner(design, tech, target, cache, Some(dirty))
}

/// Up to `k` distinct candidate actions toward `target`, best-first.
///
/// The beam search's expansion rule. Walks the timing report's paths
/// in slack order and derives, for each, the remedy the paper's
/// decision rule would pick for *that* path (divide the launching
/// macro if it is still divisible, else pipeline the path if deep
/// enough), deduplicated. The first candidate therefore coincides with
/// [`advise_delta`]'s single advice whenever the critical path has a
/// remedy — which is what keeps the protected greedy chain inside the
/// beam exact.
///
/// Returns `vec![Advice::Met { .. }]` when the design already meets
/// the target and `vec![Advice::Stuck { .. }]` when no walked path has
/// a remedy.
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn advise_candidates(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
    dirty: Option<&[ModuleId]>,
    k: usize,
) -> Result<Vec<Advice>, StaError> {
    let fmax = match cache.max_frequency(design, tech)? {
        Some(f) => f,
        None => return Ok(vec![Advice::Met { fmax: target }]),
    };
    if fmax.value() >= target.value() {
        return Ok(vec![Advice::Met { fmax }]);
    }
    let report = match dirty {
        Some(dirty) => cache.analyze_delta(design, tech, target, dirty)?,
        None => cache.analyze(design, tech, target)?,
    };
    let mut out: Vec<Advice> = Vec::new();
    let mut seen: std::collections::BTreeSet<(bool, String, String)> =
        std::collections::BTreeSet::new();
    for crit in report.paths() {
        if out.len() >= k.max(1) {
            break;
        }
        let module_id = design
            .module_by_name(&crit.module)
            .expect("report module exists");
        let module = design.module(module_id);
        if let ggpu_netlist::timing::PathEndpoint::Macro(name) = &crit.start {
            let can_divide = module
                .find_macro(name)
                .map(|m| m.config.words / 2 >= MIN_WORDS && m.config.words % 2 == 0)
                .unwrap_or(false);
            if can_divide {
                if seen.insert((true, crit.module.clone(), name.clone())) {
                    out.push(Advice::DivideMemory {
                        module: crit.module.clone(),
                        macro_name: name.clone(),
                        fmax,
                    });
                }
                continue;
            }
        }
        let depth = module
            .paths
            .iter()
            .find(|p| p.name == crit.path)
            .map(|p| p.depth())
            .unwrap_or(0);
        if depth >= 2 && seen.insert((false, crit.module.clone(), crit.path.clone())) {
            out.push(Advice::InsertPipeline {
                module: crit.module.clone(),
                path: crit.path.clone(),
                fmax,
            });
        }
    }
    if out.is_empty() {
        let crit = report.paths().first().expect("paths exist");
        return Ok(vec![Advice::Stuck {
            fmax,
            path: format!("{}::{}", crit.module, crit.path),
        }]);
    }
    Ok(out)
}

fn advise_inner(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
    dirty: Option<&[ModuleId]>,
) -> Result<Advice, StaError> {
    let fmax = match cache.max_frequency(design, tech)? {
        Some(f) => f,
        None => {
            // No timing paths at all: trivially meets any target.
            return Ok(Advice::Met { fmax: target });
        }
    };
    if fmax.value() >= target.value() {
        return Ok(Advice::Met { fmax });
    }
    let report = match dirty {
        Some(dirty) => cache.analyze_delta(design, tech, target, dirty)?,
        None => cache.analyze(design, tech, target)?,
    };
    let crit = report
        .paths()
        .first()
        .expect("paths exist when fmax exists");

    if let ggpu_netlist::timing::PathEndpoint::Macro(name) = &crit.start {
        // Check that the macro can still be divided.
        let module_id = design
            .module_by_name(&crit.module)
            .expect("report module exists");
        let can_divide = design
            .module(module_id)
            .find_macro(name)
            .map(|m| m.config.words / 2 >= MIN_WORDS && m.config.words % 2 == 0)
            .unwrap_or(false);
        if can_divide {
            return Ok(Advice::DivideMemory {
                module: crit.module.clone(),
                macro_name: name.clone(),
                fmax,
            });
        }
    }
    // Pure-logic path, or an exhausted memory: pipeline if possible.
    let module_id = design
        .module_by_name(&crit.module)
        .expect("report module exists");
    let depth = design
        .module(module_id)
        .paths
        .iter()
        .find(|p| p.name == crit.path)
        .map(|p| p.depth())
        .unwrap_or(0);
    if depth >= 2 {
        Ok(Advice::InsertPipeline {
            module: crit.module.clone(),
            path: crit.path.clone(),
            fmax,
        })
    } else {
        Ok(Advice::Stuck {
            fmax,
            path: format!("{}::{}", crit.module, crit.path),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    #[test]
    fn baseline_meets_500() {
        let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let a = advise(&d, &Tech::l65(), Mhz::new(500.0)).unwrap();
        assert!(matches!(a, Advice::Met { .. }), "{a}");
    }

    #[test]
    fn first_advice_toward_590_is_memory_division() {
        // The paper: the unoptimized critical path starts at a memory
        // block, so the map's first recommendation is a division.
        let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let a = advise(&d, &Tech::l65(), Mhz::new(590.0)).unwrap();
        match a {
            Advice::DivideMemory {
                module, macro_name, ..
            } => {
                assert_eq!(module, "processing_element");
                assert_eq!(macro_name, "rf_bank");
            }
            other => panic!("expected division, got {other}"),
        }
    }

    #[test]
    fn empty_design_is_trivially_met() {
        use ggpu_netlist::module::Module;
        let mut d = Design::new("empty");
        let id = d.add_module(Module::new("m"));
        d.set_top(id);
        let a = advise(&d, &Tech::l65(), Mhz::new(1000.0)).unwrap();
        assert!(matches!(a, Advice::Met { .. }));
    }

    #[test]
    fn display_is_readable() {
        let a = Advice::DivideMemory {
            module: "pe".into(),
            macro_name: "rf".into(),
            fmax: Mhz::new(501.0),
        };
        assert_eq!(a.to_string(), "divide pe/rf (fmax 501 MHz)");
    }
}
