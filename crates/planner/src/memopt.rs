//! Memory-geometry co-optimization: banking on top of the frequency
//! map.
//!
//! The frequency-map DSE ([`crate::dse`]) optimizes *fmax* alone; the
//! paper's end metric is kernel runtime. The LRAM is where the two
//! couple: splitting the scratchpad into more word-interleaved banks
//! removes simulator-visible bank-conflict beats on local traffic
//! ([`ggpu_simt::LramModel`]), but adds crossbar mux stages to the
//! macro's launching paths, pushing fmax down — so the right bank
//! count depends on both the timing plan *and* the kernels.
//!
//! [`co_optimize_memory`] searches that trade-off: it first runs the
//! regular DSE (greedy or beam, per [`DseConfig`]) to a timing-met
//! plan, then evaluates each candidate banking of the compute unit's
//! LRAM group as a journal transaction on top of it — N009-gated like
//! every DSE step — pricing each candidate as simulated
//! `mat_mul_local` cycles (the only shipped kernel with LRAM traffic)
//! over the achieved clock, with the ECC check-bit cost of the banked
//! geometry reported alongside. The winner's banking (if any beats
//! the unbanked plan) is folded into the returned
//! [`OptimizationPlan::bankings`].

use crate::cache::StaCache;
use crate::dse::{optimize_with_config, Action, DseConfig, DseError, OptimizationPlan, Optimized};
use crate::journal::TransformJournal;
use ggpu_kernels::bench::{self, BenchError};
use ggpu_netlist::Design;
use ggpu_simt::{LramModel, SimtConfig};
use ggpu_sta::{max_frequency, StaError};
use ggpu_tech::sram::{banked_ecc_check_bits, EccScheme};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;

/// The compute-unit macro the co-optimizer banks (one representative
/// member; the transform re-banks the whole structural group).
const LRAM_MACRO: &str = "lram0";

/// Errors of the memory co-optimization.
#[derive(Debug)]
pub enum MemOptError {
    /// The underlying frequency-map DSE failed.
    Dse(DseError),
    /// A candidate's timing analysis failed.
    Sta(StaError),
    /// Simulating the local kernel failed.
    Bench(BenchError),
    /// The optimized design has no LRAM group to bank.
    NoLram,
}

impl fmt::Display for MemOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOptError::Dse(e) => write!(f, "dse: {e}"),
            MemOptError::Sta(e) => write!(f, "timing: {e}"),
            MemOptError::Bench(e) => write!(f, "kernel simulation: {e}"),
            MemOptError::NoLram => f.write_str("design has no LRAM bank group"),
        }
    }
}

impl Error for MemOptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemOptError::Dse(e) => Some(e),
            MemOptError::Sta(e) => Some(e),
            MemOptError::Bench(e) => Some(e),
            MemOptError::NoLram => None,
        }
    }
}

impl From<DseError> for MemOptError {
    fn from(e: DseError) -> Self {
        MemOptError::Dse(e)
    }
}

impl From<StaError> for MemOptError {
    fn from(e: StaError) -> Self {
        MemOptError::Sta(e)
    }
}

impl From<BenchError> for MemOptError {
    fn from(e: BenchError) -> Self {
        MemOptError::Bench(e)
    }
}

/// Knobs of [`co_optimize_memory`]: the launch being priced and the
/// geometries to try.
#[derive(Debug, Clone)]
pub struct MemOptConfig {
    /// CU count of the simulated machine (match the design).
    pub compute_units: u32,
    /// Grid size the local kernel is priced at.
    pub n: u32,
    /// Banks-per-macro factors to evaluate (values `< 2` are skipped;
    /// the unbanked plan is always candidate 0).
    pub bank_factors: Vec<u32>,
    /// ECC scheme whose banked check-bit cost rides along.
    pub ecc: EccScheme,
    /// How the base frequency-map DSE runs (greedy or beam).
    pub dse: DseConfig,
}

impl MemOptConfig {
    /// Greedy DSE, factors {2, 4}, parity cost — the shipping default.
    pub fn new(compute_units: u32, n: u32) -> Self {
        Self {
            compute_units,
            n,
            bank_factors: vec![2, 4],
            ecc: EccScheme::Parity,
            dse: DseConfig::greedy(),
        }
    }
}

/// One evaluated memory-geometry candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryCandidate {
    /// Banks per LRAM member macro (1 = the unbanked plan).
    pub banks_per_macro: u32,
    /// Total interleaved banks the lanes arbitrate over (the group's
    /// member count after the transform — what the simulator models).
    pub group_banks: u32,
    /// Post-transform fmax of the candidate netlist.
    pub fmax: Mhz,
    /// The clock the candidate actually runs at: `min(target, fmax)`.
    pub achieved: Mhz,
    /// `true` if the candidate still meets the target frequency.
    pub meets_timing: bool,
    /// Simulated `mat_mul_local` cycles under the candidate's banked
    /// LRAM model.
    pub cycles: u64,
    /// Of which, extra beats serializing bank conflicts.
    pub conflict_cycles: u64,
    /// Kernel runtime at the achieved clock, microseconds — the
    /// objective.
    pub runtime_us: f64,
    /// ECC check bits the scheme adds across the banked LRAM group
    /// (per CU) — the resilience cost of the geometry.
    pub ecc_check_bits: u64,
}

/// The outcome of [`co_optimize_memory`].
#[derive(Debug, Clone)]
pub struct MemoryCoOptimized {
    /// The timing-met exploration the candidates build on.
    pub base: Optimized,
    /// Every evaluated candidate, unbanked first, then ascending bank
    /// factors.
    pub candidates: Vec<MemoryCandidate>,
    /// Index into `candidates` of the winner (lowest runtime among
    /// timing-met candidates; ties go to fewer banks).
    pub best: usize,
    /// The base plan, plus the winning banking when it beats the
    /// unbanked plan.
    pub plan: OptimizationPlan,
}

impl MemoryCoOptimized {
    /// The winning candidate.
    pub fn winner(&self) -> &MemoryCandidate {
        &self.candidates[self.best]
    }
}

/// Runs `mat_mul_local` at grid size `n` and returns (cycles,
/// conflict cycles).
fn local_kernel_cycles(
    compute_units: u32,
    n: u32,
    lram: LramModel,
) -> Result<(u64, u64), BenchError> {
    let config = SimtConfig {
        compute_units,
        lram,
        ..SimtConfig::default()
    };
    let stats = bench::mat_mul_local().run_gpu_with(n, config)?;
    Ok((stats.cycles, stats.lram_conflict_cycles))
}

/// Prices one candidate design.
fn evaluate(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    compute_units: u32,
    n: u32,
    banks_per_macro: u32,
    ecc: EccScheme,
) -> Result<MemoryCandidate, MemOptError> {
    let cu_id = design
        .module_by_name(ggpu_rtl::CU_MODULE)
        .ok_or(MemOptError::NoLram)?;
    let cu = design.module(cu_id);
    let group = cu.bank_group_of(LRAM_MACRO).map_or_else(
        || {
            cu.macros
                .iter()
                .find(|m| m.name.starts_with("lram"))
                .and_then(|m| m.bank_group)
                .ok_or(MemOptError::NoLram)
        },
        Ok,
    )?;
    let geometry = cu.bank_group_geometry(group).ok_or(MemOptError::NoLram)?;
    let bank_config = cu
        .bank_group_members(group)
        .first()
        .map(|m| m.config)
        .ok_or(MemOptError::NoLram)?;
    let fmax = max_frequency(design, tech)?.unwrap_or(Mhz::new(0.0));
    let meets_timing = fmax.value() >= target.value();
    let achieved = if meets_timing { target } else { fmax };
    let (cycles, conflict_cycles) = local_kernel_cycles(
        compute_units,
        n,
        LramModel::Banked {
            banks: geometry.banks,
        },
    )?;
    let runtime_us = cycles as f64 * achieved.period().value() * 1e-3;
    Ok(MemoryCandidate {
        banks_per_macro,
        group_banks: geometry.banks,
        fmax,
        achieved,
        meets_timing,
        cycles,
        conflict_cycles,
        runtime_us,
        ecc_check_bits: banked_ecc_check_bits(ecc, bank_config, geometry.banks),
    })
}

/// Co-optimizes LRAM banking with the frequency-map plan.
///
/// First meets `target` through the regular DSE under `config.dse`
/// (greedy or beam), then evaluates banking the compute unit's LRAM
/// group by each factor in `config.bank_factors` as an N009-gated
/// journal transaction on the optimized netlist. Candidates are
/// priced as `mat_mul_local` cycles (simulated under the candidate's
/// bank-conflict model, grid size `config.n`) over the achieved
/// clock; the ECC check-bit cost of each geometry under `config.ecc`
/// rides along. A candidate that fails its lint gate or falls outside
/// the SRAM compiler's range is skipped, not fatal.
///
/// # Errors
///
/// Returns [`MemOptError`] if the base DSE fails, the design has no
/// LRAM group, or analysis/simulation of a surviving candidate fails.
pub fn co_optimize_memory(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    config: &MemOptConfig,
) -> Result<MemoryCoOptimized, MemOptError> {
    let MemOptConfig {
        compute_units,
        n,
        ref bank_factors,
        ecc,
        ref dse,
    } = *config;
    let opt = optimize_with_config(base, tech, target, &StaCache::new(), dse)?;
    let mut candidates = vec![evaluate(
        &opt.design,
        tech,
        target,
        compute_units,
        n,
        1,
        ecc,
    )?];
    let mut journal = TransformJournal::new(&opt.design);
    let unbanked = journal.checkpoint("unbanked");
    for &banks in bank_factors.iter() {
        if banks < 2 {
            continue;
        }
        let action = Action::Bank {
            module: ggpu_rtl::CU_MODULE.into(),
            macro_name: LRAM_MACRO.into(),
            banks,
        };
        if journal.apply(&action).is_err() {
            // Out of compiler range or lint-denied: not a candidate.
            continue;
        }
        candidates.push(evaluate(
            journal.design(),
            tech,
            target,
            compute_units,
            n,
            banks,
            ecc,
        )?);
        journal.rollback_to(&unbanked);
    }
    let best = candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            b.meets_timing
                .cmp(&a.meets_timing)
                .then(a.runtime_us.total_cmp(&b.runtime_us))
                .then(a.banks_per_macro.cmp(&b.banks_per_macro))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut plan = opt.plan.clone();
    if candidates[best].banks_per_macro > 1 {
        plan.bankings.insert(
            (ggpu_rtl::CU_MODULE.into(), LRAM_MACRO.into()),
            candidates[best].banks_per_macro,
        );
    }
    Ok(MemoryCoOptimized {
        base: opt,
        candidates,
        best,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    #[test]
    fn banking_wins_the_local_kernel_objective() {
        // The acceptance demo: at 1 CU / 500 MHz the baseline LRAM
        // group has 4 interleaved banks, and `mat_mul_local`'s 8-lane
        // beats hit 2 distinct words per bank (conflict degree 2).
        // Doubling the banks makes the unit-stride traffic
        // conflict-free while the crossbar still closes 500 MHz, so
        // the co-optimizer must pick a banked plan.
        let base = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let out = co_optimize_memory(
            &base,
            &Tech::l65(),
            Mhz::new(500.0),
            &MemOptConfig::new(1, 256),
        )
        .unwrap();
        assert!(out.candidates.len() >= 2, "banked candidates evaluated");
        let unbanked = &out.candidates[0];
        assert_eq!(unbanked.banks_per_macro, 1);
        assert_eq!(unbanked.group_banks, 4);
        assert!(unbanked.conflict_cycles > 0, "4-bank LRAM conflicts");
        let winner = out.winner();
        assert!(winner.banks_per_macro > 1, "banking must win");
        assert!(winner.meets_timing);
        assert_eq!(winner.conflict_cycles, 0, "8+ banks are conflict-free");
        assert!(winner.cycles < unbanked.cycles);
        assert!(winner.runtime_us < unbanked.runtime_us);
        assert_eq!(
            out.plan
                .bankings
                .get(&(ggpu_rtl::CU_MODULE.to_string(), LRAM_MACRO.to_string())),
            Some(&winner.banks_per_macro)
        );
        // ECC cost scales with bank count: same words, more banks,
        // same per-word parity — total check bits are conserved under
        // parity (1 bit/word regardless of geometry).
        assert_eq!(winner.ecc_check_bits, unbanked.ecc_check_bits);
        // The banked plan replays reproducibly through the journal.
        let replayed = crate::dse::apply_plan(&base, &out.plan).unwrap();
        let cu = replayed
            .module(replayed.module_by_name(ggpu_rtl::CU_MODULE).unwrap())
            .clone();
        assert!(cu.find_macro("lram0_b0").is_some(), "banked parts exist");
        assert!(cu.find_macro("lram0").is_none());
    }

    #[test]
    fn empty_bank_factors_keep_the_plan_unbanked() {
        let base = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let config = MemOptConfig {
            bank_factors: vec![],
            ecc: EccScheme::None,
            ..MemOptConfig::new(1, 256)
        };
        let out = co_optimize_memory(&base, &Tech::l65(), Mhz::new(500.0), &config).unwrap();
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.best, 0);
        assert!(out.plan.bankings.is_empty());
        assert_eq!(out.plan, out.base.plan);
        assert_eq!(out.winner().ecc_check_bits, 0, "no scheme, no check bits");
    }
}
