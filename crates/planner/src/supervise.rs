//! Flow supervision: panic isolation, per-stage deadlines, seeded
//! retries and graceful-degradation ladders around the end-to-end
//! pipeline (verify → plan → implement → fault campaign).
//!
//! The push-button promise of the paper's Fig. 2 flow is only as good
//! as its worst failure mode: a panicking worker, a livelocked stage
//! or a flaky engine must not take the whole batch down or —
//! worse — silently change the produced silicon. The [`Supervisor`]
//! runs every [`Specification`] as an isolated unit:
//!
//! * each stage executes under [`std::panic::catch_unwind`] (and, when
//!   a deadline is configured, on its own watchdog thread), so one
//!   poisoned spec cannot abort its siblings;
//! * transient failures retry with a deterministic, seeded, capped
//!   backoff; persistent ones step down a **degradation ladder**
//!   (beam → greedy search, incremental STA → legacy full re-analysis,
//!   analytical placer → legacy shelf packer, SoA backend → scalar
//!   reference engine). Every step is recorded in a structured
//!   [`DegradationReport`] — degraded results are never silent; the
//!   design linter surfaces them as `N010` findings
//!   ([`ggpu_lint::check_supervision`]);
//! * all outcomes surface as one unified [`FlowError`] carrying the
//!   stage, the spec fingerprint, the attempt count and a
//!   retryable/fatal classification.
//!
//! A seeded chaos harness ([`FailurePlan`]) injects panics, delays and
//! I/O errors at stage boundaries to property-test exactly this
//! machinery; see `tests/chaos.rs`.
//!
//! The stage deadline defaults to the `GGPU_STAGE_TIMEOUT_MS`
//! environment variable (unset = no deadline; stages then run inline
//! with zero thread overhead).

use crate::dse::DseConfig;
use crate::flow::{parallel_map, worker_threads, GpuPlanner, ImplementedVersion, PlanError};
use crate::spec::Specification;
use ggpu_fault::{
    run_campaign, CampaignConfig, CampaignError, CampaignReport, MacroMap, Rng, Workload,
};
use ggpu_lint::DegradationStep;
use ggpu_pnr::{panic_message, Placer};
use ggpu_simt::{AccelBackend, SimtConfig};
use std::collections::hash_map::DefaultHasher;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// The stages of the supervised pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowStage {
    /// Shipped-kernel verification plus a backend smoke run.
    Verify,
    /// Design-space exploration and logic synthesis.
    Plan,
    /// Physical synthesis.
    Implement,
    /// Statistical fault-injection campaign (resilient specs only).
    Campaign,
}

impl FlowStage {
    /// Stable stage name (reports, degradation steps, lint sites).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowStage::Verify => "verify",
            FlowStage::Plan => "plan",
            FlowStage::Implement => "implement",
            FlowStage::Campaign => "campaign",
        }
    }

    fn index(self) -> u64 {
        match self {
            FlowStage::Verify => 0,
            FlowStage::Plan => 1,
            FlowStage::Implement => 2,
            FlowStage::Campaign => 3,
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What went wrong inside one stage attempt.
#[derive(Debug)]
pub enum FlowErrorKind {
    /// The planning flow failed (wraps configuration, DSE, synthesis,
    /// PnR and lint errors).
    Plan(PlanError),
    /// The fault campaign failed (wraps workload, setup and
    /// checkpoint/WAL errors).
    Campaign(CampaignError),
    /// Kernel verification or the backend smoke run failed.
    Verify(String),
    /// The stage panicked; carries the rendered panic payload.
    Panic(String),
    /// The stage overran its deadline.
    Timeout {
        /// The budget that was exceeded.
        budget_ms: u64,
    },
    /// A chaos-injected I/O failure (test harness only).
    Injected(String),
}

impl FlowErrorKind {
    /// `true` if a retry of the same stage could plausibly succeed:
    /// panics, deadline overruns and injected faults are transient;
    /// planner and campaign errors are deterministic and fatal.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            FlowErrorKind::Panic(_) | FlowErrorKind::Timeout { .. } | FlowErrorKind::Injected(_)
        )
    }
}

impl fmt::Display for FlowErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowErrorKind::Plan(e) => write!(f, "{e}"),
            FlowErrorKind::Campaign(e) => write!(f, "fault campaign: {e}"),
            FlowErrorKind::Verify(m) => write!(f, "verification: {m}"),
            FlowErrorKind::Panic(m) => write!(f, "panicked: {m}"),
            FlowErrorKind::Timeout { budget_ms } => {
                write!(f, "deadline exceeded ({budget_ms} ms budget)")
            }
            FlowErrorKind::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

/// A unified flow failure: which stage, for which spec, after how many
/// attempts, and why.
#[derive(Debug)]
pub struct FlowError {
    /// The stage that exhausted its ladder.
    pub stage: FlowStage,
    /// `Specification::version_name` of the failing spec.
    pub spec: String,
    /// Stable fingerprint of the spec (keys chaos injection and
    /// backoff seeding).
    pub fingerprint: u64,
    /// Attempts consumed across all rungs of this stage.
    pub attempts: u32,
    /// The final underlying failure.
    pub kind: FlowErrorKind,
}

impl FlowError {
    /// `true` if the terminal failure was of a transient kind (the
    /// ladder ran out of rungs while retrying).
    pub fn retryable(&self) -> bool {
        self.kind.retryable()
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow stage `{}` failed for {} (fingerprint {:016x}) after {} attempt(s): {}",
            self.stage, self.spec, self.fingerprint, self.attempts, self.kind
        )
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            FlowErrorKind::Plan(e) => Some(e),
            FlowErrorKind::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

/// Every fallback the supervisor took for one spec. Attached to the
/// outcome (and renderable into the datasheet via
/// [`crate::datasheet::datasheet_with_supervision`]) so degraded runs
/// are always visible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Ladder steps taken, in order.
    pub steps: Vec<DegradationStep>,
    /// Same-rung retries consumed across all stages.
    pub retries: u32,
}

impl DegradationReport {
    /// `true` if the flow ran entirely on its first-choice engines
    /// with no retries.
    pub fn is_clean(&self) -> bool {
        self.steps.is_empty() && self.retries == 0
    }

    /// Lints the report: one `N010` finding per degradation step
    /// (warn by default; `--deny warn` turns a degraded run into a
    /// failure).
    pub fn lint(&self, name: &str, config: &ggpu_lint::LintConfig) -> ggpu_lint::Report {
        let mut report = ggpu_lint::Report::new(name);
        ggpu_lint::check_supervision(&self.steps, config, &mut report);
        report
    }
}

/// One chaos injection, as decided by a [`FailurePlan`] roll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Panic at stage entry.
    Panic,
    /// Sleep this many milliseconds before the stage body (trips the
    /// deadline when it is configured tighter).
    Delay(u64),
    /// Fail the stage with [`FlowErrorKind::Injected`].
    Io,
}

/// Seeded chaos harness: deterministically injects failures at stage
/// boundaries, keyed on `(seed, spec fingerprint, stage, attempt)` —
/// the same plan always fails the same attempts, so chaos campaigns
/// are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePlan {
    /// Master seed.
    pub seed: u64,
    /// Panic probability per attempt, in permille.
    pub panic_permille: u32,
    /// Delay probability per attempt, in permille.
    pub delay_permille: u32,
    /// I/O-error probability per attempt, in permille.
    pub io_permille: u32,
    /// Upper bound of an injected delay.
    pub max_delay_ms: u64,
}

impl FailurePlan {
    /// No injections (the production configuration).
    pub fn none() -> Self {
        Self {
            seed: 0,
            panic_permille: 0,
            delay_permille: 0,
            io_permille: 0,
            max_delay_ms: 0,
        }
    }

    /// The default chaos mix: ~12 % panics, ~6 % delays, ~12 % I/O
    /// errors per stage attempt.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            panic_permille: 120,
            delay_permille: 60,
            io_permille: 120,
            max_delay_ms: 2,
        }
    }

    /// `true` if this plan can never fire.
    pub fn is_none(&self) -> bool {
        self.panic_permille == 0 && self.delay_permille == 0 && self.io_permille == 0
    }

    /// The (deterministic) injection for one stage attempt, if any.
    pub fn roll(&self, fingerprint: u64, stage: FlowStage, attempt: u32) -> Option<Injection> {
        if self.is_none() {
            return None;
        }
        let mut rng = Rng::for_trial(
            self.seed ^ fingerprint,
            (stage.index() << 32) | u64::from(attempt),
        );
        let draw = (rng.next_u64() % 1000) as u32;
        if draw < self.panic_permille {
            Some(Injection::Panic)
        } else if draw < self.panic_permille + self.delay_permille {
            Some(Injection::Delay(rng.next_u64() % (self.max_delay_ms + 1)))
        } else if draw < self.panic_permille + self.delay_permille + self.io_permille {
            Some(Injection::Io)
        } else {
            None
        }
    }
}

/// Supervisor policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-stage deadline. `None` (the default when
    /// `GGPU_STAGE_TIMEOUT_MS` is unset) runs stages inline with no
    /// watchdog thread.
    pub stage_timeout: Option<Duration>,
    /// Same-rung retries after the first attempt (transient failures
    /// only).
    pub max_retries: u32,
    /// Base of the exponential retry backoff, milliseconds. `0` (the
    /// default) retries immediately — deterministic tests stay fast.
    pub backoff_base_ms: u64,
    /// Backoff cap, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter (and of any chaos plan keyed off
    /// this supervisor).
    pub seed: u64,
    /// First-choice DSE search (`beam_width > 1` enables the
    /// beam → greedy rung).
    pub dse: DseConfig,
    /// First-choice execution backend of the verify smoke run (the
    /// SoA → scalar rung).
    pub backend: AccelBackend,
    /// Trials of the per-spec fault campaign; `0` (the default) skips
    /// the campaign stage. Only specs with a resilience policy run it.
    pub campaign_trials: u32,
    /// Chaos harness (tests only; [`FailurePlan::none`] in
    /// production).
    pub chaos: FailurePlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            stage_timeout: stage_timeout_from_env(),
            max_retries: 2,
            backoff_base_ms: 0,
            backoff_cap_ms: 1_000,
            seed: 0,
            dse: DseConfig::default(),
            backend: AccelBackend::Soa,
            campaign_trials: 0,
            chaos: FailurePlan::none(),
        }
    }
}

impl SupervisorConfig {
    /// The capped exponential backoff before retry `attempt`
    /// (1-based), with deterministic seeded jitter.
    pub fn backoff_ms(&self, fingerprint: u64, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 || attempt == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.backoff_cap_ms);
        let mut rng = Rng::for_trial(self.seed ^ fingerprint, u64::from(attempt));
        // Jitter in [exp/2, exp].
        (exp / 2) + rng.next_u64() % (exp / 2 + 1)
    }
}

/// Reads the `GGPU_STAGE_TIMEOUT_MS` environment knob: a positive
/// integer enables the per-stage deadline, anything else disables it.
pub fn stage_timeout_from_env() -> Option<Duration> {
    std::env::var("GGPU_STAGE_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// A spec that survived the supervised pipeline.
#[derive(Debug, Clone)]
pub struct SupervisedVersion {
    /// The implemented version — bit-identical to the unsupervised
    /// flow's whenever no ladder rung changed an engine with
    /// result-visible behavior.
    pub version: ImplementedVersion,
    /// Fault-campaign report, when the campaign stage ran.
    pub campaign: Option<CampaignReport>,
    /// Every fallback and retry the supervisor took. Empty on a clean
    /// run.
    pub degradations: DegradationReport,
}

/// Stable fingerprint of a specification (version name + ceilings +
/// resilience target). Keys chaos injection, backoff jitter and
/// campaign seeds; independent of pointer identity and build.
pub fn spec_fingerprint(spec: &Specification) -> u64 {
    let mut h = DefaultHasher::new();
    spec.version_name().hash(&mut h);
    spec.max_area_mm2.map(f64::to_bits).hash(&mut h);
    spec.max_power_w.map(f64::to_bits).hash(&mut h);
    format!("{:?}", spec.resilience).hash(&mut h);
    h.finish()
}

/// One rung of a stage's degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    /// Verify smoke on this backend.
    Backend(AccelBackend),
    /// Plan with this beam width and STA caching mode.
    Search { beam_width: usize, cached_sta: bool },
    /// Implement with this placer.
    Place(Placer),
    /// Campaign (single-rung ladder; retry only).
    Campaign,
}

impl Rung {
    fn name(self) -> String {
        match self {
            Rung::Backend(AccelBackend::Scalar) => "scalar backend".into(),
            Rung::Backend(_) => "SoA backend".into(),
            Rung::Search {
                beam_width,
                cached_sta,
            } => {
                let search = if beam_width > 1 { "beam" } else { "greedy" };
                let sta = if cached_sta {
                    "incremental STA"
                } else {
                    "legacy full STA"
                };
                format!("{search} search + {sta}")
            }
            Rung::Place(Placer::Analytical) => "analytical placer".into(),
            Rung::Place(Placer::Legacy) => "legacy shelf placer".into(),
            Rung::Campaign => "fault campaign".into(),
        }
    }
}

/// The supervised end-to-end flow.
#[derive(Debug, Clone)]
pub struct Supervisor {
    planner: GpuPlanner,
    config: SupervisorConfig,
}

impl Supervisor {
    /// A supervisor over `planner` with the default policy
    /// ([`SupervisorConfig::default`], deadline from
    /// `GGPU_STAGE_TIMEOUT_MS`).
    pub fn new(planner: GpuPlanner) -> Self {
        Self {
            planner,
            config: SupervisorConfig::default(),
        }
    }

    /// Overrides the supervision policy.
    pub fn with_config(mut self, config: SupervisorConfig) -> Self {
        self.config = config;
        self
    }

    /// The supervision policy in effect.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Runs every spec through the supervised pipeline, in parallel on
    /// [`worker_threads`] scoped workers, each spec an isolated unit:
    /// a panic, deadline overrun or hard error in one spec never
    /// affects its siblings. Results come back in spec order.
    pub fn run(&self, specs: &[Specification]) -> Vec<Result<SupervisedVersion, FlowError>> {
        parallel_map(specs.len(), worker_threads(specs.len()), |i| {
            self.run_spec(&specs[i])
        })
    }

    /// Runs one spec through verify → plan → implement → campaign.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when a stage exhausts its retry budget on
    /// every rung of its degradation ladder.
    pub fn run_spec(&self, spec: &Specification) -> Result<SupervisedVersion, FlowError> {
        let fp = spec_fingerprint(spec);
        let mut degradations = DegradationReport::default();

        // Stage 1: verify (SoA → scalar ladder).
        let verify_rungs: Vec<Rung> = match self.config.backend {
            AccelBackend::Scalar => vec![Rung::Backend(AccelBackend::Scalar)],
            b => vec![Rung::Backend(b), Rung::Backend(AccelBackend::Scalar)],
        };
        self.ladder(
            spec,
            fp,
            FlowStage::Verify,
            &verify_rungs,
            &mut degradations,
            |rung| {
                let Rung::Backend(backend) = rung else {
                    unreachable!("verify ladder holds backend rungs")
                };
                verify_kernels(backend)
            },
        )?;

        // Stage 2: plan (beam → greedy, incremental STA → legacy full).
        let mut plan_rungs = Vec::new();
        let beam = self.config.dse.beam_width;
        if beam > 1 {
            plan_rungs.push(Rung::Search {
                beam_width: beam,
                cached_sta: true,
            });
        }
        plan_rungs.push(Rung::Search {
            beam_width: 1,
            cached_sta: true,
        });
        plan_rungs.push(Rung::Search {
            beam_width: 1,
            cached_sta: false,
        });
        let planned = self.ladder(spec, fp, FlowStage::Plan, &plan_rungs, &mut degradations, {
            let planner = self.planner.clone();
            let spec = *spec;
            move |rung| {
                let Rung::Search {
                    beam_width,
                    cached_sta,
                } = rung
                else {
                    unreachable!("plan ladder holds search rungs")
                };
                let planner = if cached_sta {
                    planner.clone()
                } else {
                    // Legacy full re-analysis: a fresh passthrough
                    // table, bit-identical results by the cache
                    // contract.
                    planner
                        .clone()
                        .with_sta_cache(std::sync::Arc::new(crate::cache::StaCache::passthrough()))
                };
                planner
                    .plan_with_config(&spec, &DseConfig::with_beam_width(beam_width))
                    .map_err(FlowErrorKind::Plan)
            }
        })?;

        // Stage 3: implement (analytical → legacy shelf placer).
        let first_placer = self.planner.pnr_options().placer;
        let implement_rungs: Vec<Rung> = match first_placer {
            Placer::Legacy => vec![Rung::Place(Placer::Legacy)],
            p => vec![Rung::Place(p), Rung::Place(Placer::Legacy)],
        };
        let version = self.ladder(
            spec,
            fp,
            FlowStage::Implement,
            &implement_rungs,
            &mut degradations,
            {
                let planner = self.planner.clone();
                let planned = planned.clone();
                move |rung| {
                    let Rung::Place(placer) = rung else {
                        unreachable!("implement ladder holds placer rungs")
                    };
                    planner
                        .clone()
                        .with_placer(placer)
                        .implement(&planned)
                        .map_err(FlowErrorKind::Plan)
                }
            },
        )?;

        // Stage 4: campaign (resilient specs only, opt-in).
        let campaign = match (
            self.config.campaign_trials,
            self.planner.resilience_policy(spec),
        ) {
            (0, _) | (_, None) => None,
            (trials, Some(policy)) => Some(self.ladder(
                spec,
                fp,
                FlowStage::Campaign,
                &[Rung::Campaign],
                &mut degradations,
                {
                    let design = planned.design.clone();
                    let seed = self.config.seed ^ fp;
                    move |_| run_fault_campaign(&design, &policy, seed, trials)
                },
            )?),
        };

        Ok(SupervisedVersion {
            version,
            campaign,
            degradations,
        })
    }

    /// Runs one stage down its degradation ladder: retry transient
    /// failures on the same rung (seeded capped backoff), step down a
    /// rung when the budget is exhausted or the failure is
    /// deterministic, and fail with a [`FlowError`] only when the
    /// bottom rung gives out.
    fn ladder<T, F>(
        &self,
        spec: &Specification,
        fingerprint: u64,
        stage: FlowStage,
        rungs: &[Rung],
        degradations: &mut DegradationReport,
        body: F,
    ) -> Result<T, FlowError>
    where
        T: Send + 'static,
        F: Fn(Rung) -> Result<T, FlowErrorKind> + Send + Sync + Clone + 'static,
    {
        let mut attempts = 0u32;
        let mut last: Option<FlowErrorKind> = None;
        for (r, &rung) in rungs.iter().enumerate() {
            let mut rung_attempt = 0u32;
            loop {
                let injection = self.config.chaos.roll(fingerprint, stage, attempts);
                let outcome = self.isolated(stage, rung, injection, body.clone());
                attempts += 1;
                match outcome {
                    Ok(v) => return Ok(v),
                    Err(kind) => {
                        let retry = kind.retryable() && rung_attempt < self.config.max_retries;
                        last = Some(kind);
                        if retry {
                            rung_attempt += 1;
                            degradations.retries += 1;
                            let wait = self.config.backoff_ms(fingerprint, rung_attempt);
                            if wait > 0 {
                                thread::sleep(Duration::from_millis(wait));
                            }
                            continue;
                        }
                    }
                }
                // Same-rung budget exhausted (or deterministic
                // failure): step down, recording the step — a fallback
                // is never silent.
                if let Some(&next) = rungs.get(r + 1) {
                    degradations.steps.push(DegradationStep {
                        stage: stage.as_str().to_string(),
                        from: rung.name(),
                        to: next.name(),
                        reason: last
                            .as_ref()
                            .map(|k| k.to_string())
                            .unwrap_or_else(|| "unknown".into()),
                    });
                }
                break;
            }
        }
        Err(FlowError {
            stage,
            spec: spec.version_name(),
            fingerprint,
            attempts,
            kind: last.unwrap_or_else(|| FlowErrorKind::Verify("empty ladder".into())),
        })
    }

    /// Executes one stage attempt in isolation: chaos injection, panic
    /// capture and — when a deadline is configured — a watchdog thread
    /// with `recv_timeout` (the worker is detached on overrun; it
    /// finishes into the void).
    fn isolated<T, F>(
        &self,
        stage: FlowStage,
        rung: Rung,
        injection: Option<Injection>,
        body: F,
    ) -> Result<T, FlowErrorKind>
    where
        T: Send + 'static,
        F: FnOnce(Rung) -> Result<T, FlowErrorKind> + Send + 'static,
    {
        let attempt = move || -> Result<T, FlowErrorKind> {
            match injection {
                Some(Injection::Panic) => panic!("chaos: injected panic at stage `{stage}`"),
                Some(Injection::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
                Some(Injection::Io) => {
                    return Err(FlowErrorKind::Injected(format!(
                        "chaos: injected I/O failure at stage `{stage}`"
                    )))
                }
                None => {}
            }
            body(rung)
        };
        match self.config.stage_timeout {
            None => catch_unwind(AssertUnwindSafe(attempt))
                .unwrap_or_else(|p| Err(FlowErrorKind::Panic(panic_message(&*p)))),
            Some(budget) => {
                let (tx, rx) = mpsc::channel();
                let spawned = thread::Builder::new()
                    .name(format!("ggpu-flow-{stage}"))
                    .spawn(move || {
                        let out = catch_unwind(AssertUnwindSafe(attempt))
                            .unwrap_or_else(|p| Err(FlowErrorKind::Panic(panic_message(&*p))));
                        let _ = tx.send(out);
                    });
                match spawned {
                    Err(e) => Err(FlowErrorKind::Verify(format!("cannot spawn stage: {e}"))),
                    Ok(_) => rx
                        .recv_timeout(budget)
                        .unwrap_or(Err(FlowErrorKind::Timeout {
                            budget_ms: budget.as_millis() as u64,
                        })),
                }
            }
        }
    }
}

/// The verify stage body: lint every shipped kernel through the full
/// verifier, then smoke-run the copy kernel on `backend` and check the
/// output against the architectural golden.
///
/// Public so an unsupervised baseline (e.g. `flow_bench`) can run the
/// exact same stage work without the supervision machinery around it.
pub fn verify_kernels(backend: AccelBackend) -> Result<(), FlowErrorKind> {
    for report in ggpu_lint::verify_shipped(&ggpu_lint::LintConfig::new()) {
        if report.denial_count() > 0 {
            return Err(FlowErrorKind::Verify(format!(
                "shipped kernel denied: {report}"
            )));
        }
    }
    let copy = ggpu_kernels::bench::all()[1];
    let workload = Workload::from_bench(&copy, 64)
        .map_err(|e| FlowErrorKind::Verify(format!("smoke workload: {e}")))?;
    let sim = SimtConfig::default().with_backend(backend);
    let mut gpu = workload
        .fresh_gpu(sim)
        .map_err(|e| FlowErrorKind::Verify(format!("smoke gpu: {e}")))?;
    gpu.launch(workload.kernel(), workload.launch())
        .map_err(|e| FlowErrorKind::Verify(format!("smoke launch: {e}")))?;
    let out = workload
        .read_output(&gpu)
        .map_err(|e| FlowErrorKind::Verify(format!("smoke readback: {e}")))?;
    if out != workload.golden() {
        return Err(FlowErrorKind::Verify(format!(
            "smoke output diverges from golden on `{}` backend",
            match backend {
                AccelBackend::Scalar => "scalar",
                _ => "soa",
            }
        )));
    }
    Ok(())
}

/// The campaign stage body: a seeded single-fault campaign over the
/// optimized netlist's macro map.
fn run_fault_campaign(
    design: &ggpu_netlist::Design,
    policy: &ggpu_netlist::EccPolicy,
    seed: u64,
    trials: u32,
) -> Result<CampaignReport, FlowErrorKind> {
    let map = MacroMap::from_design(design, policy)
        .map_err(|e| FlowErrorKind::Verify(format!("macro map: {e}")))?;
    let copy = ggpu_kernels::bench::all()[1];
    let workload = Workload::from_bench(&copy, 256)
        .map_err(|e| FlowErrorKind::Campaign(CampaignError::Workload(e)))?;
    let cfg = CampaignConfig::new(seed, trials);
    run_campaign(&workload, &map, &cfg).map_err(FlowErrorKind::Campaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_tech::units::Mhz;
    use ggpu_tech::Tech;

    fn supervisor() -> Supervisor {
        Supervisor::new(GpuPlanner::new(Tech::l65()))
    }

    #[test]
    fn clean_run_matches_the_plain_flow_bit_for_bit() {
        let planner = GpuPlanner::new(Tech::l65());
        let spec = Specification::new(1, Mhz::new(590.0));
        let plain = planner.implement(&planner.plan(&spec).unwrap()).unwrap();
        let supervised = supervisor().run_spec(&spec).unwrap();
        assert!(supervised.degradations.is_clean());
        assert!(supervised.campaign.is_none());
        assert_eq!(supervised.version, plain);
    }

    #[test]
    fn injected_io_failures_exhaust_the_ladder() {
        // An I/O error on every attempt: both verify rungs burn their
        // full retry budget and the stage surfaces a retryable
        // FlowError with the exact attempt accounting.
        let cfg = SupervisorConfig {
            stage_timeout: None,
            chaos: FailurePlan {
                seed: 7,
                panic_permille: 0,
                delay_permille: 0,
                io_permille: 1000,
                max_delay_ms: 0,
            },
            ..SupervisorConfig::default()
        };
        let sup = supervisor().with_config(cfg);
        let err = sup
            .run_spec(&Specification::new(1, Mhz::new(500.0)))
            .unwrap_err();
        assert_eq!(err.stage, FlowStage::Verify);
        assert!(err.retryable());
        // 2 rungs x (1 attempt + 2 retries).
        assert_eq!(err.attempts, 6);
        assert!(err.to_string().contains("injected I/O failure"));
    }

    #[test]
    fn chaos_rolls_are_deterministic() {
        let plan = FailurePlan::seeded(42);
        for stage in [
            FlowStage::Verify,
            FlowStage::Plan,
            FlowStage::Implement,
            FlowStage::Campaign,
        ] {
            for attempt in 0..8 {
                assert_eq!(
                    plan.roll(0xABCD, stage, attempt),
                    plan.roll(0xABCD, stage, attempt)
                );
            }
        }
        // Different fingerprints decorrelate.
        let a: Vec<_> = (0..32).map(|i| plan.roll(1, FlowStage::Plan, i)).collect();
        let b: Vec<_> = (0..32).map(|i| plan.roll(2, FlowStage::Plan, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn backoff_is_capped_and_seeded() {
        let mut cfg = SupervisorConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 40,
            ..SupervisorConfig::default()
        };
        for attempt in 1..10 {
            let ms = cfg.backoff_ms(0x1234, attempt);
            assert!(ms <= 40, "attempt {attempt} backed off {ms} ms");
            assert_eq!(ms, cfg.backoff_ms(0x1234, attempt), "deterministic");
        }
        assert_eq!(cfg.backoff_ms(0x1234, 0), 0);
        cfg.backoff_base_ms = 0;
        assert_eq!(cfg.backoff_ms(0x1234, 3), 0, "zero base disables backoff");
    }

    #[test]
    fn timeout_surfaces_as_a_retryable_flow_error() {
        // A 1 ns budget expires before any real stage work can land on
        // the channel, deterministically tripping the watchdog.
        let cfg = SupervisorConfig {
            stage_timeout: Some(Duration::from_nanos(1)),
            max_retries: 0,
            chaos: FailurePlan::none(),
            ..SupervisorConfig::default()
        };
        let sup = supervisor().with_config(cfg);
        let err = sup
            .run_spec(&Specification::new(1, Mhz::new(500.0)))
            .unwrap_err();
        assert_eq!(err.stage, FlowStage::Verify);
        assert!(matches!(err.kind, FlowErrorKind::Timeout { budget_ms: 0 }));
        assert!(err.retryable());
        assert_eq!(err.attempts, 2, "one attempt per rung, no retries");
    }

    #[test]
    fn degradation_report_lints_as_n010() {
        let mut report = DegradationReport::default();
        report.steps.push(DegradationStep {
            stage: "implement".into(),
            from: "analytical placer".into(),
            to: "legacy shelf placer".into(),
            reason: "panicked: boom".into(),
        });
        let lint = report.lint("t", &ggpu_lint::LintConfig::new());
        assert!(lint.has(ggpu_lint::Code::N010));
        assert!(!report.is_clean());
        assert!(DegradationReport::default().is_clean());
    }

    #[test]
    fn env_knob_parses_positive_integers_only() {
        // Not touching the process environment (tests run threaded);
        // exercise the parser shape through the public default
        // instead.
        let d = SupervisorConfig::default();
        assert_eq!(d.stage_timeout, stage_timeout_from_env());
    }
}
