//! The map as an artifact: the paper describes GPUPlanner's map as a
//! *"dynamic spreadsheet, where the user inputs the delay of the
//! memory blocks required for the non-optimized version"* and reads
//! back which memory to divide for a target frequency. This module
//! produces that spreadsheet from a design: one row per memory
//! structure with its access time, the slack of its worst launching
//! path at the target, and the division factor that would close it.

use crate::dse::apply_plan;
use crate::map::advise;
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::{Design, EccPolicy};
use ggpu_sta::{analyze, StaError};
use ggpu_tech::sram::{EccScheme, SramConfig};
use ggpu_tech::units::{Mhz, Ns};
use ggpu_tech::Tech;
use std::fmt::Write as _;

/// One spreadsheet row: a memory structure and what the map says
/// about it at the target frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRow {
    /// Module owning the memory.
    pub module: String,
    /// Macro instance name (one representative bank).
    pub macro_name: String,
    /// Its geometry.
    pub config: SramConfig,
    /// Compiled access time.
    pub access_time: Ns,
    /// Worst slack of a path launching from it at the target clock.
    pub slack: Ns,
    /// Smallest power-of-two division factor that brings the macro's
    /// paths to non-negative slack at the target (1 = no division
    /// needed, `None` = no factor up to 16 suffices).
    pub division_to_close: Option<u32>,
    /// The ECC scheme protecting this memory's role under the map's
    /// policy (`None` when the map was built without a resilience
    /// target — rendered as `-` in the CSV).
    pub ecc: Option<EccScheme>,
}

/// Builds the frequency map for `design` at `target`.
///
/// Only memories that appear as launch points of declared timing
/// paths are listed (others cannot limit the clock).
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn frequency_map(design: &Design, tech: &Tech, target: Mhz) -> Result<Vec<MapRow>, StaError> {
    frequency_map_with_policy(design, tech, target, None)
}

/// [`frequency_map`] with a resilience column: each row also reports
/// the ECC scheme its memory's role resolves to under `policy`.
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn frequency_map_with_policy(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    policy: Option<&EccPolicy>,
) -> Result<Vec<MapRow>, StaError> {
    let report = analyze(design, tech, target)?;
    let mut rows = Vec::new();
    for timing in report.paths() {
        let PathEndpoint::Macro(macro_name) = &timing.start else {
            continue;
        };
        // One row per macro: keep the worst path only.
        if rows
            .iter()
            .any(|r: &MapRow| r.module == timing.module && &r.macro_name == macro_name)
        {
            continue;
        }
        let module_id = design
            .module_by_name(&timing.module)
            .expect("report names an existing module");
        let mac = design
            .module(module_id)
            .find_macro(macro_name)
            .expect("report names an existing macro");
        let config = mac.config;
        let ecc = policy.map(|p| p.scheme_for(mac.role));
        let access_time = tech
            .memory_compiler
            .compile(config)
            .map_err(StaError::from)?
            .access_time;

        let division_to_close = if timing.slack.value() >= 0.0 {
            Some(1)
        } else {
            // Try factors 2, 4, 8, 16 on a scratch copy.
            let mut found = None;
            for factor in [2u32, 4, 8, 16] {
                let mut plan = crate::dse::OptimizationPlan::default();
                plan.divisions
                    .insert((timing.module.clone(), macro_name.clone()), factor);
                let Ok(divided) = apply_plan(design, &plan) else {
                    break; // compiler range exceeded
                };
                let divided_report = analyze(&divided, tech, target)?;
                let still_failing = divided_report.paths().iter().any(|p| {
                    p.module == timing.module
                        && p.is_violating()
                        && matches!(&p.start, PathEndpoint::Macro(n)
                                    if n.starts_with(macro_name.as_str()))
                });
                if !still_failing {
                    found = Some(factor);
                    break;
                }
            }
            found
        };

        rows.push(MapRow {
            module: timing.module.clone(),
            macro_name: macro_name.clone(),
            config,
            access_time,
            slack: timing.slack,
            division_to_close,
            ecc,
        });
    }
    Ok(rows)
}

/// Renders the map as CSV, slowest memory first — the importable form
/// of the paper's spreadsheet.
pub fn map_to_csv(rows: &[MapRow]) -> String {
    let mut sorted: Vec<&MapRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        a.slack
            .value()
            .partial_cmp(&b.slack.value())
            .expect("finite slack")
    });
    let mut out = String::from(
        "module,macro,words,bits,ports,access_ns,slack_ns,divide_by,ecc,ecc_overhead_pct\n",
    );
    for r in sorted {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.3},{:.3},{},{},{}",
            r.module,
            r.macro_name,
            r.config.words,
            r.config.bits,
            r.config.ports,
            r.access_time.value(),
            r.slack.value(),
            r.division_to_close
                .map(|f| f.to_string())
                .unwrap_or_else(|| "unreachable".into()),
            r.ecc.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            r.ecc
                .map(|s| {
                    // Check bits stored next to every word, as a
                    // fraction of the data bits — per bank, so the
                    // figure is invariant under banking/division.
                    let check = s.check_bits(r.config.bits);
                    format!("{:.2}", 100.0 * f64::from(check) / f64::from(r.config.bits))
                })
                .unwrap_or_else(|| "-".into()),
        );
    }
    out
}

/// Convenience: the map plus the overall next-step advice, rendered
/// for a designer (the iterative workflow of the paper's Fig. 2).
///
/// # Errors
///
/// Returns [`StaError`] if timing analysis fails.
pub fn render_map(design: &Design, tech: &Tech, target: Mhz) -> Result<String, StaError> {
    let rows = frequency_map(design, tech, target)?;
    let advice = advise(design, tech, target)?;
    Ok(format!(
        "# frequency map @ {target:.0}\n# next step: {advice}\n{}",
        map_to_csv(&rows)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    fn base() -> Design {
        generate(&GgpuConfig::with_cus(1).unwrap()).unwrap()
    }

    #[test]
    fn map_lists_every_memory_launched_path_once() {
        let rows = frequency_map(&base(), &Tech::l65(), Mhz::new(590.0)).unwrap();
        // rf_bank, cram0, lram0, wf_state0, div_stack0, cache_data0,
        // cache_tag, rtm0, axi_fifo0.
        assert_eq!(rows.len(), 9, "{rows:#?}");
        let mut keys: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r.module.clone(), r.macro_name.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 9, "one row per macro");
    }

    #[test]
    fn failing_memories_get_a_division_factor() {
        let rows = frequency_map(&base(), &Tech::l65(), Mhz::new(590.0)).unwrap();
        let rf = rows
            .iter()
            .find(|r| r.macro_name == "rf_bank")
            .expect("register file row");
        assert!(rf.slack.value() < 0.0, "rf fails at 590 on the baseline");
        assert_eq!(rf.division_to_close, Some(2), "one halving closes 590");
        let small = rows
            .iter()
            .find(|r| r.macro_name == "div_stack0")
            .expect("divergence stack row");
        assert_eq!(small.division_to_close, Some(1), "already meets timing");
    }

    #[test]
    fn csv_is_sorted_worst_first_and_parseable() {
        let rows = frequency_map(&base(), &Tech::l65(), Mhz::new(667.0)).unwrap();
        let csv = map_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "module,macro,words,bits,ports,access_ns,slack_ns,divide_by,ecc,ecc_overhead_pct"
        );
        assert_eq!(lines.len(), rows.len() + 1);
        // Worst slack first.
        let slack = |line: &str| -> f64 { line.split(',').nth(6).unwrap().parse().unwrap() };
        for pair in lines[1..].windows(2) {
            assert!(slack(pair[0]) <= slack(pair[1]));
        }
    }

    #[test]
    fn render_map_mentions_the_next_step() {
        let text = render_map(&base(), &Tech::l65(), Mhz::new(590.0)).unwrap();
        assert!(text.contains("# next step: divide"));
        assert!(text.contains("rf_bank"));
    }

    #[test]
    fn policy_fills_the_ecc_column() {
        let policy = EccPolicy::uniform(EccScheme::Parity).with_role(
            ggpu_netlist::module::MemoryRole::RegisterFile,
            EccScheme::SecDed,
        );
        let rows = frequency_map_with_policy(&base(), &Tech::l65(), Mhz::new(590.0), Some(&policy))
            .unwrap();
        let rf = rows.iter().find(|r| r.macro_name == "rf_bank").unwrap();
        assert_eq!(rf.ecc, Some(EccScheme::SecDed));
        let fifo = rows.iter().find(|r| r.macro_name == "axi_fifo0").unwrap();
        assert_eq!(fifo.ecc, Some(EccScheme::Parity));
        let csv = map_to_csv(&rows);
        assert!(
            csv.contains(",secded,") && csv.contains(",parity,"),
            "{csv}"
        );
        // Overhead column: SEC-DED on the 48-bit rf_bank words is
        // 7/48 = 14.58 %; parity on a 36-bit fifo word is 1/36 = 2.78 %.
        let row_for = |name: &str| -> String {
            csv.lines()
                .find(|l| l.contains(&format!(",{name},")))
                .unwrap()
                .to_string()
        };
        assert!(row_for("rf_bank").ends_with(",secded,14.58"), "{csv}");
        assert!(row_for("axi_fifo0").ends_with(",parity,2.78"), "{csv}");
        // Without a policy both ECC columns render `-`.
        let plain = frequency_map(&base(), &Tech::l65(), Mhz::new(590.0)).unwrap();
        assert!(plain.iter().all(|r| r.ecc.is_none()));
        assert!(map_to_csv(&plain)
            .lines()
            .skip(1)
            .all(|l| l.ends_with(",-,-")));
    }

    #[test]
    fn met_target_needs_no_divisions() {
        let rows = frequency_map(&base(), &Tech::l65(), Mhz::new(400.0)).unwrap();
        assert!(rows.iter().all(|r| r.division_to_close == Some(1)));
    }
}
