//! Cycle-side objective for the DSE: per-kernel wall-clock runtime.
//!
//! The frequency map optimizes *fmax*, but the paper's end metric is
//! kernel runtime — simulated cycles divided by the achieved clock.
//! This module supplies the cycle half from the SIMT simulator: each
//! shipped kernel is run once at the candidate's CU geometry (on the
//! default [`Accelerator`](ggpu_simt::Accelerator) backend, i.e. the
//! SoA fast path) and the cycle counts are combined with a frequency
//! into a runtime table a planner objective can rank candidates by.
//!
//! Cycle counts are architectural (backend-independent by the
//! equivalence suite's bit-identity guarantee) and depend only on the
//! geometry, so the expensive simulation half can be computed once per
//! CU count and re-priced for every frequency the DSE visits.

use ggpu_kernels::bench::{self, Bench, BenchError};
use ggpu_lint::{analyze, AnalysisCtx, LintConfig, MemAccessSummary};
use ggpu_simt::SimtConfig;
use ggpu_tech::units::Mhz;

/// Simulated cycle count of one shipped kernel at a fixed geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCycles {
    /// Kernel name (Table III row label).
    pub kernel: &'static str,
    /// Grid size the kernel was simulated at.
    pub n: u32,
    /// Simulated cycles to completion.
    pub cycles: u64,
}

/// Per-kernel runtime at a concrete clock frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRuntime {
    /// Kernel name (Table III row label).
    pub kernel: &'static str,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Wall-clock runtime at the priced frequency, in microseconds.
    pub runtime_us: f64,
}

/// Simulates every shipped kernel (the paper's Table III seven) at
/// grid size `n` on a `compute_units`-CU machine and returns the
/// cycle counts.
///
/// `n` must be a multiple of the wavefront size times one workgroup's
/// wavefront count for every kernel to launch; the smoke sizes used by
/// the planner tests satisfy this.
///
/// # Errors
///
/// Returns the first [`BenchError`] a kernel run produces.
pub fn kernel_cycles(compute_units: u32, n: u32) -> Result<Vec<KernelCycles>, BenchError> {
    let config = SimtConfig {
        compute_units,
        ..SimtConfig::default()
    };
    bench::all()
        .iter()
        .map(|b: &Bench| {
            let stats = b.run_gpu_with(n, config)?;
            Ok(KernelCycles {
                kernel: b.name,
                n,
                cycles: stats.cycles,
            })
        })
        .collect()
}

/// Static memory-access profile of one shipped kernel, exported from
/// the lint crate's abstract interpreter. Unlike [`kernel_cycles`]
/// this costs no simulation at all, so a planner objective can use
/// the coalescing classes, cache-line bounds and LRAM bank-conflict
/// degrees to pre-rank memory-geometry candidates (cache line size,
/// bank count) before spending simulator time on the survivors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMemProfile {
    /// Kernel name (Table III row label).
    pub kernel: &'static str,
    /// One summary per reachable memory instruction, program order.
    pub summaries: Vec<MemAccessSummary>,
    /// Branch sites proven lane-uniform (no wavefront split).
    pub uniform_branches: Vec<usize>,
    /// Worst coalescing-class rank over all accesses (0 broadcast …
    /// 3 scattered).
    pub worst_class_rank: u8,
    /// Worst cache-line bound of any single global access.
    pub max_lines_per_issue: u32,
    /// Worst LRAM bank-conflict degree of any single local access.
    pub max_bank_conflict_degree: u32,
}

/// Profiles every shipped kernel (the Table III seven plus the
/// LRAM-tiled `mat_mul_local` extension) under the launch-agnostic
/// context — the same proven-sound bounds the simulator trace oracle
/// gates in `ggpu-simt`'s property suite.
///
/// # Errors
///
/// Returns the first [`BenchError`] if a shipped kernel fails to
/// assemble (which would also fail every simulation path).
pub fn kernel_mem_profiles() -> Result<Vec<KernelMemProfile>, BenchError> {
    let mut benches: Vec<Bench> = bench::all().to_vec();
    benches.push(bench::mat_mul_local());
    benches
        .iter()
        .map(|b| {
            let (program, _) = ggpu_lint::verify_asm(b.name, b.gpu_asm(), &LintConfig::new())
                .map_err(BenchError::GpuAsm)?;
            let analysis = analyze(&program, &AnalysisCtx::default());
            let worst_class_rank = analysis
                .summaries
                .iter()
                .map(|s| s.class.rank())
                .max()
                .unwrap_or(0);
            let max_lines_per_issue = analysis
                .summaries
                .iter()
                .map(|s| s.max_lines_per_issue)
                .max()
                .unwrap_or(0);
            let max_bank_conflict_degree = analysis
                .summaries
                .iter()
                .map(|s| s.bank_conflict_degree)
                .max()
                .unwrap_or(0);
            Ok(KernelMemProfile {
                kernel: b.name,
                summaries: analysis.summaries,
                uniform_branches: analysis.uniform_branches,
                worst_class_rank,
                max_lines_per_issue,
                max_bank_conflict_degree,
            })
        })
        .collect()
}

/// Derives the analytical placer's net weights from the shipped
/// kernels' proven memory-traffic profiles ([`kernel_mem_profiles`]).
///
/// The CU↔GMC interface weight grows with the kernels' global-memory
/// pressure (mean worst cache-line bound per issue: more lines in
/// flight means the FIFOs and cache arrays matter more), and the
/// control weight grows with divergence pressure (mean worst
/// coalescing-class rank: scattered kernels re-issue more, so the
/// CRAM/scheduler path sees more traffic). Local star nets are the
/// unit reference. Pure static analysis — no simulation — and
/// deterministic, so the derived weights are stable placer inputs.
///
/// # Errors
///
/// Returns the first [`BenchError`] if a shipped kernel fails to
/// assemble.
pub fn dataflow_net_weights() -> Result<ggpu_pnr::NetWeights, BenchError> {
    let profiles = kernel_mem_profiles()?;
    let n = profiles.len().max(1) as f64;
    let mean_lines = profiles
        .iter()
        .map(|p| f64::from(p.max_lines_per_issue))
        .sum::<f64>()
        / n;
    let mean_rank = profiles
        .iter()
        .map(|p| f64::from(p.worst_class_rank))
        .sum::<f64>()
        / n;
    Ok(ggpu_pnr::NetWeights {
        io: (1.0 + mean_lines / 8.0).clamp(1.0, 4.0),
        control: (1.0 + 0.15 * mean_rank).clamp(1.0, 2.0),
        local: 1.0,
    })
}

/// Prices a cycle table at `frequency`: runtime = cycles / f.
///
/// # Panics
///
/// Panics if `frequency` is zero or negative (as [`Mhz::period`]).
pub fn price_at(cycles: &[KernelCycles], frequency: Mhz) -> Vec<KernelRuntime> {
    let period_us = frequency.period().value() * 1e-3;
    cycles
        .iter()
        .map(|k| KernelRuntime {
            kernel: k.kernel,
            cycles: k.cycles,
            runtime_us: k.cycles as f64 * period_us,
        })
        .collect()
}

/// Total runtime of a priced table in microseconds — the scalar the
/// DSE can rank candidate frequencies by.
pub fn total_runtime_us(rows: &[KernelRuntime]) -> f64 {
    rows.iter().map(|r| r.runtime_us).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_price_into_runtime() {
        let cycles = kernel_cycles(1, 256).expect("smoke grids run");
        assert_eq!(cycles.len(), 7);
        assert!(cycles.iter().all(|k| k.cycles > 0));

        let slow = price_at(&cycles, Mhz::new(295.0));
        let fast = price_at(&cycles, Mhz::new(590.0));
        // Doubling the clock halves every runtime.
        for (s, f) in slow.iter().zip(&fast) {
            assert_eq!(s.cycles, f.cycles);
            assert!((s.runtime_us / f.runtime_us - 2.0).abs() < 1e-9);
        }
        assert!(total_runtime_us(&fast) > 0.0);
        assert!((total_runtime_us(&slow) - 2.0 * total_runtime_us(&fast)).abs() < 1e-6);
    }

    #[test]
    fn mem_profiles_cover_every_shipped_kernel() {
        let profiles = kernel_mem_profiles().expect("shipped kernels assemble");
        assert_eq!(profiles.len(), 8);
        for p in &profiles {
            assert!(
                !p.summaries.is_empty(),
                "{}: no memory accesses profiled",
                p.kernel
            );
            assert!(p.worst_class_rank <= 3);
            for s in &p.summaries {
                assert!(s.addr_lo <= s.addr_hi);
            }
        }
        // `copy` is the canonical coalesced kernel: every global access
        // must be proven unit-stride, and its line bound must beat the
        // scattered worst case of one line per lane.
        let copy = profiles
            .iter()
            .find(|p| p.kernel == "copy")
            .expect("copy profiled");
        assert_eq!(copy.worst_class_rank, 1, "copy must be unit-stride");
        assert!(copy.max_lines_per_issue < 64);
        // The LRAM-tiled kernel is the only one with local traffic, so
        // only it can report a bank-conflict degree.
        let tiled = profiles
            .iter()
            .find(|p| p.kernel == "mat_mul_local")
            .expect("mat_mul_local profiled");
        assert!(tiled.max_bank_conflict_degree >= 1);
    }

    #[test]
    fn net_weights_follow_kernel_traffic() {
        let w = dataflow_net_weights().expect("shipped kernels assemble");
        // The shipped mix includes scattered kernels, so the interface
        // nets must outweigh local star nets, and divergence pressure
        // must lift the control weight off the floor.
        assert!(w.io > w.local, "io {} must exceed local {}", w.io, w.local);
        assert!(w.control > 1.0 && w.control <= 2.0);
        assert!(w.io <= 4.0);
        assert_eq!(w.local, 1.0);
        // Deterministic: static analysis only.
        assert_eq!(dataflow_net_weights().unwrap(), w);
    }

    #[test]
    fn more_cus_do_not_slow_kernels() {
        // The cycle side of the objective must reflect the geometry:
        // an 8-CU machine retires the same grid in no more cycles
        // than a 1-CU machine on every kernel.
        let one = kernel_cycles(1, 512).expect("1 CU");
        let eight = kernel_cycles(8, 512).expect("8 CUs");
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.kernel, b.kernel);
            assert!(
                b.cycles <= a.cycles,
                "{}: 8 CUs took {} cycles vs {} on 1",
                a.kernel,
                b.cycles,
                a.cycles
            );
        }
    }
}
