//! Beam search over the transform journal.
//!
//! The greedy loop follows the frequency map's single advice; a beam
//! of width *k* keeps the `k` most promising candidate plans alive and
//! expands each with the remedies for its worst paths
//! ([`crate::map::advise_candidates`]). This is exactly the search the
//! clone-per-candidate flow could not afford: evaluating a candidate
//! here is a journal rebase (revert + re-apply of the differing plan
//! suffix over one copy-on-write design) plus a memoized STA query —
//! sibling candidates share their common prefix through the journal
//! and their unchanged modules through the incremental engine.
//!
//! **Never worse than greedy**: the chain built by always taking the
//! first candidate (the map's own advice) is marked *protected* and is
//! exempt from beam pruning, so whatever greedy would have found is
//! still in the beam when the search terminates. The search returns at
//! the earliest iteration in which any candidate meets the target —
//! i.e. with at most as many transform steps as greedy — picking the
//! met candidate with the highest fmax.

use crate::cache::StaCache;
use crate::dse::{original_macro_name, DseError, OptimizationPlan, Optimized};
use crate::dse::{MAX_ITERS, MIN_PROGRESS_MHZ};
use crate::journal::TransformJournal;
use crate::map::{advise_candidates, Advice};
use ggpu_netlist::Design;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;

/// One live candidate in the beam.
#[derive(Debug, Clone)]
struct BeamState {
    plan: OptimizationPlan,
    trace: Vec<String>,
    /// Best fmax seen along this chain (greedy's progress guard).
    best: Mhz,
    /// fmax of the state's design (filled by the ranking pass).
    fmax: Mhz,
    /// `true` on the chain greedy itself would have followed.
    protected: bool,
}

/// Applies one advice to a plan, mirroring the greedy loop's plan
/// bookkeeping (division factors double; pipelines append).
fn extend_plan(plan: &OptimizationPlan, advice: &Advice) -> Option<OptimizationPlan> {
    let mut next = plan.clone();
    match advice {
        Advice::DivideMemory {
            module, macro_name, ..
        } => {
            let key = (module.clone(), original_macro_name(macro_name).to_string());
            *next.divisions.entry(key).or_insert(1) *= 2;
        }
        Advice::InsertPipeline { module, path, .. } => {
            next.pipelines.push((module.clone(), path.clone()));
        }
        Advice::Met { .. } | Advice::Stuck { .. } => return None,
    }
    Some(next)
}

/// Beam search toward `target` with `width` candidates per iteration.
///
/// See the [module docs](self); called through
/// [`crate::optimize_with_config`] when `beam_width > 1`.
pub(crate) fn optimize_beam(
    base: &Design,
    tech: &Tech,
    target: Mhz,
    cache: &StaCache,
    width: usize,
) -> Result<Optimized, DseError> {
    let mut journal = TransformJournal::new(base);
    let mut states = vec![BeamState {
        plan: OptimizationPlan::default(),
        trace: Vec::new(),
        best: Mhz::new(0.0),
        fmax: Mhz::new(0.0),
        protected: true,
    }];
    let mut global_best = Mhz::new(0.0);
    // The first analysis sees a cold cache, so no dirty-set audit
    // applies; afterwards every rebase reports its touched modules.
    let mut warmed = false;

    for _ in 0..MAX_ITERS {
        let mut met: Vec<BeamState> = Vec::new();
        let mut children: Vec<BeamState> = Vec::new();

        for state in &states {
            let touched = journal.rebase(&state.plan)?;
            let dirty = warmed.then_some(touched.as_slice());
            let candidates =
                advise_candidates(journal.design(), tech, target, cache, dirty, width + 1)?;
            warmed = true;

            match &candidates[0] {
                Advice::Met { fmax } => {
                    let mut done = state.clone();
                    done.trace.push(candidates[0].to_string());
                    done.fmax = *fmax;
                    global_best = global_best.max(*fmax);
                    met.push(done);
                    continue;
                }
                Advice::Stuck { fmax, .. } => {
                    global_best = global_best.max(*fmax);
                    continue;
                }
                Advice::DivideMemory { fmax, .. } | Advice::InsertPipeline { fmax, .. } => {
                    global_best = global_best.max(*fmax);
                    // Greedy's progress guard, per chain: a step that
                    // did not improve fmax kills the chain.
                    if fmax.value() <= state.best.value() + MIN_PROGRESS_MHZ {
                        continue;
                    }
                    for (ci, cand) in candidates.iter().enumerate() {
                        let Some(plan) = extend_plan(&state.plan, cand) else {
                            continue;
                        };
                        let mut trace = state.trace.clone();
                        trace.push(cand.to_string());
                        children.push(BeamState {
                            plan,
                            trace,
                            best: *fmax,
                            fmax: Mhz::new(0.0),
                            protected: state.protected && ci == 0,
                        });
                    }
                }
            }
        }

        if !met.is_empty() {
            // Highest fmax wins; the protected (greedy) chain wins
            // ties so width > 1 degrades gracefully toward greedy.
            let mut chosen = 0;
            for (i, m) in met.iter().enumerate().skip(1) {
                let better = m.fmax.value().total_cmp(&met[chosen].fmax.value());
                if better == std::cmp::Ordering::Greater
                    || (better == std::cmp::Ordering::Equal
                        && m.protected
                        && !met[chosen].protected)
                {
                    chosen = i;
                }
            }
            let chosen = met.swap_remove(chosen);
            journal.rebase(&chosen.plan)?;
            return Ok(Optimized {
                design: journal.into_design(),
                plan: chosen.plan,
                fmax: chosen.fmax,
                trace: chosen.trace,
            });
        }

        if children.is_empty() {
            return Err(DseError::Unreachable {
                target,
                best: global_best,
            });
        }

        // Rank children by measured fmax (descending, stable) and keep
        // the top `width`, never pruning the protected chain.
        for child in &mut children {
            journal.rebase(&child.plan)?;
            child.fmax = cache
                .max_frequency(journal.design(), tech)
                .map_err(DseError::Sta)?
                .unwrap_or(target);
            global_best = global_best.max(child.fmax);
        }
        children.sort_by(|a, b| b.fmax.value().total_cmp(&a.fmax.value()));
        let mut selected: Vec<BeamState> = Vec::with_capacity(width);
        let protected_idx = children.iter().position(|c| c.protected);
        for (i, child) in children.into_iter().enumerate() {
            if selected.len() < width {
                selected.push(child);
            } else if Some(i) == protected_idx.filter(|&p| p >= width) {
                // The greedy chain fell below the cut: it replaces the
                // weakest survivor instead of dying.
                *selected.last_mut().expect("width >= 1") = child;
            }
        }
        // Each chain's progress guard baseline is its measured fmax
        // next iteration; `best` was set from the parent.
        states = selected;
    }
    Err(DseError::Unreachable {
        target,
        best: global_best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{optimize_for_with, optimize_with_config, DseConfig};
    use ggpu_rtl::{generate, GgpuConfig};

    fn base() -> Design {
        generate(&GgpuConfig::with_cus(1).unwrap()).unwrap()
    }

    #[test]
    fn beam_meets_targets_greedy_meets() {
        let tech = Tech::l65();
        let b = base();
        for t in [500.0, 590.0, 667.0] {
            let target = Mhz::new(t);
            let greedy = optimize_for_with(&b, &tech, target, &StaCache::new()).unwrap();
            let beam = optimize_with_config(
                &b,
                &tech,
                target,
                &StaCache::new(),
                &DseConfig::with_beam_width(2),
            )
            .unwrap();
            assert!(beam.fmax.value() >= target.value(), "beam misses {target}");
            assert!(
                beam.trace.len() <= greedy.trace.len(),
                "beam took more steps at {target}: {} vs {}",
                beam.trace.len(),
                greedy.trace.len()
            );
        }
    }

    #[test]
    fn beam_reports_unreachable_with_best() {
        let tech = Tech::l65();
        let err = optimize_with_config(
            &base(),
            &tech,
            Mhz::new(2000.0),
            &StaCache::new(),
            &DseConfig::with_beam_width(3),
        )
        .unwrap_err();
        match err {
            DseError::Unreachable { best, .. } => {
                assert!(best.value() > 500.0, "best {best}");
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn extend_plan_doubles_divisions_and_appends_pipelines() {
        let plan = OptimizationPlan::default();
        let d = Advice::DivideMemory {
            module: "m".into(),
            macro_name: "ram_d0".into(),
            fmax: Mhz::new(500.0),
        };
        let p1 = extend_plan(&plan, &d).unwrap();
        assert_eq!(p1.divisions[&("m".into(), "ram".into())], 2);
        let p2 = extend_plan(&p1, &d).unwrap();
        assert_eq!(p2.divisions[&("m".into(), "ram".into())], 4);
        let pipe = Advice::InsertPipeline {
            module: "m".into(),
            path: "logic".into(),
            fmax: Mhz::new(500.0),
        };
        let p3 = extend_plan(&p2, &pipe).unwrap();
        assert_eq!(p3.pipelines, vec![("m".into(), "logic".into())]);
        assert!(extend_plan(
            &plan,
            &Advice::Met {
                fmax: Mhz::new(1.0)
            }
        )
        .is_none());
    }
}
