//! Memoized static timing analysis, shared across design points.
//!
//! `best_within` evaluates 24 (CU count, frequency) points, and the
//! DSE loop behind each point re-times closely related netlists: the
//! three frequency targets of one CU count share the baseline design
//! and every common plan prefix. [`StaCache`] memoizes the two pure
//! STA entry points — `max_frequency` and `analyze` — keyed by a
//! structural fingerprint of the design (and clock), so concurrent
//! workers and successive DSE iterations never repeat an analysis.

use ggpu_netlist::Design;
use ggpu_sta::{analyze, max_frequency, StaError, TimingReport};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Streams formatted output straight into a hasher, so fingerprinting
/// never materializes the full debug string.
struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// A 64-bit structural fingerprint of a design under a technology.
///
/// Two designs get the same fingerprint iff their full structural
/// descriptions (modules, cell groups, macro geometries, timing paths,
/// activities) and the technology agree; STA output is a pure function
/// of exactly that input. Collisions are birthday-bounded at ~n²/2⁶⁵
/// for n distinct designs — negligible for the flow's design counts.
pub fn fingerprint(design: &Design, tech: &Tech) -> u64 {
    let mut h = DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{design:?}|{tech:?}");
    h.finish()
}

/// A thread-safe memo table for STA results.
///
/// Cloning a [`crate::GpuPlanner`] shares its cache (it is held behind
/// an `Arc`), so parallel workers spawned from one planner all hit the
/// same table.
#[derive(Default)]
pub struct StaCache {
    fmax: Mutex<HashMap<u64, Option<Mhz>>>,
    reports: Mutex<HashMap<(u64, u64), TimingReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for StaCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StaCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl StaCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`ggpu_sta::max_frequency`].
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying analysis (errors
    /// are not cached).
    pub fn max_frequency(&self, design: &Design, tech: &Tech) -> Result<Option<Mhz>, StaError> {
        let key = fingerprint(design, tech);
        if let Some(v) = self.fmax.lock().expect("sta cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = max_frequency(design, tech)?;
        self.fmax.lock().expect("sta cache poisoned").insert(key, v);
        Ok(v)
    }

    /// Memoized [`ggpu_sta::analyze`] at `clock`.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying analysis (errors
    /// are not cached).
    pub fn analyze(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
    ) -> Result<TimingReport, StaError> {
        let key = (fingerprint(design, tech), clock.value().to_bits());
        if let Some(r) = self.reports.lock().expect("sta cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = analyze(design, tech, clock)?;
        self.reports
            .lock()
            .expect("sta cache poisoned")
            .insert(key, r.clone());
        Ok(r)
    }

    /// Number of memoized results (both tables).
    pub fn entries(&self) -> usize {
        self.fmax.lock().expect("sta cache poisoned").len()
            + self.reports.lock().expect("sta cache poisoned").len()
    }

    /// Analyses answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Analyses actually computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    #[test]
    fn repeated_analyses_hit_the_cache() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let cache = StaCache::new();
        let f1 = cache.max_frequency(&design, &tech).unwrap();
        let f2 = cache.max_frequency(&design, &tech).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        let r1 = cache.analyze(&design, &tech, Mhz::new(500.0)).unwrap();
        let r2 = cache.analyze(&design, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        // A different clock is a different key.
        let _ = cache.analyze(&design, &tech, Mhz::new(600.0)).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.entries(), 3);
    }

    #[test]
    fn cached_results_match_direct_calls() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let cache = StaCache::new();
        assert_eq!(
            cache.max_frequency(&design, &tech).unwrap(),
            max_frequency(&design, &tech).unwrap()
        );
        assert_eq!(
            cache.analyze(&design, &tech, Mhz::new(590.0)).unwrap(),
            analyze(&design, &tech, Mhz::new(590.0)).unwrap()
        );
    }

    #[test]
    fn fingerprints_separate_structurally_different_designs() {
        let tech = Tech::l65();
        let d1 = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let d2 = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        assert_ne!(fingerprint(&d1, &tech), fingerprint(&d2, &tech));
        assert_eq!(fingerprint(&d1, &tech), fingerprint(&d1.clone(), &tech));
    }
}
