//! Memoized static timing analysis, shared across design points.
//!
//! `best_within` evaluates 24 (CU count, frequency) points, and the
//! DSE loop behind each point re-times closely related netlists: the
//! three frequency targets of one CU count share the baseline design
//! and every common plan prefix. [`StaCache`] memoizes the STA entry
//! points — `max_frequency`, `analyze` and the incremental
//! `analyze_delta` — keyed by a structural fingerprint of the design
//! (and clock).
//!
//! Two levels of reuse compose here:
//!
//! 1. **Design-level memoization** (this module): a whole-design
//!    fingerprint maps to the finished `Option<Mhz>` / `TimingReport`,
//!    so literally repeated queries are table lookups.
//! 2. **Module-level incrementality** ([`ggpu_sta::IncrementalSta`]):
//!    when the design-level lookup misses — every DSE iteration
//!    produces a structurally new design — the backing engine still
//!    reuses the clock-independent timing of every module whose
//!    content is unchanged, so a transform that touched one module
//!    re-times one module.
//!
//! Both result tables are sharded 16 ways behind `RwLock`s, so the
//! `GGPU_THREADS` sweep workers sharing one cache take read locks on
//! distinct shards instead of serializing on a global mutex.

use ggpu_netlist::{Design, ModuleId};
use ggpu_sta::{analyze, max_frequency, EngineStats, IncrementalSta, StaError, TimingReport};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independent lock domains per result table; a power of two
/// so the shard index is a mask of the key's low bits.
const SHARDS: usize = 16;

/// A 64-bit structural fingerprint of a design under a technology.
///
/// Built from the design's cached per-module fingerprints
/// ([`Design::structural_fingerprint`]) and the technology's
/// ([`Tech::structural_fingerprint`]), so fingerprinting a warm design
/// is O(module count) — not a Debug-format walk over the full netlist.
/// The design *name* is deliberately excluded: the flow renames
/// optimized designs, and STA output never depends on the name, so
/// excluding it turns renamed-identical designs into cache hits.
///
/// Two designs get the same fingerprint iff their structural contents
/// (modules, cell groups, macro geometries, timing paths, activities)
/// and the technology agree; STA output is a pure function of exactly
/// that input. Collisions are birthday-bounded at ~n²/2⁶⁵ for n
/// distinct designs — negligible for the flow's design counts.
pub fn fingerprint(design: &Design, tech: &Tech) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_u64(design.structural_fingerprint());
    h.write_u64(tech.structural_fingerprint());
    h.finish()
}

/// Streams formatted output straight into a hasher; the legacy
/// fingerprint path uses it so it never materializes the full debug
/// string.
struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// The seed flow's fingerprint: hash the `Debug` rendering of the full
/// design and technology. O(design size) per call — every cell group,
/// macro and path is formatted and fed through the hasher — which is
/// exactly the cost [`fingerprint`] eliminates. Retained (behind
/// [`StaCache::legacy`]) as the tracked benchmark baseline.
fn legacy_fingerprint(design: &Design, tech: &Tech) -> u64 {
    let mut h = DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{design:?}|{tech:?}");
    h.finish()
}

/// How a [`StaCache`] answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full memoization: design-level tables backed by the incremental
    /// per-module engine.
    Incremental,
    /// Reference mode: every query recomputes from scratch through
    /// [`ggpu_sta::analyze`] / [`ggpu_sta::max_frequency`], with no
    /// fingerprinting at all. Used by the equivalence property tests.
    Passthrough,
    /// The pre-incremental engine, bit-for-bit: design-level tables
    /// keyed by [`legacy_fingerprint`] (Debug-string hashing), misses
    /// recomputed by the full engine. Used as `sta_bench`'s tracked
    /// baseline so the benchmark compares against what the flow
    /// actually shipped before.
    Legacy,
}

/// A thread-safe memo table for STA results, backed by the
/// module-level incremental engine.
///
/// Cloning a [`crate::GpuPlanner`] shares its cache (it is held behind
/// an `Arc`), so parallel workers spawned from one planner all hit the
/// same table.
pub struct StaCache {
    mode: Mode,
    engine: IncrementalSta,
    fmax: [RwLock<HashMap<u64, Option<Mhz>>>; SHARDS],
    reports: [RwLock<HashMap<(u64, u64), TimingReport>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for StaCache {
    fn default() -> Self {
        Self::with_mode(Mode::Incremental)
    }
}

impl fmt::Debug for StaCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StaCache")
            .field("mode", &self.mode)
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl StaCache {
    fn with_mode(mode: Mode) -> Self {
        Self {
            mode,
            engine: IncrementalSta::new(),
            fmax: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            reports: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that never caches: every query recomputes through the
    /// full (non-incremental) engine with no fingerprinting. The
    /// reference for the property tests asserting the incremental
    /// path is bit-identical.
    pub fn passthrough() -> Self {
        Self::with_mode(Mode::Passthrough)
    }

    /// The pre-incremental engine, reproduced exactly: design-level
    /// memo keyed by a Debug-string fingerprint of the whole design,
    /// misses recomputed from scratch, no module-level reuse. Kept as
    /// the tracked baseline `sta_bench` measures against.
    pub fn legacy() -> Self {
        Self::with_mode(Mode::Legacy)
    }

    /// `true` if this cache memoizes (i.e. was not built with
    /// [`StaCache::passthrough`]).
    pub fn is_caching(&self) -> bool {
        self.mode != Mode::Passthrough
    }

    /// Memoized [`ggpu_sta::max_frequency`].
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying analysis (errors
    /// are not cached).
    pub fn max_frequency(&self, design: &Design, tech: &Tech) -> Result<Option<Mhz>, StaError> {
        let key = match self.mode {
            Mode::Passthrough => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return max_frequency(design, tech);
            }
            Mode::Incremental => fingerprint(design, tech),
            Mode::Legacy => legacy_fingerprint(design, tech),
        };
        let shard = &self.fmax[(key as usize) & (SHARDS - 1)];
        if let Some(v) = shard.read().expect("sta cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = match self.mode {
            Mode::Incremental => self.engine.max_frequency(design, tech)?,
            _ => max_frequency(design, tech)?,
        };
        shard.write().expect("sta cache poisoned").insert(key, v);
        Ok(v)
    }

    /// Memoized [`ggpu_sta::analyze`] at `clock`.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying analysis (errors
    /// are not cached).
    pub fn analyze(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
    ) -> Result<TimingReport, StaError> {
        self.analyze_inner(design, tech, clock, None)
    }

    /// Incremental [`analyze`](Self::analyze): `dirty` names the
    /// modules mutated since the designs this cache last saw. The
    /// dirty set is advisory — content addressing in the backing
    /// engine guarantees correctness regardless — and is used to audit
    /// transform instrumentation (see
    /// [`ggpu_sta::EngineStats::undeclared_dirty`]).
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying analysis (errors
    /// are not cached).
    pub fn analyze_delta(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
        dirty: &[ModuleId],
    ) -> Result<TimingReport, StaError> {
        self.analyze_inner(design, tech, clock, Some(dirty))
    }

    fn analyze_inner(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
        dirty: Option<&[ModuleId]>,
    ) -> Result<TimingReport, StaError> {
        let fp = match self.mode {
            Mode::Passthrough => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return analyze(design, tech, clock);
            }
            Mode::Incremental => fingerprint(design, tech),
            Mode::Legacy => legacy_fingerprint(design, tech),
        };
        let key = (fp, clock.value().to_bits());
        let shard = &self.reports[(fp as usize) & (SHARDS - 1)];
        if let Some(r) = shard.read().expect("sta cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = match (self.mode, dirty) {
            (Mode::Incremental, Some(dirty)) => {
                self.engine.analyze_delta(design, tech, clock, dirty)?
            }
            (Mode::Incremental, None) => self.engine.analyze(design, tech, clock)?,
            _ => analyze(design, tech, clock)?,
        };
        shard
            .write()
            .expect("sta cache poisoned")
            .insert(key, r.clone());
        Ok(r)
    }

    /// Number of memoized results (both tables, all shards).
    pub fn entries(&self) -> usize {
        let fmax: usize = self
            .fmax
            .iter()
            .map(|s| s.read().expect("sta cache poisoned").len())
            .sum();
        let reports: usize = self
            .reports
            .iter()
            .map(|s| s.read().expect("sta cache poisoned").len())
            .sum();
        fmax + reports
    }

    /// Analyses answered from the design-level tables.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Analyses actually computed (in passthrough mode, every query).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Counters of the backing module-level incremental engine.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    #[test]
    fn repeated_analyses_hit_the_cache() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let cache = StaCache::new();
        let f1 = cache.max_frequency(&design, &tech).unwrap();
        let f2 = cache.max_frequency(&design, &tech).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        let r1 = cache.analyze(&design, &tech, Mhz::new(500.0)).unwrap();
        let r2 = cache.analyze(&design, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        // A different clock is a different design-level key, but the
        // backing engine serves it from clock-independent module
        // entries: no new module is timed.
        let timed_before = cache.engine_stats().module_misses;
        let _ = cache.analyze(&design, &tech, Mhz::new(600.0)).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.engine_stats().module_misses, timed_before);
    }

    #[test]
    fn cached_results_match_direct_calls() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let cache = StaCache::new();
        assert_eq!(
            cache.max_frequency(&design, &tech).unwrap(),
            max_frequency(&design, &tech).unwrap()
        );
        assert_eq!(
            cache.analyze(&design, &tech, Mhz::new(590.0)).unwrap(),
            analyze(&design, &tech, Mhz::new(590.0)).unwrap()
        );
    }

    #[test]
    fn fingerprints_separate_structurally_different_designs() {
        let tech = Tech::l65();
        let d1 = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let d2 = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        assert_ne!(fingerprint(&d1, &tech), fingerprint(&d2, &tech));
        assert_eq!(fingerprint(&d1, &tech), fingerprint(&d1.clone(), &tech));
    }

    #[test]
    fn renamed_design_is_a_cache_hit() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let cache = StaCache::new();
        let f1 = cache.max_frequency(&design, &tech).unwrap();
        let mut renamed = design.clone();
        renamed.set_name("ggpu_1cu_optimized");
        let f2 = cache.max_frequency(&renamed, &tech).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn passthrough_never_caches_but_matches() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let reference = StaCache::passthrough();
        assert!(!reference.is_caching());
        let f1 = reference.max_frequency(&design, &tech).unwrap();
        let f2 = reference.max_frequency(&design, &tech).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(reference.hits(), 0);
        assert_eq!(reference.misses(), 2);
        assert_eq!(reference.entries(), 0);
        let cached = StaCache::new();
        assert_eq!(cached.max_frequency(&design, &tech).unwrap(), f1);
        assert_eq!(
            cached.analyze(&design, &tech, Mhz::new(590.0)).unwrap(),
            reference.analyze(&design, &tech, Mhz::new(590.0)).unwrap()
        );
    }

    #[test]
    fn legacy_mode_matches_incremental_and_still_memoizes() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let legacy = StaCache::legacy();
        assert!(legacy.is_caching());
        let modern = StaCache::new();
        assert_eq!(
            legacy.max_frequency(&design, &tech).unwrap(),
            modern.max_frequency(&design, &tech).unwrap()
        );
        assert_eq!(
            legacy.analyze(&design, &tech, Mhz::new(590.0)).unwrap(),
            modern.analyze(&design, &tech, Mhz::new(590.0)).unwrap()
        );
        // Legacy memoizes at the design level (that part of the seed
        // behaviour is preserved), it just pays the Debug-string
        // fingerprint and full recompute.
        let _ = legacy.max_frequency(&design, &tech).unwrap();
        assert_eq!(legacy.hits(), 1);
    }

    #[test]
    fn analyze_delta_matches_analyze() {
        let tech = Tech::l65();
        let design = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let cache = StaCache::new();
        let full = cache.analyze(&design, &tech, Mhz::new(590.0)).unwrap();
        let mut variant = design.clone();
        let timed = variant
            .module_ids()
            .find(|&id| !variant.module(id).paths.is_empty())
            .expect("generated design has timing paths");
        variant.module_mut(timed).paths[0].route_delay = ggpu_tech::units::Ns::new(0.05);
        let delta = cache
            .analyze_delta(&variant, &tech, Mhz::new(590.0), &[timed])
            .unwrap();
        let reference = analyze(&variant, &tech, Mhz::new(590.0)).unwrap();
        assert_eq!(delta, reference);
        assert_ne!(delta, full);
        assert_eq!(cache.engine_stats().undeclared_dirty, 0);
    }
}
