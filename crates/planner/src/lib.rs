//! GPUPlanner: the paper's primary contribution — a fully automated
//! generator of GPU-like ASIC accelerators, from RTL to (a model of)
//! GDSII.
//!
//! The flow follows the paper's Fig. 2: the designer writes a
//! [`Specification`] (CU count + frequency + optional PPA ceilings);
//! [`GpuPlanner::estimate`] gives a first-order PPA estimate;
//! [`GpuPlanner::plan`] runs the frequency map's design-space
//! exploration (memory division / pipeline insertion) and logic
//! synthesis; [`GpuPlanner::implement`] runs the partitioned physical
//! flow and checks the result against the specification.
//!
//! # Example
//!
//! ```
//! use gpuplanner::{GpuPlanner, Specification};
//! use ggpu_tech::units::Mhz;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planner = GpuPlanner::new(Tech::l65());
//! let version = planner.plan(&Specification::new(1, Mhz::new(590.0)))?;
//! assert!(version.synthesis.meets_timing);
//! println!("{}", version.synthesis.table_row());
//! # Ok(())
//! # }
//! ```

pub mod beam;
pub mod cache;
pub mod cycles;
pub mod datasheet;
pub mod dse;
pub mod flow;
pub mod journal;
pub mod map;
pub mod memopt;
pub mod spec;
pub mod spreadsheet;
pub mod supervise;
pub mod sweep;
pub mod versions;

pub use cache::{fingerprint, StaCache};
pub use cycles::{
    dataflow_net_weights, kernel_cycles, kernel_mem_profiles, price_at, total_runtime_us,
    KernelCycles, KernelMemProfile, KernelRuntime,
};
pub use datasheet::{datasheet, datasheet_with_supervision};
pub use dse::{
    apply_plan, apply_plan_clone_dirty, apply_plan_dirty, optimize_for, optimize_for_clone,
    optimize_for_cow, optimize_for_with, optimize_with_config, Action, DseConfig, DseError,
    OptimizationPlan, Optimized,
};
pub use flow::{
    worker_threads, GpuPlanner, ImplementedVersion, PlanError, PlannedVersion, PnrSession,
    PpaEstimate,
};
pub use journal::{Checkpoint, TransformJournal};
pub use map::{advise, advise_candidates, advise_delta, advise_with, Advice};
pub use memopt::{
    co_optimize_memory, MemOptConfig, MemOptError, MemoryCandidate, MemoryCoOptimized,
};
pub use spec::Specification;
pub use spreadsheet::{frequency_map, frequency_map_with_policy, map_to_csv, render_map, MapRow};
pub use supervise::{
    spec_fingerprint, stage_timeout_from_env, verify_kernels, DegradationReport, FailurePlan,
    FlowError, FlowErrorKind, FlowStage, Injection, SupervisedVersion, Supervisor,
    SupervisorConfig,
};
pub use sweep::{SweepConfig, SweepError, SweepReport, SweepSkip};
pub use versions::{paper_versions, physical_versions};
