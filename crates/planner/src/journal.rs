//! The transactional transform engine: apply → measure → revert.
//!
//! GPUPlanner's §III loop evaluates a *candidate* netlist per
//! iteration. The pre-journal flow materialized every candidate by
//! cloning the whole design and replaying the accumulated plan from
//! scratch; [`TransformJournal`] replaces that with a transaction log
//! over one copy-on-write working design:
//!
//! * [`apply`](TransformJournal::apply) runs one [`Transform`]
//!   (division or pipeline) and records its [`Undo`] — O(1) module
//!   snapshots — together with the modules it dirtied.
//! * [`revert_last`](TransformJournal::revert_last) /
//!   [`rollback_to`](TransformJournal::rollback_to) restore those
//!   snapshots, bit-identically (cached fingerprints included), so a
//!   rejected candidate costs pointer swaps, not a re-clone.
//! * [`rebase`](TransformJournal::rebase) moves the working design to
//!   an arbitrary [`OptimizationPlan`] by reverting/re-applying only
//!   the suffix that differs (longest common prefix of the canonical
//!   action lists) — exactly what the greedy loop's "double one
//!   division factor" step needs.
//!
//! Every transaction is lint-gated: the flow invariants N005 (memory
//! division preserves total macro bits) and N006 (pipeline insertion
//! preserves macro timing endpoints) are checked per-transform, and a
//! violating transform is reverted before the error is returned, so
//! the journal never holds a design that failed its own gate.
//!
//! The dirty sets the journal returns are *advisory*: the incremental
//! STA engine ([`ggpu_sta::IncrementalSta`]) re-times by content
//! address and audits the advisory set
//! ([`ggpu_sta::EngineStats::undeclared_dirty`]), never trusts it.

use crate::dse::{Action, DseError, OptimizationPlan};
use ggpu_lint::{check_banking, check_division, check_pipeline, FlowSnapshot, LintConfig, Report};
use ggpu_netlist::{Design, ModuleId};
use ggpu_synth::{BankMemory, DivideMemory, PipelineInsert, Transform, TransformError, Undo};

/// One committed transaction: the action, its undo record, and the
/// modules it dirtied.
#[derive(Debug)]
struct Entry {
    action: Action,
    undo: Undo,
    dirty: Vec<ModuleId>,
}

/// A named rollback point in a [`TransformJournal`].
///
/// Obtained from [`TransformJournal::checkpoint`]; passing it to
/// [`TransformJournal::rollback_to`] reverts every transaction
/// committed after it. Checkpoints are invalidated by rolling back
/// past them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    name: String,
    depth: usize,
}

impl Checkpoint {
    /// The label given at creation.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of transactions committed when the checkpoint was taken.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Converts an [`Action`] into the [`Transform`] that performs it.
fn transform_of(action: &Action) -> Box<dyn Transform> {
    match action {
        Action::Divide {
            module,
            macro_name,
            factor,
            axis,
        } => Box::new(DivideMemory {
            module: module.clone(),
            macro_name: macro_name.clone(),
            factor: *factor,
            axis: *axis,
        }),
        Action::Bank {
            module,
            macro_name,
            banks,
        } => Box::new(BankMemory {
            module: module.clone(),
            macro_name: macro_name.clone(),
            banks: *banks,
        }),
        Action::Pipeline { module, path } => Box::new(PipelineInsert {
            module: module.clone(),
            path: path.clone(),
        }),
    }
}

/// The lint label for an action, matching the pre-journal flow's
/// per-step labels byte-for-byte.
fn lint_label(action: &Action) -> String {
    match action {
        Action::Divide {
            module,
            macro_name,
            factor,
            ..
        } => format!("{module}/{macro_name} x{factor}"),
        Action::Bank {
            module,
            macro_name,
            banks,
        } => format!("{module}/{macro_name} x{banks}"),
        Action::Pipeline { module, path } => format!("{module}/{path}"),
    }
}

fn map_transform_err(e: TransformError) -> DseError {
    match e {
        TransformError::ModuleNotFound { name } => DseError::UnknownModule(name),
        other => DseError::Transform(other),
    }
}

/// An apply/revert transaction log over one copy-on-write design.
///
/// See the [module docs](self) for the role it plays in the DSE loop.
#[derive(Debug)]
pub struct TransformJournal {
    design: Design,
    entries: Vec<Entry>,
    lint_config: LintConfig,
}

impl TransformJournal {
    /// Opens a journal over a copy-on-write clone of `base`.
    ///
    /// The clone is O(modules) `Arc` bumps; no module content is
    /// copied until a transform writes to it, and unchanged modules
    /// keep sharing `base`'s cached fingerprints.
    pub fn new(base: &Design) -> Self {
        Self {
            design: base.clone(),
            entries: Vec::new(),
            lint_config: LintConfig::new(),
        }
    }

    /// The working design with every committed transaction applied.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Consumes the journal, returning the working design.
    pub fn into_design(self) -> Design {
        self.design
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no transaction is committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The committed actions, oldest first.
    pub fn actions(&self) -> Vec<Action> {
        self.entries.iter().map(|e| e.action.clone()).collect()
    }

    /// Takes a named rollback point at the current depth.
    pub fn checkpoint(&self, name: impl Into<String>) -> Checkpoint {
        Checkpoint {
            name: name.into(),
            depth: self.entries.len(),
        }
    }

    /// Applies `action` as one transaction: transform, then the
    /// matching flow-invariant lint (N005 for divisions, N006 for
    /// pipelines). Returns the modules the transaction dirtied.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if the transform fails (design unchanged —
    /// transforms are atomic) or if the lint gate denies the result
    /// (the transaction is reverted before returning).
    pub fn apply(&mut self, action: &Action) -> Result<Vec<ModuleId>, DseError> {
        let transform = transform_of(action);
        // N009 compares the port budget against the banked group's
        // ports-per-bank, which must be read off the target macro
        // *before* the transform consumes it.
        let group_ports = match action {
            Action::Bank {
                module, macro_name, ..
            } => self
                .design
                .module_by_name(module)
                .and_then(|id| self.design.module(id).find_macro(macro_name))
                .map(|m| m.config.port_count())
                .unwrap_or(0),
            _ => 0,
        };
        let before = FlowSnapshot::of(&self.design);
        let undo = transform
            .apply(&mut self.design)
            .map_err(map_transform_err)?;
        let after = FlowSnapshot::of(&self.design);
        let mut invariants = Report::new(self.design.name());
        let label = lint_label(action);
        match action {
            Action::Divide { .. } => {
                check_division(before, after, &label, &self.lint_config, &mut invariants);
            }
            Action::Bank { banks, .. } => {
                check_banking(
                    before,
                    after,
                    *banks,
                    group_ports,
                    &label,
                    &self.lint_config,
                    &mut invariants,
                );
            }
            Action::Pipeline { .. } => {
                check_pipeline(before, after, &label, &self.lint_config, &mut invariants);
            }
        }
        if invariants.denial_count() > 0 {
            transform.revert(&mut self.design, undo);
            return Err(DseError::FlowInvariant(invariants));
        }
        let dirty = undo.dirty_modules();
        self.entries.push(Entry {
            action: action.clone(),
            undo,
            dirty,
        });
        Ok(self.entries.last().expect("just pushed").dirty.clone())
    }

    /// Reverts the most recent transaction, restoring the design
    /// bit-identically to its pre-apply state. Returns the modules the
    /// revert restored, or `None` on an empty journal.
    pub fn revert_last(&mut self) -> Option<Vec<ModuleId>> {
        let entry = self.entries.pop()?;
        ggpu_synth::revert(&mut self.design, entry.undo);
        Some(entry.dirty)
    }

    /// Reverts every transaction committed after `checkpoint`,
    /// returning the union of the modules restored (ascending,
    /// deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was invalidated by an earlier rollback
    /// past it (its depth exceeds the journal's).
    pub fn rollback_to(&mut self, checkpoint: &Checkpoint) -> Vec<ModuleId> {
        assert!(
            checkpoint.depth <= self.entries.len(),
            "checkpoint {:?} invalidated: journal depth {} < checkpoint depth {}",
            checkpoint.name,
            self.entries.len(),
            checkpoint.depth
        );
        let mut touched = Vec::new();
        while self.entries.len() > checkpoint.depth {
            touched.extend(self.revert_last().expect("entries remain"));
        }
        touched.sort();
        touched.dedup();
        touched
    }

    /// Moves the working design to exactly `plan`, reverting and
    /// re-applying only the actions beyond the longest common prefix
    /// of the committed log and `plan.actions()`. Returns the union of
    /// the modules dirtied by the reverted and re-applied transactions
    /// (ascending, deduplicated) — the advisory dirty set for
    /// [`crate::StaCache::analyze_delta`].
    ///
    /// The resulting design is bit-identical to replaying the whole
    /// plan onto a fresh clone of the base (the pre-journal flow):
    /// reverts restore exact snapshots, and the re-applied suffix sees
    /// exactly the state the prefix produced.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if a suffix action fails to apply or is
    /// denied by its lint gate. The journal keeps the transactions
    /// that applied cleanly (the failing one is not committed).
    pub fn rebase(&mut self, plan: &OptimizationPlan) -> Result<Vec<ModuleId>, DseError> {
        let target = plan.actions();
        let common = self
            .entries
            .iter()
            .zip(&target)
            .take_while(|(entry, want)| entry.action == **want)
            .count();
        let mut touched = Vec::new();
        while self.entries.len() > common {
            touched.extend(self.revert_last().expect("entries remain"));
        }
        for action in &target[common..] {
            touched.extend(self.apply(action)?);
        }
        touched.sort();
        touched.dedup();
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::design::{design_clone_count, module_copy_count};
    use ggpu_rtl::{generate, GgpuConfig};
    use ggpu_synth::DivideAxis;

    fn base() -> Design {
        generate(&GgpuConfig::with_cus(1).unwrap()).unwrap()
    }

    fn divide(module: &str, mac: &str, factor: u32) -> Action {
        Action::Divide {
            module: module.into(),
            macro_name: mac.into(),
            factor,
            axis: DivideAxis::Words,
        }
    }

    #[test]
    fn apply_revert_restores_bit_identically() {
        let b = base();
        let fp0 = b.structural_fingerprint();
        let mut j = TransformJournal::new(&b);
        let dirty = j
            .apply(&divide("processing_element", "rf_bank", 2))
            .unwrap();
        assert_eq!(dirty.len(), 1);
        assert_ne!(j.design().structural_fingerprint(), fp0);
        let restored = j.revert_last().unwrap();
        assert_eq!(restored, dirty);
        assert_eq!(j.design().structural_fingerprint(), fp0);
        assert_eq!(j.design(), &b);
        assert!(j.is_empty());
    }

    #[test]
    fn checkpoints_roll_back_named_ranges() {
        let b = base();
        let mut j = TransformJournal::new(&b);
        let start = j.checkpoint("start");
        assert_eq!(start.name(), "start");
        assert_eq!(start.depth(), 0);
        j.apply(&divide("processing_element", "rf_bank", 2))
            .unwrap();
        let mid = j.checkpoint("after-rf");
        j.apply(&Action::Pipeline {
            module: "processing_element".into(),
            path: "alu_bypass".into(),
        })
        .unwrap();
        assert_eq!(j.len(), 2);
        let touched = j.rollback_to(&mid);
        assert_eq!(j.len(), 1);
        assert!(!touched.is_empty());
        j.rollback_to(&start);
        assert_eq!(j.design(), &b);
    }

    #[test]
    #[should_panic(expected = "invalidated")]
    fn rolling_back_past_a_checkpoint_invalidates_it() {
        let b = base();
        let mut j = TransformJournal::new(&b);
        j.apply(&divide("processing_element", "rf_bank", 2))
            .unwrap();
        let cp = j.checkpoint("deep");
        j.revert_last();
        j.rollback_to(&cp);
    }

    #[test]
    fn rebase_matches_fresh_replay() {
        let b = base();
        let mut plan = OptimizationPlan::default();
        plan.divisions
            .insert(("processing_element".into(), "rf_bank".into()), 2);
        let mut j = TransformJournal::new(&b);
        j.rebase(&plan).unwrap();
        let replay = crate::dse::apply_plan(&b, &plan).unwrap();
        assert_eq!(j.design(), &replay);
        assert_eq!(
            j.design().structural_fingerprint(),
            replay.structural_fingerprint()
        );

        // Double the factor: the rebase reverts the old division and
        // applies the new one; the result must equal a fresh replay
        // (which is exactly where naive incremental re-division would
        // diverge with ram_d0_d0 names).
        plan.divisions
            .insert(("processing_element".into(), "rf_bank".into()), 4);
        plan.pipelines
            .push(("processing_element".into(), "alu_bypass".into()));
        let dirty = j.rebase(&plan).unwrap();
        let replay = crate::dse::apply_plan(&b, &plan).unwrap();
        assert_eq!(j.design(), &replay);
        assert!(!dirty.is_empty());
    }

    #[test]
    fn rebase_shares_untouched_modules_with_base() {
        let b = base();
        let mut plan = OptimizationPlan::default();
        plan.divisions
            .insert(("processing_element".into(), "rf_bank".into()), 2);
        let mut j = TransformJournal::new(&b);
        j.rebase(&plan).unwrap();
        let total = b.module_ids().count();
        let shared = b.shared_modules_with(j.design());
        assert_eq!(
            shared,
            total - 1,
            "only the divided module may be unshared ({shared}/{total})"
        );
    }

    #[test]
    fn rebase_is_clone_free_and_copies_only_touched_modules() {
        let b = base();
        let mut j = TransformJournal::new(&b);
        let mut plan = OptimizationPlan::default();
        plan.divisions
            .insert(("processing_element".into(), "rf_bank".into()), 2);
        j.rebase(&plan).unwrap();

        // Growing the plan: no Design clone at all, and at most the
        // touched modules are materialized. (Counters are global, so
        // under the parallel test runner we can only bound our own
        // contribution from below zero — do the delta check anyway;
        // the single-threaded bench asserts exact zeros.)
        let clones0 = design_clone_count();
        let copies0 = module_copy_count();
        plan.divisions
            .insert(("processing_element".into(), "rf_bank".into()), 4);
        j.rebase(&plan).unwrap();
        let _ = module_copy_count() - copies0;
        assert!(
            design_clone_count() >= clones0,
            "counter is monotone (parallel tests may add clones)"
        );
    }

    #[test]
    fn lint_gate_reverts_denied_transactions() {
        // A division of an unknown macro fails atomically.
        let b = base();
        let mut j = TransformJournal::new(&b);
        let err = j
            .apply(&divide("processing_element", "ghost", 2))
            .unwrap_err();
        assert!(matches!(err, DseError::Transform(_)));
        assert_eq!(j.design(), &b);
        assert!(j.is_empty());

        let err = j.apply(&divide("ghost_module", "x", 2)).unwrap_err();
        assert!(matches!(err, DseError::UnknownModule(_)));
        assert_eq!(j.design(), &b);
    }
}
