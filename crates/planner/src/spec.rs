//! User-facing design specifications.

use ggpu_tech::sram::EccScheme;
use ggpu_tech::units::Mhz;
use std::fmt;

/// What the designer asks GPUPlanner for: a CU count, an operating
/// frequency, and optional PPA ceilings checked after implementation
/// (the paper's "resulting PPA is checked to guarantee it is under the
/// initial specification").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Specification {
    /// Number of compute units (1–8).
    pub compute_units: u32,
    /// Requested operating frequency.
    pub frequency: Mhz,
    /// Optional total-area ceiling in mm².
    pub max_area_mm2: Option<f64>,
    /// Optional total-power ceiling in watts.
    pub max_power_w: Option<f64>,
    /// General-memory-controller replicas (1 or 2; replication is the
    /// paper's future-work remedy for the 8-CU routing wall).
    pub memory_controllers: u32,
    /// Optional resilience target: the ECC scheme every SRAM role must
    /// carry. `None` means resilience is not part of this spec (no
    /// N008 coverage lint, no resilience report). A planner-level
    /// [`EccPolicy`](ggpu_netlist::EccPolicy) override can refine the
    /// uniform scheme per role.
    pub resilience: Option<EccScheme>,
}

impl Specification {
    /// A specification with no PPA ceilings.
    pub fn new(compute_units: u32, frequency: Mhz) -> Self {
        Self {
            compute_units,
            frequency,
            max_area_mm2: None,
            max_power_w: None,
            memory_controllers: 1,
            resilience: None,
        }
    }

    /// Asks for soft-error protection: every SRAM role must resolve to
    /// `scheme` (the planner's ECC policy can still override per
    /// role).
    pub fn with_resilience(mut self, scheme: EccScheme) -> Self {
        self.resilience = Some(scheme);
        self
    }

    /// Replicates the general memory controller (the paper's proposed
    /// fix for the 8-CU 600 MHz cap).
    pub fn with_memory_controllers(mut self, replicas: u32) -> Self {
        self.memory_controllers = replicas;
        self
    }

    /// Adds an area ceiling.
    pub fn with_max_area_mm2(mut self, mm2: f64) -> Self {
        self.max_area_mm2 = Some(mm2);
        self
    }

    /// Adds a power ceiling.
    pub fn with_max_power_w(mut self, watts: f64) -> Self {
        self.max_power_w = Some(watts);
        self
    }

    /// Canonical version name, e.g. `"1cu@500MHz"` (replicated-GMC
    /// versions get a `x2gmc` suffix).
    pub fn version_name(&self) -> String {
        if self.memory_controllers > 1 {
            format!(
                "{}cu@{:.0}MHz_x{}gmc",
                self.compute_units,
                self.frequency.value(),
                self.memory_controllers
            )
        } else {
            format!("{}cu@{:.0}MHz", self.compute_units, self.frequency.value())
        }
    }
}

impl fmt::Display for Specification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.version_name())?;
        if let Some(a) = self.max_area_mm2 {
            write!(f, " area<={a}mm2")?;
        }
        if let Some(p) = self.max_power_w {
            write!(f, " power<={p}W")?;
        }
        if let Some(scheme) = self.resilience {
            write!(f, " ecc={scheme}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_names() {
        let s = Specification::new(8, Mhz::new(667.0));
        assert_eq!(s.version_name(), "8cu@667MHz");
    }

    #[test]
    fn ceilings_compose() {
        let s = Specification::new(1, Mhz::new(500.0))
            .with_max_area_mm2(5.0)
            .with_max_power_w(2.5);
        assert_eq!(s.max_area_mm2, Some(5.0));
        assert_eq!(s.max_power_w, Some(2.5));
        let text = s.to_string();
        assert!(text.contains("area<=5mm2") && text.contains("power<=2.5W"));
    }

    #[test]
    fn resilience_target_shows_in_display_not_name() {
        let s = Specification::new(1, Mhz::new(590.0)).with_resilience(EccScheme::SecDed);
        assert_eq!(s.resilience, Some(EccScheme::SecDed));
        assert_eq!(s.version_name(), "1cu@590MHz");
        assert!(s.to_string().contains("ecc=secded"));
    }
}
