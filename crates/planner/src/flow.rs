//! The push-button GPUPlanner flow (the paper's Fig. 2): specify →
//! estimate → explore → logic synthesis → physical synthesis → PPA
//! check.

use crate::cache::StaCache;
use crate::dse::{apply_plan, optimize_with_config, DseConfig, DseError, OptimizationPlan};
use crate::spec::Specification;
use ggpu_fault::ResilienceReport;
use ggpu_netlist::{Design, EccPolicy, ModuleId};
use ggpu_pnr::{
    place_and_route, IncrementalPnr, Layout, PlacementDelta, Placer, PnrError, PnrOptions, PnrStats,
};
use ggpu_rtl::{generate, ConfigError, GgpuConfig};
use ggpu_sta::max_frequency;
use ggpu_synth::{synthesize, SynthesisError, SynthesisReport};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Number of worker threads for a parallel phase with `jobs` units of
/// work: the `GGPU_THREADS` environment variable if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`], clamped
/// to the job count.
pub fn worker_threads(jobs: usize) -> usize {
    // One knob for the whole flow: the same function sizes the
    // placer's global worker pool (`ggpu_pnr::Pool::global`).
    ggpu_pnr::configured_threads().min(jobs.max(1))
}

/// Maps `job(0..jobs)` across `threads` scoped workers, returning the
/// results in job order (as if mapped sequentially).
///
/// Work is handed out through an atomic index, so long jobs do not
/// stall the queue behind them. With `threads <= 1` this degenerates
/// to a plain sequential map with zero thread overhead.
pub(crate) fn parallel_map<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(jobs));
    thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = job(i);
                results.lock().expect("worker poisoned").push((i, out));
            });
        }
    });
    let mut collected = results.into_inner().expect("worker poisoned");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// Errors of the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The specification maps to an invalid generator configuration.
    Config(ConfigError),
    /// The exploration could not reach the requested frequency.
    Dse(DseError),
    /// Logic synthesis failed.
    Synthesis(SynthesisError),
    /// Physical synthesis failed.
    Pnr(PnrError),
    /// The pre-flight design lint denied a netlist (generated baseline
    /// or optimized result); the report carries every finding.
    Lint(ggpu_lint::Report),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "configuration: {e}"),
            PlanError::Dse(e) => write!(f, "exploration: {e}"),
            PlanError::Synthesis(e) => write!(f, "synthesis: {e}"),
            PlanError::Pnr(e) => write!(f, "physical synthesis: {e}"),
            PlanError::Lint(report) => write!(f, "design lint: {report}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Config(e) => Some(e),
            PlanError::Dse(e) => Some(e),
            PlanError::Synthesis(e) => Some(e),
            PlanError::Pnr(e) => Some(e),
            PlanError::Lint(_) => None,
        }
    }
}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> Self {
        PlanError::Config(e)
    }
}
impl From<DseError> for PlanError {
    fn from(e: DseError) -> Self {
        PlanError::Dse(e)
    }
}
impl From<SynthesisError> for PlanError {
    fn from(e: SynthesisError) -> Self {
        PlanError::Synthesis(e)
    }
}
impl From<PnrError> for PlanError {
    fn from(e: PnrError) -> Self {
        PlanError::Pnr(e)
    }
}

/// First-order PPA estimate produced before committing to synthesis
/// (the flow's "contrast specification with technology
/// characteristics" phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaEstimate {
    /// Maximum frequency of the unoptimized netlist.
    pub baseline_fmax: Mhz,
    /// Estimated total area after optimization, mm².
    pub est_area_mm2: f64,
    /// Estimated total power at the requested clock, W.
    pub est_power_w: f64,
    /// Whether the requested frequency looks reachable by the map's
    /// strategies.
    pub likely_feasible: bool,
}

/// A version after exploration and logic synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedVersion {
    /// The originating specification.
    pub spec: Specification,
    /// The generator configuration used.
    pub config: GgpuConfig,
    /// The optimized netlist.
    pub design: Design,
    /// The optimization recipe.
    pub plan: OptimizationPlan,
    /// The logic-synthesis report (one Table-I row).
    pub synthesis: SynthesisReport,
    /// The map's advice trace.
    pub trace: Vec<String>,
    /// Resilience accounting for the optimized netlist under the
    /// effective ECC policy — `Some` exactly when the specification
    /// (or the planner's policy override) configured a resilience
    /// target.
    pub resilience: Option<ResilienceReport>,
}

/// A version after physical synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplementedVersion {
    /// The planned version this layout implements.
    pub planned: PlannedVersion,
    /// The finished layout.
    pub layout: Layout,
    /// `true` if the layout meets the specification (timing and any
    /// PPA ceilings).
    pub within_spec: bool,
}

impl ImplementedVersion {
    /// The clock the silicon would actually run at.
    pub fn achieved_clock(&self) -> Mhz {
        self.layout.achieved_clock
    }
}

/// The automated flow.
#[derive(Debug, Clone)]
pub struct GpuPlanner {
    tech: Tech,
    pnr_options: PnrOptions,
    sta_cache: Arc<StaCache>,
    ecc_policy: Option<EccPolicy>,
}

impl GpuPlanner {
    /// A planner over the given technology.
    pub fn new(tech: Tech) -> Self {
        Self {
            tech,
            pnr_options: PnrOptions::default(),
            sta_cache: Arc::new(StaCache::new()),
            ecc_policy: None,
        }
    }

    /// The technology in use.
    pub fn tech(&self) -> &Tech {
        &self.tech
    }

    /// The planner's STA memo table. Clones of a planner share it, so
    /// parallel workers and successive sweeps reuse each other's
    /// analyses; inspect [`StaCache::hits`]/[`StaCache::misses`] for
    /// effectiveness.
    pub fn sta_cache(&self) -> &StaCache {
        &self.sta_cache
    }

    /// Overrides the physical-flow options.
    pub fn with_pnr_options(mut self, options: PnrOptions) -> Self {
        self.pnr_options = options;
        self
    }

    /// The physical-flow options in effect.
    pub fn pnr_options(&self) -> &PnrOptions {
        &self.pnr_options
    }

    /// Selects the global placer (keeping the other physical-flow
    /// options). [`Placer::Legacy`] is the default shelf packer;
    /// [`Placer::Analytical`] enables the electrostatic solver.
    pub fn with_placer(mut self, placer: Placer) -> Self {
        self.pnr_options.placer = placer;
        self
    }

    /// Opens a persistent physical-synthesis session for a DSE inner
    /// loop: partition solves and module timing stay cached across the
    /// candidate designs fed to it, and
    /// [`PnrSession::place_and_route_delta`] accepts the transform
    /// journal's dirty sets so successive candidates only re-place and
    /// re-time what changed. Layouts are bit-identical to
    /// [`GpuPlanner::implement`]'s under the same options.
    pub fn pnr_session(&self) -> PnrSession<'_> {
        PnrSession {
            tech: &self.tech,
            inc: IncrementalPnr::new(self.pnr_options),
        }
    }

    /// Replaces the planner's STA memo table — e.g. with
    /// [`StaCache::passthrough`] to reproduce the uncached reference
    /// flow for benchmarking, or with a table shared with other
    /// planners.
    pub fn with_sta_cache(mut self, cache: Arc<StaCache>) -> Self {
        self.sta_cache = cache;
        self
    }

    /// Sets a per-role ECC policy that overrides the uniform scheme of
    /// [`Specification::with_resilience`] — e.g. SEC-DED on register
    /// files but bare parity on FIFOs. Setting a policy activates the
    /// resilience flow (N008 coverage lint + [`ResilienceReport`]) for
    /// every spec this planner plans, whether or not the spec carries
    /// its own `resilience` field.
    pub fn with_ecc_policy(mut self, policy: EccPolicy) -> Self {
        self.ecc_policy = Some(policy);
        self
    }

    /// The effective ECC policy for `spec`: the planner-level override
    /// if one was installed, else the spec's uniform scheme, else
    /// `None` (resilience not configured).
    pub fn resilience_policy(&self, spec: &Specification) -> Option<EccPolicy> {
        self.ecc_policy
            .clone()
            .or_else(|| spec.resilience.map(EccPolicy::uniform))
    }

    /// Pre-flight static gate: rejects a netlist with deny-level
    /// design-lint findings before spending synthesis effort on it
    /// (and before trusting its sweep numbers).
    fn lint_gate(design: &Design) -> Result<(), PlanError> {
        let report = ggpu_lint::lint_design(design, &ggpu_lint::LintConfig::new());
        if report.denial_count() > 0 {
            return Err(PlanError::Lint(report));
        }
        Ok(())
    }

    pub(crate) fn config_for(&self, spec: &Specification) -> Result<GgpuConfig, PlanError> {
        let cfg = GgpuConfig {
            compute_units: spec.compute_units,
            memory_controllers: spec.memory_controllers,
            ..GgpuConfig::default()
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// First-order PPA estimation for a specification, without running
    /// the full exploration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the specification is invalid or the
    /// baseline cannot be synthesized.
    pub fn estimate(&self, spec: &Specification) -> Result<PpaEstimate, PlanError> {
        let config = self.config_for(spec)?;
        let design = generate(&config)?;
        let report = synthesize(&design, &self.tech, spec.frequency)?;
        let baseline_fmax = max_frequency(&design, &self.tech)
            .map_err(SynthesisError::from)?
            .unwrap_or(spec.frequency);
        // Optimization overhead heuristic: the paper measured ~10 %
        // area going 500 -> 590 MHz and ~2 % more to 667 MHz.
        let stretch = (spec.frequency.value() / baseline_fmax.value() - 1.0).max(0.0);
        let est_area_mm2 = report.stats.total_area().to_mm2() * (1.0 + 0.6 * stretch);
        let est_power_w = report.total_power().to_watts() * (1.0 + 0.9 * stretch);
        Ok(PpaEstimate {
            baseline_fmax,
            est_area_mm2,
            est_power_w,
            // The division strategy runs out of steam as macros reach
            // the compiler's minimum size; ~1.45x the baseline fmax is
            // where the 65 nm map saturates.
            likely_feasible: spec.frequency.value() <= baseline_fmax.value() * 1.45,
        })
    }

    /// Explores and logic-synthesizes one specification.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the specification is invalid, the
    /// frequency is unreachable, or synthesis fails.
    pub fn plan(&self, spec: &Specification) -> Result<PlannedVersion, PlanError> {
        self.plan_with_config(spec, &DseConfig::default())
    }

    /// [`GpuPlanner::plan`] under an explicit [`DseConfig`] — the
    /// default configuration is bit-identical to `plan`; wider beams
    /// run the journal-backed beam search (never worse than greedy).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the specification is invalid, the
    /// frequency is unreachable, or synthesis fails.
    pub fn plan_with_config(
        &self,
        spec: &Specification,
        dse: &DseConfig,
    ) -> Result<PlannedVersion, PlanError> {
        let config = self.config_for(spec)?;
        let base = generate(&config)?;
        Self::lint_gate(&base)?;
        let optimized =
            optimize_with_config(&base, &self.tech, spec.frequency, &self.sta_cache, dse)?;
        let mut design = optimized.design;
        design.set_name(format!(
            "ggpu_{}cu_{:.0}mhz",
            spec.compute_units,
            spec.frequency.value()
        ));
        Self::lint_gate(&design)?;
        let mut trace = optimized.trace;
        let resilience = match self.resilience_policy(spec) {
            Some(policy) => {
                // N008 coverage lint over the optimized netlist. The
                // code defaults to warn, so uncovered macros surface in
                // the trace; a strict config (overrides/`--deny warn`)
                // at the CLI level still denies.
                let coverage =
                    ggpu_lint::lint_resilience(&design, &policy, &ggpu_lint::LintConfig::new());
                if coverage.denial_count() > 0 {
                    return Err(PlanError::Lint(coverage));
                }
                if !coverage.is_clean() {
                    trace.push(format!(
                        "resilience: {} macro site(s) unprotected under `{policy}`",
                        coverage.diagnostics.len()
                    ));
                }
                ggpu_fault::MacroMap::from_design(&design, &policy)
                    .ok()
                    .map(|map| ResilienceReport::from_map(&map, policy.to_string()))
            }
            None => None,
        };
        let synthesis = synthesize(&design, &self.tech, spec.frequency)?;
        Ok(PlannedVersion {
            spec: *spec,
            config,
            design,
            plan: optimized.plan,
            synthesis,
            trace,
            resilience,
        })
    }

    /// Runs physical synthesis on a planned version and checks the
    /// result against the specification's ceilings.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Pnr`] if the physical flow fails
    /// structurally (timing misses do not error — they surface as
    /// `within_spec == false` with a reduced achieved clock, exactly
    /// like the paper's 8-CU 667 MHz version closing at 600 MHz).
    pub fn implement(&self, planned: &PlannedVersion) -> Result<ImplementedVersion, PlanError> {
        let layout = place_and_route(
            &planned.design,
            &self.tech,
            planned.spec.frequency,
            self.pnr_options,
        )?;
        let area = planned.synthesis.stats.total_area().to_mm2();
        let power = planned.synthesis.total_power().to_watts();
        let area_ok = planned.spec.max_area_mm2.is_none_or(|max| area <= max);
        let power_ok = planned.spec.max_power_w.is_none_or(|max| power <= max);
        let within_spec = layout.meets_timing && area_ok && power_ok;
        Ok(ImplementedVersion {
            planned: planned.clone(),
            layout,
            within_spec,
        })
    }

    /// The "single push of a button": plans and implements a whole
    /// list of specifications, returning per-version results in spec
    /// order.
    ///
    /// Versions are independent, so they are planned on
    /// [`worker_threads`] scoped threads (override with the
    /// `GGPU_THREADS` environment variable); all workers share this
    /// planner's [`StaCache`].
    pub fn run(&self, specs: &[Specification]) -> Vec<Result<ImplementedVersion, PlanError>> {
        self.run_with_threads(specs, worker_threads(specs.len()))
    }

    /// [`GpuPlanner::run`] on an explicit number of worker threads
    /// (`1` forces the sequential reference behavior).
    pub fn run_with_threads(
        &self,
        specs: &[Specification],
        threads: usize,
    ) -> Vec<Result<ImplementedVersion, PlanError>> {
        parallel_map(specs.len(), threads, |i| {
            self.plan(&specs[i]).and_then(|p| self.implement(&p))
        })
    }

    /// Searches the version space ({1..=8} CUs x the technology's
    /// worthwhile frequency points) for the highest-throughput version
    /// that fits the given area and power ceilings, where throughput
    /// is the compute proxy `CUs x frequency`.
    ///
    /// Returns `None` if no version fits. Unreachable frequencies are
    /// skipped, not errors.
    ///
    /// The 24 design points are independent, so they are planned on
    /// [`worker_threads`] scoped threads (override with the
    /// `GGPU_THREADS` environment variable) sharing this planner's
    /// [`StaCache`]; the winner is then selected by a deterministic
    /// sequential reduction in `(CUs, frequency)` order, so the result
    /// is identical to the single-threaded search.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] only for structural failures (invalid
    /// configurations, synthesis errors).
    pub fn best_within(
        &self,
        max_area_mm2: f64,
        max_power_w: f64,
    ) -> Result<Option<PlannedVersion>, PlanError> {
        let points = Self::sweep_points();
        let threads = worker_threads(points.len());
        self.best_within_with_threads(max_area_mm2, max_power_w, threads)
    }

    /// The `(CU count, frequency)` grid [`GpuPlanner::best_within`]
    /// sweeps: {1..=8} CUs x the paper's frequency points, in search
    /// order.
    pub fn sweep_points() -> Vec<(u32, f64)> {
        (1..=8u32)
            .flat_map(|cus| {
                crate::versions::PAPER_FREQUENCIES_MHZ
                    .iter()
                    .map(move |&mhz| (cus, mhz))
            })
            .collect()
    }

    /// [`GpuPlanner::best_within`] on an explicit number of worker
    /// threads (`1` forces the sequential reference behavior). The
    /// winner does not depend on `threads`.
    ///
    /// Delegates to the sweep-campaign engine
    /// ([`GpuPlanner::sweep`]) with no checkpoint and no candidate
    /// budget, which is bit-identical to the pre-campaign reduction;
    /// use [`crate::sweep::SweepConfig`] directly for crash-safe
    /// resumable or wall-clock-budgeted sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] only for structural failures (invalid
    /// configurations, synthesis errors).
    pub fn best_within_with_threads(
        &self,
        max_area_mm2: f64,
        max_power_w: f64,
        threads: usize,
    ) -> Result<Option<PlannedVersion>, PlanError> {
        let config =
            crate::sweep::SweepConfig::budgets(max_area_mm2, max_power_w).with_threads(threads);
        match self.sweep(&config) {
            Ok(report) => Ok(report.winner),
            Err(crate::sweep::SweepError::Plan(e)) => Err(e),
            Err(crate::sweep::SweepError::Io(_) | crate::sweep::SweepError::Checkpoint(_)) => {
                unreachable!("no checkpoint configured: the sweep never touches the filesystem")
            }
        }
    }

    /// Replays a recorded plan onto a freshly generated baseline —
    /// used to rebuild a version from its recipe.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the configuration is invalid or the
    /// plan does not apply.
    pub fn rebuild(
        &self,
        spec: &Specification,
        plan: &OptimizationPlan,
    ) -> Result<Design, PlanError> {
        let config = self.config_for(spec)?;
        let base = generate(&config)?;
        Ok(apply_plan(&base, plan)?)
    }
}

/// A persistent physical-synthesis session borrowed from a
/// [`GpuPlanner`] (see [`GpuPlanner::pnr_session`]). Wraps
/// [`ggpu_pnr::IncrementalPnr`] with the planner's technology and
/// error type, and takes dirty sets in the transform journal's terms
/// (`Vec<ModuleId>`, as returned by
/// [`crate::dse::apply_plan_dirty`] and `TransformJournal::apply`).
#[derive(Debug)]
pub struct PnrSession<'a> {
    tech: &'a Tech,
    inc: IncrementalPnr,
}

impl PnrSession<'_> {
    /// Places and routes `design` from scratch, warming the session
    /// caches.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Pnr`] if the physical flow fails
    /// structurally.
    pub fn place_and_route(&mut self, design: &Design, target: Mhz) -> Result<Layout, PlanError> {
        Ok(self.inc.place_and_route(design, self.tech, target)?)
    }

    /// Re-places and re-times `design` after a transform that dirtied
    /// the given journal modules. Bit-identical to
    /// [`Self::place_and_route`] on the same design, but only the
    /// dirtied partitions are re-solved and re-timed.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Pnr`] if the physical flow fails
    /// structurally.
    pub fn place_and_route_delta(
        &mut self,
        design: &Design,
        target: Mhz,
        dirty: Vec<ModuleId>,
    ) -> Result<Layout, PlanError> {
        Ok(self
            .inc
            .place_and_route_delta(design, self.tech, target, &PlacementDelta::of(dirty))?)
    }

    /// Placement-side counters of the session (solves, cache hits,
    /// undeclared-dirty audit).
    pub fn stats(&self) -> PnrStats {
        self.inc.stats()
    }

    /// Timing-side counters of the embedded incremental STA engine.
    pub fn sta_stats(&self) -> ggpu_sta::EngineStats {
        self.inc.sta_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> GpuPlanner {
        GpuPlanner::new(Tech::l65())
    }

    #[test]
    fn plan_1cu_500_has_empty_recipe() {
        let v = planner()
            .plan(&Specification::new(1, Mhz::new(500.0)))
            .unwrap();
        assert!(v.plan.is_empty());
        assert!(v.synthesis.meets_timing);
        assert_eq!(v.synthesis.stats.macro_count, 51);
    }

    #[test]
    fn plan_1cu_667_meets_timing_with_divisions() {
        let v = planner()
            .plan(&Specification::new(1, Mhz::new(667.0)))
            .unwrap();
        assert!(v.synthesis.meets_timing);
        assert!(!v.plan.divisions.is_empty());
        assert!(v.synthesis.fmax.unwrap().value() >= 667.0);
    }

    #[test]
    fn area_cost_of_optimization_matches_paper_scale() {
        // Paper: +10 % average area 500 -> 590 MHz, +2 % 590 -> 667.
        let p = planner();
        let a500 = p
            .plan(&Specification::new(1, Mhz::new(500.0)))
            .unwrap()
            .synthesis
            .stats
            .total_area()
            .to_mm2();
        let a590 = p
            .plan(&Specification::new(1, Mhz::new(590.0)))
            .unwrap()
            .synthesis
            .stats
            .total_area()
            .to_mm2();
        let a667 = p
            .plan(&Specification::new(1, Mhz::new(667.0)))
            .unwrap()
            .synthesis
            .stats
            .total_area()
            .to_mm2();
        let step1 = a590 / a500;
        let step2 = a667 / a590;
        assert!((1.01..1.25).contains(&step1), "500->590 area x{step1:.3}");
        assert!((1.0..1.10).contains(&step2), "590->667 area x{step2:.3}");
    }

    #[test]
    fn implement_1cu_667_closes() {
        let p = planner();
        let planned = p.plan(&Specification::new(1, Mhz::new(667.0))).unwrap();
        let imp = p.implement(&planned).unwrap();
        assert!(imp.within_spec, "achieved {}", imp.achieved_clock());
        assert_eq!(imp.achieved_clock(), Mhz::new(667.0));
    }

    #[test]
    fn implement_8cu_667_drops_to_about_600() {
        // The paper's headline physical-design finding.
        let p = planner();
        let planned = p.plan(&Specification::new(8, Mhz::new(667.0))).unwrap();
        assert!(planned.synthesis.meets_timing, "logic synthesis closes 667");
        let imp = p.implement(&planned).unwrap();
        assert!(!imp.within_spec, "routes must break 667 MHz post-layout");
        let achieved = imp.achieved_clock().value();
        assert!(
            (540.0..660.0).contains(&achieved),
            "achieved {achieved} MHz, paper: 600"
        );
    }

    #[test]
    fn estimate_is_sane() {
        let est = planner()
            .estimate(&Specification::new(1, Mhz::new(667.0)))
            .unwrap();
        assert!(est.baseline_fmax.value() > 480.0);
        assert!(est.likely_feasible);
        assert!(est.est_area_mm2 > 3.0);
        let too_fast = planner()
            .estimate(&Specification::new(1, Mhz::new(1500.0)))
            .unwrap();
        assert!(!too_fast.likely_feasible);
    }

    #[test]
    fn rebuild_replays_the_recipe() {
        let p = planner();
        let spec = Specification::new(1, Mhz::new(590.0));
        let planned = p.plan(&spec).unwrap();
        let rebuilt = p.rebuild(&spec, &planned.plan).unwrap();
        // The rebuilt design differs only in name.
        let mut renamed = rebuilt;
        renamed.set_name(planned.design.name().to_string());
        assert_eq!(renamed, planned.design);
    }

    #[test]
    fn spec_ceilings_are_enforced() {
        let p = planner();
        let spec = Specification::new(1, Mhz::new(500.0)).with_max_area_mm2(0.5);
        let planned = p.plan(&spec).unwrap();
        let imp = p.implement(&planned).unwrap();
        assert!(!imp.within_spec, "0.5 mm2 ceiling must fail");
    }

    #[test]
    fn lint_gate_rejects_broken_designs() {
        let mut design = generate(&GgpuConfig::default()).unwrap();
        // Sabotage: shrink some macro below the compiler's 16-word
        // minimum. The pre-flight gate must refuse to plan on it.
        let id = design
            .module_ids()
            .find(|&id| !design.module(id).macros.is_empty())
            .expect("generated design has macros");
        design.module_mut(id).macros[0].config.words = 8;
        match GpuPlanner::lint_gate(&design) {
            Err(PlanError::Lint(report)) => {
                assert!(report.has(ggpu_lint::Code::N003), "{report}");
            }
            other => panic!("expected a lint denial, got {other:?}"),
        }
        // The untouched baseline passes the same gate.
        let clean = generate(&GgpuConfig::default()).unwrap();
        assert!(GpuPlanner::lint_gate(&clean).is_ok());
    }

    #[test]
    fn resilience_target_yields_a_report() {
        use ggpu_tech::sram::EccScheme;
        let p = planner();
        let spec = Specification::new(1, Mhz::new(500.0)).with_resilience(EccScheme::SecDed);
        let v = p.plan(&spec).unwrap();
        let res = v.resilience.expect("resilience target configured");
        assert!(res.overhead_pct() > 0.0, "SEC-DED widens every word");
        assert_eq!(res.unprotected_fraction(), 0.0, "uniform policy covers all");
        // No target: no report, no resilience trace lines.
        let plain = p.plan(&Specification::new(1, Mhz::new(500.0))).unwrap();
        assert!(plain.resilience.is_none());
        assert!(!plain.trace.iter().any(|t| t.contains("resilience")));
    }

    #[test]
    fn planner_policy_overrides_spec_scheme_and_traces_holes() {
        use ggpu_netlist::module::MemoryRole;
        use ggpu_tech::sram::EccScheme;
        let policy =
            EccPolicy::uniform(EccScheme::Parity).with_role(MemoryRole::Fifo, EccScheme::None);
        let p = planner().with_ecc_policy(policy.clone());
        let spec = Specification::new(1, Mhz::new(500.0)).with_resilience(EccScheme::SecDed);
        assert_eq!(p.resilience_policy(&spec), Some(policy));
        let v = p.plan(&spec).unwrap();
        let res = v.resilience.expect("policy activates the flow");
        assert!(res.unprotected_fraction() > 0.0, "FIFOs left exposed");
        assert!(
            v.trace.iter().any(|t| t.contains("unprotected")),
            "{:?}",
            v.trace
        );
    }

    #[test]
    fn analytical_placer_preserves_timing_verdicts() {
        // Placer choice must not move the paper's physical numbers:
        // wirelength, route delays and the timing verdict are
        // floorplan-derived, so both placers agree on them.
        let spec = Specification::new(1, Mhz::new(667.0));
        let legacy = planner();
        let planned = legacy.plan(&spec).unwrap();
        let shelf = legacy.implement(&planned).unwrap();
        let analytic = planner()
            .with_placer(Placer::Analytical)
            .implement(&planned)
            .unwrap();
        assert_eq!(analytic.layout.placer, Placer::Analytical);
        assert_eq!(shelf.layout.placer, Placer::Legacy);
        assert_eq!(shelf.layout.meets_timing, analytic.layout.meets_timing);
        assert_eq!(shelf.layout.wirelength, analytic.layout.wirelength);
        assert_eq!(
            shelf.layout.cu_route_delays,
            analytic.layout.cu_route_delays
        );
        assert_eq!(shelf.within_spec, analytic.within_spec);
    }

    #[test]
    fn pnr_session_consumes_journal_dirty_sets() {
        use crate::dse::apply_plan_dirty;
        let spec = Specification::new(1, Mhz::new(667.0));
        let options = PnrOptions {
            placer: Placer::Analytical,
            ..PnrOptions::default()
        };
        let p = planner().with_pnr_options(options);
        let planned = p.plan(&spec).unwrap();
        assert!(!planned.plan.is_empty(), "667 MHz needs divisions");

        // Replay the recipe through the journal to get the dirty set,
        // then feed it to the session's delta path.
        let base = generate(&planned.config).unwrap();
        let (optimized, dirty) = apply_plan_dirty(&base, &planned.plan).unwrap();
        assert!(!dirty.is_empty());
        let mut session = p.pnr_session();
        session.place_and_route(&base, spec.frequency).unwrap();
        let delta = session
            .place_and_route_delta(&optimized, spec.frequency, dirty)
            .unwrap();

        // Exact: bit-identical to the from-scratch flow, with a clean
        // audit.
        let scratch = place_and_route(&optimized, p.tech(), spec.frequency, options).unwrap();
        assert_eq!(delta, scratch);
        assert_eq!(session.stats().undeclared_dirty, 0);
        assert!(session.sta_stats().module_hits > 0);

        // A repeat delta on the now-unchanged design is answered
        // entirely from the warm caches.
        let hits = session.stats().place.cache_hits;
        let solves = session.stats().place.solves;
        let again = session
            .place_and_route_delta(&optimized, spec.frequency, Vec::new())
            .unwrap();
        assert_eq!(again, scratch);
        let stats = session.stats();
        assert_eq!(stats.place.solves, solves, "no new solves");
        assert!(stats.place.cache_hits > hits, "partitions reused");
        assert_eq!(stats.undeclared_dirty, 0);
    }

    #[test]
    fn unreachable_frequency_is_an_error() {
        let err = planner()
            .plan(&Specification::new(1, Mhz::new(2000.0)))
            .unwrap_err();
        assert!(matches!(err, PlanError::Dse(DseError::Unreachable { .. })));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map(37, 4, |i| i * i);
        assert_eq!(squares, (0..37).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate thread counts fall back to a sequential map.
        assert_eq!(parallel_map(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_clamps_to_jobs() {
        // Whatever the machine/env supplies, a single job never gets
        // more than one worker, and zero jobs still get one.
        assert_eq!(worker_threads(1), 1);
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1_000_000) >= 1);
    }

    #[test]
    fn run_parallel_matches_sequential() {
        let p = GpuPlanner::new(Tech::l65());
        let specs = [
            Specification::new(1, Mhz::new(500.0)),
            Specification::new(2, Mhz::new(590.0)),
            Specification::new(1, Mhz::new(2000.0)), // unreachable
            Specification::new(1, Mhz::new(667.0)),
        ];
        let seq = p.run_with_threads(&specs, 1);
        let par = p.run_with_threads(&specs, 4);
        assert_eq!(seq.len(), par.len());
        for (s, q) in seq.iter().zip(&par) {
            assert_eq!(s, q);
        }
        assert!(matches!(par[2], Err(PlanError::Dse(_))));
    }

    #[test]
    fn clones_share_the_sta_cache() {
        let p = GpuPlanner::new(Tech::l65());
        let clone = p.clone();
        clone.plan(&Specification::new(1, Mhz::new(500.0))).unwrap();
        let misses = p.sta_cache().misses();
        assert!(misses > 0, "clone's analyses land in the shared cache");
        // Replanning the same spec is answered from the table.
        p.plan(&Specification::new(1, Mhz::new(500.0))).unwrap();
        assert_eq!(p.sta_cache().misses(), misses);
        assert!(p.sta_cache().hits() > 0);
    }
}

#[cfg(test)]
mod best_within_tests {
    use super::*;

    #[test]
    fn generous_budget_picks_the_biggest_fastest_version() {
        let best = GpuPlanner::new(Tech::l65())
            .best_within(100.0, 100.0)
            .unwrap()
            .expect("something fits");
        assert_eq!(best.spec.compute_units, 8);
        assert!((best.spec.frequency.value() - 667.0).abs() < 1.0);
    }

    #[test]
    fn tight_area_budget_picks_a_small_version() {
        let best = GpuPlanner::new(Tech::l65())
            .best_within(5.0, 100.0)
            .unwrap()
            .expect("a 1-CU version fits in 5 mm2");
        assert_eq!(best.spec.compute_units, 1);
        // Within the area class, the fastest frequency wins.
        assert!(best.spec.frequency.value() >= 590.0);
    }

    #[test]
    fn power_budget_binds_independently_of_area() {
        let best = GpuPlanner::new(Tech::l65())
            .best_within(100.0, 3.5)
            .unwrap()
            .expect("something fits 3.5 W");
        assert!(best.synthesis.total_power().to_watts() <= 3.5);
        assert!(best.spec.compute_units < 8, "8 CUs cannot fit 3.5 W");
    }

    #[test]
    fn impossible_budget_returns_none() {
        assert!(GpuPlanner::new(Tech::l65())
            .best_within(0.5, 0.01)
            .unwrap()
            .is_none());
    }

    #[test]
    fn parallel_search_returns_the_sequential_winner() {
        let p = GpuPlanner::new(Tech::l65());
        let seq = p
            .best_within_with_threads(5.0, 100.0, 1)
            .unwrap()
            .expect("a 1-CU version fits");
        let par = p
            .best_within_with_threads(5.0, 100.0, 4)
            .unwrap()
            .expect("a 1-CU version fits");
        assert_eq!(seq.spec, par.spec);
        assert_eq!(seq.plan, par.plan);
        assert_eq!(seq.synthesis, par.synthesis);
    }
}
