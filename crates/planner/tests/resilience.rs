//! DSE and the fault-injection exposure map stay coherent: the
//! campaign's macro map is derived from the *optimized* netlist, so a
//! memory division performed by the frequency-map exploration
//! measurably redistributes that memory's SEU exposure across the new
//! banks (the acceptance link between `gpuplanner` and `ggpu-fault`).

use ggpu_fault::MacroMap;
use ggpu_tech::sram::EccScheme;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{apply_plan, GpuPlanner, OptimizationPlan, Specification};

fn planned_map(planner: &GpuPlanner, mhz: f64) -> (gpuplanner::PlannedVersion, MacroMap) {
    let spec = Specification::new(1, Mhz::new(mhz)).with_resilience(EccScheme::Parity);
    let version = planner.plan(&spec).unwrap();
    let policy = planner
        .resilience_policy(&spec)
        .expect("resilience configured");
    let map = MacroMap::from_design(&version.design, &policy).unwrap();
    (version, map)
}

#[test]
fn dividing_a_macro_changes_its_seu_exposure() {
    let planner = GpuPlanner::new(Tech::l65());
    // 500 MHz: baseline, rf_bank undivided.
    let (base, base_map) = planned_map(&planner, 500.0);
    assert!(base.plan.is_empty(), "500 MHz needs no recipe");
    // 590 MHz: the map divides the register file.
    let (fast, fast_map) = planned_map(&planner, 590.0);
    assert!(
        fast.plan.divisions.keys().any(|(_, mac)| mac == "rf_bank"),
        "590 MHz divides the register file: {:?}",
        fast.plan.divisions
    );

    // Aggregate exposure of all rf parts is conserved (a word-axis
    // division moves bits, it does not create them)…
    let agg_base = base_map.exposure_of("rf_bank");
    let agg_fast = fast_map.exposure_of("rf_bank");
    assert!(agg_base > 0.0);
    assert!(
        (agg_base - agg_fast).abs() < 1e-9,
        "aggregate {agg_base} vs {agg_fast}"
    );

    // …but each resulting bank carries measurably less than the
    // undivided original, so a campaign samples it less often.
    let part = fast_map.exposure_of("rf_bank_d0");
    assert!(part > 0.0, "divided bank exists in the map");
    assert!(
        part < agg_base * 0.75,
        "per-bank exposure {part} must drop below the undivided {agg_base}"
    );
    // The baseline has no divided banks at all.
    assert_eq!(base_map.exposure_of("rf_bank_d0"), 0.0);
}

#[test]
fn planned_resilience_report_tracks_the_divided_netlist() {
    let planner = GpuPlanner::new(Tech::l65());
    let (base, _) = planned_map(&planner, 500.0);
    let (fast, _) = planned_map(&planner, 590.0);
    let base_res = base.resilience.expect("resilience configured");
    let fast_res = fast.resilience.expect("resilience configured");
    // Division adds macro sites (more banks) without losing data bits.
    assert!(fast_res.rows.len() > base_res.rows.len());
    assert_eq!(fast_res.data_bits_total(), base_res.data_bits_total());
    // Word-axis halving doubles rf banks; parity is 1 bit/word and the
    // word count is conserved, so stored bits are conserved too.
    assert_eq!(fast_res.stored_bits_total(), base_res.stored_bits_total());
    assert!(fast_res.rows.iter().any(|r| r.path.contains("rf_bank_d0")));
}

#[test]
fn banking_redistributes_seu_exposure_across_banks() {
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(1, Mhz::new(500.0)).with_resilience(EccScheme::Parity);
    let version = planner.plan(&spec).unwrap();
    let policy = planner.resilience_policy(&spec).unwrap();
    let base_map = MacroMap::from_design(&version.design, &policy).unwrap();

    // Bank the LRAM group 2x on top of the planned design — the same
    // plan shape `co_optimize_memory` emits when banking wins.
    let mut plan = OptimizationPlan::default();
    plan.bankings
        .insert(("compute_unit".into(), "lram0".into()), 2);
    let banked = apply_plan(&version.design, &plan).unwrap();
    let banked_map = MacroMap::from_design(&banked, &policy).unwrap();

    // Aggregate LRAM exposure is conserved: banking moves words into
    // narrower banks, it does not create or destroy stored bits.
    let agg_base = base_map.exposure_of("lram0");
    let agg_banked = banked_map.exposure_of("lram0");
    assert!(agg_base > 0.0);
    assert!(
        (agg_base - agg_banked).abs() < 1e-9,
        "aggregate {agg_base} vs {agg_banked}"
    );

    // Each bank is its own campaign site carrying strictly less than
    // the unbanked macro, so SEUs spread across independent targets.
    let part = banked_map.exposure_of("lram0_b0");
    assert!(part > 0.0, "bank exists as a separate site");
    assert!(
        part < agg_base * 0.75,
        "per-bank exposure {part} must drop below the unbanked {agg_base}"
    );
    // The unbanked design has no such site.
    assert_eq!(base_map.exposure_of("lram0_b0"), 0.0);

    // Parity is one check bit per word and banking conserves words,
    // so the resilience report's stored/data bit totals match too.
    let base_res = ggpu_fault::ResilienceReport::from_map(&base_map, "parity");
    let banked_res = ggpu_fault::ResilienceReport::from_map(&banked_map, "parity");
    assert_eq!(base_res.data_bits_total(), banked_res.data_bits_total());
    assert_eq!(base_res.stored_bits_total(), banked_res.stored_bits_total());
    assert!(banked_res.rows.iter().any(|r| r.path.contains("lram0_b0")));
}
