//! Chaos property suite for the flow supervisor: hundreds of seeded
//! fault-injection campaigns against the end-to-end pipeline, pinning
//! the supervision contract — nothing is silently lost, every
//! degradation is reported, and whenever every rung that ran is
//! bit-identical the supervised result equals the plain flow's.

use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{
    datasheet, datasheet_with_supervision, FailurePlan, GpuPlanner, Specification, Supervisor,
    SupervisorConfig,
};

const CAMPAIGNS: u64 = 200;

fn chaos_config(seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        // Pin the policy regardless of the host environment.
        stage_timeout: None,
        max_retries: 2,
        backoff_base_ms: 0,
        seed,
        chaos: FailurePlan::seeded(seed),
        ..SupervisorConfig::default()
    }
}

/// Every rung of the default ladder (greedy search, legacy STA path,
/// legacy placer, scalar backend) is bit-identical to the first
/// choice, so *any* surviving outcome must equal the unsupervised
/// flow's — chaos can slow the flow down or kill it, never change its
/// silicon.
#[test]
fn chaos_campaigns_never_lose_or_corrupt_results() {
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(1, Mhz::new(500.0));
    let baseline = planner.implement(&planner.plan(&spec).unwrap()).unwrap();

    let mut survived = 0u64;
    let mut killed = 0u64;
    let mut degraded_runs = 0u64;
    let mut retried_runs = 0u64;
    for seed in 0..CAMPAIGNS {
        let sup = Supervisor::new(planner.clone()).with_config(chaos_config(seed));
        match sup.run_spec(&spec) {
            Ok(out) => {
                survived += 1;
                // Nothing corrupted: bit-identical to the plain flow.
                assert_eq!(out.version, baseline, "seed {seed} changed the result");
                assert_eq!(
                    datasheet(&out.version),
                    datasheet(&baseline),
                    "seed {seed} changed the datasheet"
                );
                // Every degradation is structured and reported.
                if !out.degradations.steps.is_empty() {
                    degraded_runs += 1;
                    for step in &out.degradations.steps {
                        assert!(!step.stage.is_empty() && !step.reason.is_empty());
                        assert_ne!(step.from, step.to, "seed {seed}: no-op ladder step");
                    }
                    let lint = out
                        .degradations
                        .lint(&spec.version_name(), &ggpu_lint::LintConfig::new());
                    assert_eq!(
                        lint.diagnostics.len(),
                        out.degradations.steps.len(),
                        "seed {seed}: one N010 finding per step"
                    );
                    assert!(lint.has(ggpu_lint::Code::N010));
                    // ...and it reaches the datasheet.
                    let sheet = datasheet_with_supervision(&out.version, &out.degradations);
                    assert!(sheet.contains("flow supervision:"), "seed {seed}");
                    assert!(sheet.starts_with(&datasheet(&out.version)), "seed {seed}");
                }
                if out.degradations.retries > 0 {
                    retried_runs += 1;
                }
            }
            Err(err) => {
                killed += 1;
                // A campaign only dies after the whole ladder is
                // exhausted on retryable failures: the attempt
                // accounting must show a full budget spent on every
                // rung (1 attempt + 2 retries per rung).
                assert!(
                    err.retryable(),
                    "seed {seed}: chaos injects transients only"
                );
                let rungs = match err.stage {
                    gpuplanner::FlowStage::Verify => 2,
                    gpuplanner::FlowStage::Plan => 2,
                    gpuplanner::FlowStage::Implement => 1,
                    gpuplanner::FlowStage::Campaign => 1,
                };
                assert_eq!(err.attempts, rungs * 3, "seed {seed}: {err}");
                assert!(err.to_string().contains(&spec.version_name()));
            }
        }
    }
    // Accounting: every campaign resolved one way or the other.
    assert_eq!(survived + killed, CAMPAIGNS);
    // The chaos mix (~30 % per attempt) must actually exercise the
    // machinery: plenty of retried runs, some ladder degradations,
    // and most campaigns surviving.
    assert!(survived > CAMPAIGNS / 2, "only {survived} survived");
    assert!(retried_runs > 10, "only {retried_runs} campaigns retried");
    assert!(degraded_runs > 0, "no campaign degraded");
}

/// Chaos campaigns are reproducible: the same seed takes the same
/// path — same outcome, same degradation record, same attempts.
#[test]
fn chaos_campaigns_are_deterministic_per_seed() {
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(1, Mhz::new(500.0));
    for seed in [3, 17, 99] {
        let a = Supervisor::new(planner.clone())
            .with_config(chaos_config(seed))
            .run_spec(&spec);
        let b = Supervisor::new(planner.clone())
            .with_config(chaos_config(seed))
            .run_spec(&spec);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.version, y.version, "seed {seed}");
                assert_eq!(x.degradations, y.degradations, "seed {seed}");
            }
            (Err(x), Err(y)) => {
                assert_eq!(x.to_string(), y.to_string(), "seed {seed}");
                assert_eq!(x.attempts, y.attempts, "seed {seed}");
            }
            (x, y) => panic!("seed {seed} diverged: {x:?} vs {y:?}"),
        }
    }
}

/// With no chaos, supervision is invisible: the paper's physical
/// versions come out byte-identical to the unsupervised flow, clean
/// degradation reports, datasheets unchanged down to the last byte.
#[test]
fn supervised_flow_is_byte_identical_when_no_fault_fires() {
    let planner = GpuPlanner::new(Tech::l65());
    let specs = gpuplanner::physical_versions();
    let supervisor = Supervisor::new(planner.clone());
    let supervised = supervisor.run(&specs);
    assert_eq!(supervised.len(), specs.len());
    for (spec, outcome) in specs.iter().zip(supervised) {
        let out = outcome.unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(out.degradations.is_clean(), "{spec}");
        let plain = planner.implement(&planner.plan(spec).unwrap()).unwrap();
        assert_eq!(out.version, plain, "{spec}");
        // A clean run adds nothing to the datasheet.
        assert_eq!(
            datasheet_with_supervision(&out.version, &out.degradations),
            datasheet(&plain),
            "{spec}"
        );
    }
}

/// Resilient specs opt into the supervised fault campaign; the report
/// is seeded off the spec fingerprint and fully deterministic.
#[test]
fn resilient_specs_run_a_deterministic_fault_campaign() {
    use ggpu_tech::sram::EccScheme;
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(1, Mhz::new(500.0)).with_resilience(EccScheme::Parity);
    let cfg = SupervisorConfig {
        stage_timeout: None,
        campaign_trials: 24,
        ..SupervisorConfig::default()
    };
    let sup = Supervisor::new(planner.clone()).with_config(cfg.clone());
    let a = sup.run_spec(&spec).unwrap();
    let campaign = a.campaign.as_ref().expect("resilient spec runs a campaign");
    assert_eq!(campaign.counts.total(), 24);
    let b = Supervisor::new(planner.clone())
        .with_config(cfg.clone())
        .run_spec(&spec)
        .unwrap();
    assert_eq!(
        campaign.to_json(),
        b.campaign.as_ref().expect("campaign").to_json()
    );
    // A spec without a resilience target skips the stage entirely.
    let plain = Supervisor::new(planner)
        .with_config(cfg)
        .run_spec(&Specification::new(1, Mhz::new(500.0)))
        .unwrap();
    assert!(plain.campaign.is_none());
}
