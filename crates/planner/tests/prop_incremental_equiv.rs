//! Equivalence and accounting properties of the incremental STA path.
//!
//! The incremental engine (`StaCache::new()` backed by
//! `ggpu_sta::IncrementalSta`) must be observationally *bit-identical*
//! to the full recompute (`StaCache::passthrough()` /
//! `ggpu_sta::analyze`): same `TimingReport`s down to slack bit
//! patterns, same `OptimizationPlan`s out of the DSE, same fmax. These
//! properties drive randomized transform sequences through both paths
//! and compare.

mod common;

use common::{random_design, random_plan};
use ggpu_netlist::module::Module;
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_prop::cases;
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_sta::analyze;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::{Mhz, Ns};
use ggpu_tech::Tech;
use gpuplanner::{apply_plan_dirty, optimize_for_with, StaCache};

#[test]
fn random_transform_sequences_are_bit_identical_incremental_vs_full() {
    let tech = Tech::l65();
    cases(48, |rng| {
        let base = random_design(rng);
        let plan = random_plan(rng, &base);
        let (mutated, dirty) = apply_plan_dirty(&base, &plan).expect("plan applies");
        let clock = Mhz::new(rng.f64_in(200.0, 900.0));

        // Warm the incremental cache on the baseline, then analyze the
        // mutated design through the delta path.
        let cache = StaCache::new();
        cache.analyze(&base, &tech, clock).expect("baseline times");
        let incremental = cache
            .analyze_delta(&mutated, &tech, clock, &dirty)
            .expect("delta times");

        let full = analyze(&mutated, &tech, clock).expect("full times");
        assert_eq!(incremental, full, "reports diverge");
        for (a, b) in incremental.paths().iter().zip(full.paths()) {
            assert_eq!(
                a.slack.value().to_bits(),
                b.slack.value().to_bits(),
                "slack bits diverge on {}::{}",
                a.module,
                a.path
            );
        }
        // The dirty set from apply_plan_dirty must be complete: no
        // undeclared mutations.
        assert_eq!(cache.engine_stats().undeclared_dirty, 0);

        // fmax agrees bit-for-bit too.
        let f_inc = cache.max_frequency(&mutated, &tech).expect("fmax");
        let f_full = ggpu_sta::max_frequency(&mutated, &tech).expect("fmax");
        match (f_inc, f_full) {
            (Some(a), Some(b)) => assert_eq!(a.value().to_bits(), b.value().to_bits()),
            (a, b) => assert_eq!(a, b),
        }
    });
}

#[test]
fn dse_plans_identical_incremental_vs_passthrough() {
    let tech = Tech::l65();
    let base = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    for target in [590.0, 667.0] {
        let target = Mhz::new(target);
        let cached = optimize_for_with(&base, &tech, target, &StaCache::new()).unwrap();
        let reference = optimize_for_with(&base, &tech, target, &StaCache::passthrough()).unwrap();
        assert_eq!(cached.plan, reference.plan, "plans diverge at {target}");
        assert_eq!(
            cached.fmax.value().to_bits(),
            reference.fmax.value().to_bits(),
            "fmax diverges at {target}"
        );
        assert_eq!(
            cached.design, reference.design,
            "designs diverge at {target}"
        );
        assert_eq!(cached.trace, reference.trace, "traces diverge at {target}");
    }
}

#[test]
fn cache_accounting_is_monotone_and_repeat_sweeps_hit() {
    let tech = Tech::l65();
    let base = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    let cache = StaCache::new();
    let target = Mhz::new(590.0);

    let first = optimize_for_with(&base, &tech, target, &cache).unwrap();
    let h1 = cache.hits();
    let m1 = cache.misses();
    let e1 = cache.engine_stats();
    assert!(m1 > 0, "first sweep must compute something");
    assert!(
        e1.module_hits > 0,
        "DSE iterations share unchanged modules, so the module-level \
         engine must hit even on the first sweep"
    );

    // The identical sweep again: every design-level query repeats, so
    // hits grow and misses stand still.
    let second = optimize_for_with(&base, &tech, target, &cache).unwrap();
    assert_eq!(first.plan, second.plan);
    let h2 = cache.hits();
    let m2 = cache.misses();
    let e2 = cache.engine_stats();
    assert!(h2 > h1, "repeat sweep produced no hits");
    assert_eq!(m2, m1, "repeat sweep recomputed something");
    // All counters are monotone.
    assert!(e2.module_hits >= e1.module_hits);
    assert!(e2.module_misses >= e1.module_misses);
    assert!(e2.analyze_calls >= e1.analyze_calls);
    assert!(e2.fmax_calls >= e1.fmax_calls);
    assert_eq!(
        e2.module_misses, e1.module_misses,
        "repeat sweep re-timed a module"
    );
    let rate = e2.hit_rate();
    assert!((0.0..=1.0).contains(&rate));
}

#[test]
fn nan_route_delay_never_panics_and_sorts_to_the_tail() {
    let tech = Tech::l65();
    let mut d = Design::new("nan");
    let mut m = Module::new("m");
    m.paths.push(TimingPath::new(
        "good",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 6, 2),
    ));
    let mut bad = TimingPath::new(
        "corrupt",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 4, 2),
    );
    bad.route_delay = Ns::new(f64::NAN);
    m.paths.push(bad);
    let id = d.add_module(m);
    d.set_top(id);

    let cache = StaCache::new();
    let report = cache.analyze(&d, &tech, Mhz::new(500.0)).expect("no panic");
    assert_eq!(report.paths().len(), 2);
    // total_cmp sends the (positive) NaN slack to the tail, so the
    // well-formed path stays critical.
    assert_eq!(report.critical().unwrap().path, "good");
    assert!(report.paths()[1].slack.value().is_nan());
    // fmax selection must not panic either.
    let _ = cache.max_frequency(&d, &tech).expect("no panic");
}
