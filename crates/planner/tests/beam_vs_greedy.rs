//! Beam-search acceptance: width 1 is the greedy loop, bit for bit;
//! wider beams are never worse, across all 12 Table-I versions.

use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::Tech;
use gpuplanner::{
    optimize_for_clone, optimize_for_with, optimize_with_config, paper_versions, DseConfig,
    StaCache,
};

/// Width 1 must be *bit-identical* to greedy — and greedy itself
/// bit-identical to the pre-refactor clone-replay loop — on every
/// (CU count, frequency) point of Table I.
#[test]
fn beam_width_1_is_greedy_on_all_12_versions() {
    let tech = Tech::l65();
    let cache = StaCache::new();
    let clone_cache = StaCache::new();
    for spec in paper_versions() {
        let base = generate(&GgpuConfig::with_cus(spec.compute_units).unwrap()).unwrap();
        let greedy = optimize_for_with(&base, &tech, spec.frequency, &cache).unwrap();
        let width1 = optimize_with_config(
            &base,
            &tech,
            spec.frequency,
            &cache,
            &DseConfig::with_beam_width(1),
        )
        .unwrap();
        assert_eq!(width1.plan, greedy.plan, "{}", spec.version_name());
        assert_eq!(width1.design, greedy.design, "{}", spec.version_name());
        assert_eq!(width1.trace, greedy.trace, "{}", spec.version_name());
        assert_eq!(
            width1.fmax.value().to_bits(),
            greedy.fmax.value().to_bits(),
            "{}",
            spec.version_name()
        );

        let reference = optimize_for_clone(&base, &tech, spec.frequency, &clone_cache).unwrap();
        assert_eq!(width1.plan, reference.plan, "{}", spec.version_name());
        assert_eq!(width1.design, reference.design, "{}", spec.version_name());
        assert_eq!(width1.trace, reference.trace, "{}", spec.version_name());
        assert_eq!(
            width1.fmax.value().to_bits(),
            reference.fmax.value().to_bits(),
            "{}",
            spec.version_name()
        );
    }
}

/// Width 2 must meet every target greedy meets, in no more transform
/// steps (the protected greedy chain guarantees this structurally;
/// this test pins it empirically).
#[test]
fn beam_width_2_is_no_worse_on_all_12_versions() {
    let tech = Tech::l65();
    for spec in paper_versions() {
        let base = generate(&GgpuConfig::with_cus(spec.compute_units).unwrap()).unwrap();
        let greedy = optimize_for_with(&base, &tech, spec.frequency, &StaCache::new()).unwrap();
        let beam = optimize_with_config(
            &base,
            &tech,
            spec.frequency,
            &StaCache::new(),
            &DseConfig::with_beam_width(2),
        )
        .unwrap();
        assert!(
            beam.fmax.value() >= spec.frequency.value(),
            "{}: beam missed the target ({} < {})",
            spec.version_name(),
            beam.fmax,
            spec.frequency
        );
        assert!(
            beam.trace.len() <= greedy.trace.len(),
            "{}: beam used more steps ({} vs {})",
            spec.version_name(),
            beam.trace.len(),
            greedy.trace.len()
        );
        // The plan it found still replays deterministically.
        let replayed = gpuplanner::apply_plan(&base, &beam.plan).unwrap();
        assert_eq!(replayed, beam.design, "{}", spec.version_name());
    }
}
