//! Kill-point resume properties of the sweep campaign: a checkpointed
//! `best_within` sweep whose journal is cut at *any* byte offset —
//! simulating `kill -9` or power loss mid-write — resumes to the same
//! winner byte for byte, never double-runs a recorded point, and
//! compacts its journal into a canonical snapshot on completion.

use ggpu_fault::Rng;
use ggpu_tech::Tech;
use gpuplanner::{GpuPlanner, SweepConfig, SweepError};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ggpu_sweep_resume_{}_{tag}.txt",
        std::process::id()
    ))
}

/// Complete journal lines in a byte prefix (excluding the header):
/// the points a resume must answer without re-planning.
fn surviving_records(bytes: &[u8]) -> usize {
    let text = String::from_utf8_lossy(bytes);
    let mut lines: Vec<&str> = text.split('\n').collect();
    lines.pop(); // the torn fragment (or the empty tail after a '\n')
    lines.iter().filter(|l| l.starts_with("p ")).count()
}

#[test]
fn sweep_resumes_byte_identically_from_any_truncation_offset() {
    let planner = GpuPlanner::new(Tech::l65());
    let plain = planner
        .best_within_with_threads(5.0, 100.0, 2)
        .unwrap()
        .expect("a 1-CU version fits 5 mm2");

    let path = scratch("full");
    let _ = std::fs::remove_file(&path);
    let cfg = SweepConfig::budgets(5.0, 100.0)
        .with_threads(2)
        .with_checkpoint(&path);
    let full = planner.sweep(&cfg).expect("checkpointed sweep");
    assert_eq!(full.evaluated, 24);
    assert_eq!(full.resumed, 0);
    let winner = full.winner.as_ref().expect("same ceilings, same winner");
    assert_eq!(winner, &plain, "journaling must not change the winner");

    // Completion compacted the journal: header + one canonical record
    // per point, sorted.
    let journal = std::fs::read(&path).expect("journal bytes");
    let text = String::from_utf8(journal.clone()).expect("utf8 journal");
    let records: Vec<&str> = text.lines().skip(1).collect();
    assert_eq!(records.len(), 24, "one record per grid point:\n{text}");
    for (i, line) in records.iter().enumerate() {
        assert!(line.starts_with(&format!("p {i} ")), "sorted: `{line}`");
    }

    // A resume of the completed campaign re-plans nothing.
    let warm = planner.sweep(&cfg).expect("warm resume");
    assert_eq!(warm.evaluated, 0);
    assert_eq!(warm.resumed, 24);
    assert_eq!(warm.winner.as_ref(), Some(winner));
    assert_eq!(warm.render(), full.render());

    // Kill points across the whole byte range: inside the header, on
    // record boundaries, mid-record. Every resume must (a) answer the
    // surviving records from the journal — no double-runs — and
    // (b) reduce to the byte-identical winner and report.
    let mut rng = Rng::for_trial(0x51EE_9001, 0);
    let mut offsets: Vec<usize> = (0..8)
        .map(|_| (rng.next_u64() % journal.len() as u64) as usize)
        .collect();
    offsets.push(0);
    offsets.push(journal.len() - 1);
    for off in offsets {
        std::fs::write(&path, &journal[..off]).expect("truncate");
        let survivors = surviving_records(&journal[..off]);
        let resumed = planner
            .sweep(&cfg)
            .unwrap_or_else(|e| panic!("resume from offset {off} failed: {e}"));
        assert_eq!(resumed.resumed, survivors, "offset {off} double-ran points");
        assert_eq!(resumed.evaluated, 24 - survivors, "offset {off}");
        assert_eq!(
            resumed.winner.as_ref(),
            Some(winner),
            "offset {off} changed the winner"
        );
        assert_eq!(resumed.render(), full.render(), "offset {off}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_budget_sweeps_record_structured_skips_and_resume_without_rework() {
    let planner = GpuPlanner::new(Tech::l65());
    let path = scratch("budget");
    let _ = std::fs::remove_file(&path);
    let cfg = SweepConfig::budgets(100.0, 100.0)
        .with_threads(2)
        .with_checkpoint(&path)
        .with_candidate_budget(Duration::ZERO);
    let first = planner.sweep(&cfg).expect("budgeted sweep");
    // Every reachable point overruns a zero budget: no winner, 24
    // structured skips, all journaled.
    assert!(first.winner.is_none());
    assert_eq!(first.skips.len() + first.unreachable, 24);
    assert!(!first.skips.is_empty());
    assert!(first.render().contains("budget skips:"));

    // Resume replays the recorded skips — nothing is re-planned, and
    // the recorded wall-clocks survive verbatim.
    let resumed = planner.sweep(&cfg).expect("budget resume");
    assert_eq!(resumed.evaluated, 0);
    assert_eq!(resumed.resumed, 24);
    assert_eq!(resumed.skips, first.skips);
    assert_eq!(resumed.render(), first.render());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn foreign_headers_and_corrupt_records_are_refused() {
    let planner = GpuPlanner::new(Tech::l65());
    let cfg_a = SweepConfig::budgets(5.0, 100.0).with_threads(2);
    let header_a = {
        // Render the exact header by writing an empty campaign file
        // through a fresh journal open.
        let path = scratch("header");
        let _ = std::fs::remove_file(&path);
        let mismatched = cfg_a.clone().with_checkpoint(&path);
        // Complete sweep to materialize the header...
        planner.sweep(&mismatched).expect("seed sweep");
        let text = std::fs::read_to_string(&path).expect("journal");
        let _ = std::fs::remove_file(&path);
        text.lines().next().expect("header").to_string()
    };

    // A complete header from different ceilings is a checkpoint
    // mismatch, not an I/O error and not a silent restart.
    let path = scratch("foreign");
    std::fs::write(&path, format!("{header_a}\n")).expect("write foreign journal");
    let other = SweepConfig::budgets(6.0, 100.0)
        .with_threads(2)
        .with_checkpoint(&path);
    match planner.sweep(&other) {
        Err(SweepError::Checkpoint(msg)) => {
            assert!(msg.contains("header"), "{msg}")
        }
        other => panic!("expected a checkpoint mismatch, got {other:?}"),
    }

    // A matching header followed by garbage is refused too.
    std::fs::write(&path, format!("{header_a}\ntotal garbage\n")).expect("write corrupt journal");
    let same = SweepConfig::budgets(5.0, 100.0)
        .with_threads(2)
        .with_checkpoint(&path);
    match planner.sweep(&same) {
        Err(SweepError::Checkpoint(msg)) => {
            assert!(msg.contains("malformed"), "{msg}")
        }
        other => panic!("expected a corrupt-record refusal, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
