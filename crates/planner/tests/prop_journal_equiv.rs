//! Equivalence and revert-fidelity properties of the transactional
//! transform engine.
//!
//! The journal path (`TransformJournal` rebase over one copy-on-write
//! design) must be observationally *bit-identical* to the retained
//! clone-and-replay reference (`apply_plan_clone_dirty` /
//! `optimize_for_clone`): same designs, same Verilog bytes, same
//! advisory dirty sets, same `TimingReport`s down to slack bit
//! patterns. And every revert must restore the design exactly —
//! structural fingerprint, per-module fingerprints and exported
//! Verilog included — because the incremental STA engine keys on that
//! content.

mod common;

use common::{random_design, random_plan};
use ggpu_netlist::{to_structural_verilog, Design};
use ggpu_prop::{cases, Rng};
use ggpu_sta::analyze;
use ggpu_tech::sram::MIN_WORDS;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{apply_plan_clone_dirty, apply_plan_dirty, Action, StaCache, TransformJournal};

/// Every per-module fingerprint of `d`, in arena order.
fn module_fps(d: &Design) -> Vec<u64> {
    d.module_ids().map(|id| d.module_fingerprint(id)).collect()
}

/// A random action valid against the *current* state of `design`
/// (macros may already be division parts).
fn random_action(rng: &mut Rng, design: &Design) -> Option<Action> {
    let mut candidates = Vec::new();
    for id in design.module_ids() {
        let module = design.module(id);
        for mac in &module.macros {
            if mac.config.words / 2 >= MIN_WORDS && mac.config.words % 2 == 0 {
                candidates.push(Action::Divide {
                    module: module.name.clone(),
                    macro_name: mac.name.clone(),
                    factor: 2,
                    axis: ggpu_synth::DivideAxis::Words,
                });
            }
        }
        for path in &module.paths {
            if path.depth() >= 2 {
                candidates.push(Action::Pipeline {
                    module: module.name.clone(),
                    path: path.name.clone(),
                });
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let idx = rng.usize_in(0, candidates.len() - 1);
    Some(candidates.swap_remove(idx))
}

#[test]
fn random_plans_journal_vs_clone_are_bit_identical() {
    let tech = Tech::l65();
    cases(48, |rng| {
        let base = random_design(rng);
        let plan = random_plan(rng, &base);
        let clock = Mhz::new(rng.f64_in(200.0, 900.0));

        let (journal, dirty_j) = apply_plan_dirty(&base, &plan).expect("journal applies");
        let (clone, dirty_c) = apply_plan_clone_dirty(&base, &plan).expect("clone applies");

        // Designs, dirty sets, fingerprints and exported Verilog all
        // agree byte-for-byte.
        assert_eq!(journal, clone, "designs diverge");
        assert_eq!(dirty_j, dirty_c, "dirty sets diverge");
        assert_eq!(
            journal.structural_fingerprint(),
            clone.structural_fingerprint()
        );
        assert_eq!(module_fps(&journal), module_fps(&clone));
        assert_eq!(
            to_structural_verilog(&journal),
            to_structural_verilog(&clone),
            "verilog diverges"
        );

        // The journal's dirty set feeds analyze_delta directly; the
        // result must match a from-scratch analysis of the clone-path
        // design down to slack bit patterns and report order, with no
        // undeclared mutations.
        let cache = StaCache::new();
        cache.analyze(&base, &tech, clock).expect("baseline times");
        let incremental = cache
            .analyze_delta(&journal, &tech, clock, &dirty_j)
            .expect("delta times");
        let full = analyze(&clone, &tech, clock).expect("full times");
        assert_eq!(incremental, full, "reports diverge");
        for (a, b) in incremental.paths().iter().zip(full.paths()) {
            assert_eq!(
                a.slack.value().to_bits(),
                b.slack.value().to_bits(),
                "slack bits diverge on {}::{}",
                a.module,
                a.path
            );
        }
        assert_eq!(cache.engine_stats().undeclared_dirty, 0);

        let f_inc = cache.max_frequency(&journal, &tech).expect("fmax");
        let f_full = ggpu_sta::max_frequency(&clone, &tech).expect("fmax");
        match (f_inc, f_full) {
            (Some(a), Some(b)) => assert_eq!(a.value().to_bits(), b.value().to_bits()),
            (a, b) => assert_eq!(a, b),
        }
    });
}

#[test]
fn random_apply_revert_walks_restore_snapshots_bit_identically() {
    cases(48, |rng| {
        let base = random_design(rng);
        let mut journal = TransformJournal::new(&base);
        // `snaps[i]` is the design state at journal depth i; deep
        // clones, so they cannot share (and thus mask) CoW state with
        // the journal's working design.
        let mut snaps: Vec<Design> = vec![base.deep_clone()];

        for _ in 0..rng.usize_in(4, 12) {
            if rng.chance(0.35) && !journal.is_empty() {
                journal.revert_last().expect("non-empty journal");
                snaps.pop();
                let want = snaps.last().expect("base snapshot remains");
                assert_eq!(journal.design(), want, "revert diverges from snapshot");
                assert_eq!(
                    journal.design().structural_fingerprint(),
                    want.structural_fingerprint()
                );
            } else if let Some(action) = random_action(rng, journal.design()) {
                if journal.apply(&action).is_ok() {
                    snaps.push(journal.design().deep_clone());
                }
            }
            assert_eq!(journal.len() + 1, snaps.len());
        }

        // Occasionally exercise a named checkpoint + rollback range.
        if rng.chance(0.5) {
            let depth = journal.len();
            let cp = journal.checkpoint("walk");
            for _ in 0..rng.usize_in(1, 3) {
                if let Some(action) = random_action(rng, journal.design()) {
                    let _ = journal.apply(&action);
                }
            }
            journal.rollback_to(&cp);
            assert_eq!(journal.len(), depth);
            assert_eq!(journal.design(), snaps.last().expect("snapshot"));
        }

        // Full unwind: apply* -> revert* restores the base design
        // bit-identically (S4's revert-fidelity property).
        while journal.revert_last().is_some() {}
        assert_eq!(journal.design(), &base);
        assert_eq!(
            journal.design().structural_fingerprint(),
            base.structural_fingerprint()
        );
        assert_eq!(module_fps(journal.design()), module_fps(&base));
        assert_eq!(
            to_structural_verilog(journal.design()),
            to_structural_verilog(&base)
        );
    });
}

#[test]
fn random_rebase_chains_match_fresh_replay() {
    // The greedy loop's actual access pattern: a chain of related
    // plans (factors double, pipelines append) rebased through one
    // journal, each compared against a fresh clone-path replay.
    cases(24, |rng| {
        let base = random_design(rng);
        let mut journal = TransformJournal::new(&base);
        let mut plan = gpuplanner::OptimizationPlan::default();
        for _ in 0..rng.usize_in(2, 5) {
            // Mutate the plan the way the DSE does.
            if rng.chance(0.6) {
                let keys: Vec<_> = {
                    let mut found = Vec::new();
                    for id in base.module_ids() {
                        let m = base.module(id);
                        for mac in &m.macros {
                            found.push((m.name.clone(), mac.name.clone(), mac.config.words));
                        }
                    }
                    found
                };
                if keys.is_empty() {
                    continue;
                }
                let (module, mac, words) = keys[rng.usize_in(0, keys.len() - 1)].clone();
                let entry = plan.divisions.entry((module, mac)).or_insert(1);
                if words / (*entry * 2) >= MIN_WORDS {
                    *entry *= 2;
                }
                plan.divisions.retain(|_, f| *f >= 2);
            } else {
                for id in base.module_ids() {
                    let m = base.module(id);
                    let key = (m.name.clone(), "logic".to_string());
                    // A second insertion on the same path would fail:
                    // the split renames it to `logic__p0`/`__p1`.
                    if m.paths.iter().any(|p| p.name == "logic")
                        && !plan.pipelines.contains(&key)
                        && rng.chance(0.5)
                    {
                        plan.pipelines.push(key);
                        break;
                    }
                }
            }
            let dirty = journal.rebase(&plan).expect("rebase applies");
            let (replay, _) = apply_plan_clone_dirty(&base, &plan).expect("replay applies");
            assert_eq!(journal.design(), &replay, "rebase diverges from replay");
            assert_eq!(
                to_structural_verilog(journal.design()),
                to_structural_verilog(&replay)
            );
            // Dirty modules are a subset of the arena and sorted.
            assert!(dirty.windows(2).all(|w| w[0] < w[1]));
        }
    });
}
