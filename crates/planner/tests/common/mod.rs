//! Shared generators for the planner's property suites.

use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_prop::Rng;
use ggpu_tech::sram::{SramConfig, MIN_WORDS};
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::Ns;
use gpuplanner::OptimizationPlan;

/// A random multi-module design whose macros are all divisible and
/// whose paths are all deep enough to pipeline, so any generated plan
/// applies cleanly.
pub fn random_design(rng: &mut Rng) -> Design {
    let mut d = Design::new("rand");
    let n_modules = rng.usize_in(1, 3);
    let mut children = Vec::new();
    for mi in 0..n_modules {
        let mut m = Module::new(format!("mod{mi}"));
        let n_macros = rng.usize_in(1, 2);
        for xi in 0..n_macros {
            let words = 1u32 << rng.u32_in(8, 12); // 256..=4096
            let bits = 1u32 << rng.u32_in(3, 6); // 8..=64
            let config = if rng.chance(0.5) {
                SramConfig::dual(words, bits)
            } else {
                SramConfig::single(words, bits)
            };
            m.macros.push(MacroInst::new(
                format!("ram{xi}"),
                config,
                MemoryRole::Other,
                0.5,
            ));
            let mut p = TimingPath::new(
                format!("read{xi}"),
                PathEndpoint::Macro(format!("ram{xi}")),
                PathEndpoint::Register,
                LogicStage::chain(CellClass::Nand2, rng.usize_in(2, 8), rng.u32_in(1, 4)),
            );
            if rng.chance(0.3) {
                p.route_delay = Ns::new(rng.f64_in(0.0, 0.4));
            }
            m.paths.push(p);
        }
        m.paths.push(TimingPath::new(
            "logic",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::FullAdder, rng.usize_in(2, 10), rng.u32_in(1, 3)),
        ));
        children.push(d.add_module(m));
    }
    // A top that instantiates every module, so the flow lints (which
    // walk the instance tree) see all of them.
    let mut top = Module::new("top");
    for (i, id) in children.iter().enumerate() {
        top.children.push(ggpu_netlist::module::Instance {
            name: format!("u{i}"),
            module: *id,
        });
    }
    let top = d.add_module(top);
    d.set_top(top);
    d
}

/// A random plan valid against [`random_design`]'s shape.
pub fn random_plan(rng: &mut Rng, design: &Design) -> OptimizationPlan {
    let mut plan = OptimizationPlan::default();
    for id in design.module_ids() {
        let module = design.module(id);
        for mac in &module.macros {
            if rng.chance(0.5) {
                let mut factor = 1u32 << rng.u32_in(1, 3); // 2, 4, 8
                while mac.config.words / factor < MIN_WORDS {
                    factor /= 2;
                }
                if factor >= 2 {
                    plan.divisions
                        .insert((module.name.clone(), mac.name.clone()), factor);
                }
            }
        }
        if rng.chance(0.4) && module.paths.iter().any(|p| p.name == "logic") {
            plan.pipelines.push((module.name.clone(), "logic".into()));
        }
    }
    plan
}
