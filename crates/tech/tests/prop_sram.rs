//! Property tests of the SRAM memory-compiler model: the monotonicity
//! invariants GPUPlanner's exploration depends on must hold across
//! the whole geometry space, not just the calibrated points.

use ggpu_tech::sram::{CompileSramError, MemoryCompiler, PortKind, SramConfig};
use proptest::prelude::*;

fn arb_words() -> impl Strategy<Value = u32> {
    (4u32..=16).prop_map(|p| 1 << p) // 16..=65536, power of two
}

fn arb_bits() -> impl Strategy<Value = u32> {
    2u32..=144
}

fn arb_ports() -> impl Strategy<Value = PortKind> {
    prop_oneof![Just(PortKind::Single), Just(PortKind::Dual)]
}

proptest! {
    #[test]
    fn every_in_range_geometry_compiles(words in arb_words(), bits in arb_bits(), ports in arb_ports()) {
        let m = MemoryCompiler::l65lp()
            .compile(SramConfig { words, bits, ports })
            .expect("in-range geometry");
        prop_assert!(m.area.value() > 0.0);
        prop_assert!(m.access_time.value() > 0.0);
        prop_assert!(m.cycle_time >= m.access_time);
        prop_assert!(m.leakage.value() > 0.0);
        prop_assert!(m.read_energy.value() > 0.0);
        // Footprint is consistent with the reported area.
        let bbox = m.width.value() * m.height.value();
        prop_assert!((bbox - m.area.value()).abs() / m.area.value() < 1e-6);
    }

    #[test]
    fn more_words_is_bigger_and_slower(words in (4u32..=15).prop_map(|p| 1 << p), bits in arb_bits(), ports in arb_ports()) {
        let c = MemoryCompiler::l65lp();
        let small = c.compile(SramConfig { words, bits, ports }).expect("in range");
        let big = c.compile(SramConfig { words: words * 2, bits, ports }).expect("in range");
        prop_assert!(big.area > small.area);
        prop_assert!(big.access_time > small.access_time);
        prop_assert!(big.leakage > small.leakage);
    }

    #[test]
    fn division_always_trades_area_for_speed(words in (5u32..=16).prop_map(|p| 1 << p), bits in arb_bits(), ports in arb_ports()) {
        let c = MemoryCompiler::l65lp();
        let cfg = SramConfig { words, bits, ports };
        let whole = c.compile(cfg).expect("in range");
        let parts = cfg.split_words(2).expect("even split stays in range");
        let part = c.compile(parts[0]).expect("in range");
        prop_assert!(part.access_time < whole.access_time, "division must speed access");
        prop_assert!(
            2.0 * part.area.value() > whole.area.value(),
            "division must cost area"
        );
        // Capacity is preserved.
        let cap: u64 = parts.iter().map(|p| p.capacity_bits()).sum();
        prop_assert_eq!(cap, cfg.capacity_bits());
    }

    #[test]
    fn out_of_range_is_rejected_not_mischaracterized(words in prop_oneof![0u32..16, 65_537u32..200_000], bits in arb_bits()) {
        let r = MemoryCompiler::l65lp().compile(SramConfig::dual(words, bits));
        prop_assert_eq!(r.unwrap_err(), CompileSramError::WordsOutOfRange(words));
    }

    #[test]
    fn bit_split_roundtrip(words in arb_words(), halves in 1u32..=3) {
        let bits = 48u32;
        let n = 1 << halves; // 2, 4, 8
        let cfg = SramConfig::dual(words, bits);
        let parts = cfg.split_bits(n).expect("48 divides by 2,4,8");
        prop_assert_eq!(parts.len(), n as usize);
        let cap: u64 = parts.iter().map(|p| p.capacity_bits()).sum();
        prop_assert_eq!(cap, cfg.capacity_bits());
    }
}
