//! Property tests of the SRAM memory-compiler model: the monotonicity
//! invariants GPUPlanner's exploration depends on must hold across
//! the whole geometry space, not just the calibrated points.

use ggpu_prop::{cases, Rng};
use ggpu_tech::sram::{CompileSramError, MemoryCompiler, PortKind, SramConfig};

fn arb_words(rng: &mut Rng) -> u32 {
    1 << rng.u32_in(4, 16) // 16..=65536, power of two
}

fn arb_bits(rng: &mut Rng) -> u32 {
    rng.u32_in(2, 144)
}

fn arb_ports(rng: &mut Rng) -> PortKind {
    rng.pick_copy(&[PortKind::Single, PortKind::Dual])
}

#[test]
fn every_in_range_geometry_compiles() {
    cases(256, |rng| {
        let (words, bits, ports) = (arb_words(rng), arb_bits(rng), arb_ports(rng));
        let m = MemoryCompiler::l65lp()
            .compile(SramConfig { words, bits, ports })
            .expect("in-range geometry");
        assert!(m.area.value() > 0.0);
        assert!(m.access_time.value() > 0.0);
        assert!(m.cycle_time >= m.access_time);
        assert!(m.leakage.value() > 0.0);
        assert!(m.read_energy.value() > 0.0);
        // Footprint is consistent with the reported area.
        let bbox = m.width.value() * m.height.value();
        assert!((bbox - m.area.value()).abs() / m.area.value() < 1e-6);
    });
}

#[test]
fn more_words_is_bigger_and_slower() {
    cases(256, |rng| {
        let words = 1 << rng.u32_in(4, 15);
        let (bits, ports) = (arb_bits(rng), arb_ports(rng));
        let c = MemoryCompiler::l65lp();
        let small = c
            .compile(SramConfig { words, bits, ports })
            .expect("in range");
        let big = c
            .compile(SramConfig {
                words: words * 2,
                bits,
                ports,
            })
            .expect("in range");
        assert!(big.area > small.area);
        assert!(big.access_time > small.access_time);
        assert!(big.leakage > small.leakage);
    });
}

#[test]
fn division_always_trades_area_for_speed() {
    cases(256, |rng| {
        let words = 1 << rng.u32_in(5, 16);
        let (bits, ports) = (arb_bits(rng), arb_ports(rng));
        let c = MemoryCompiler::l65lp();
        let cfg = SramConfig { words, bits, ports };
        let whole = c.compile(cfg).expect("in range");
        let parts = cfg.split_words(2).expect("even split stays in range");
        let part = c.compile(parts[0]).expect("in range");
        assert!(
            part.access_time < whole.access_time,
            "division must speed access"
        );
        assert!(
            2.0 * part.area.value() > whole.area.value(),
            "division must cost area"
        );
        // Capacity is preserved.
        let cap: u64 = parts.iter().map(|p| p.capacity_bits()).sum();
        assert_eq!(cap, cfg.capacity_bits());
    });
}

#[test]
fn out_of_range_is_rejected_not_mischaracterized() {
    cases(256, |rng| {
        let words = if rng.chance(0.5) {
            rng.u32_in(0, 15)
        } else {
            rng.u32_in(65_537, 199_999)
        };
        let bits = arb_bits(rng);
        let r = MemoryCompiler::l65lp().compile(SramConfig::dual(words, bits));
        assert_eq!(r.unwrap_err(), CompileSramError::WordsOutOfRange(words));
    });
}

#[test]
fn bit_split_roundtrip() {
    cases(128, |rng| {
        let words = arb_words(rng);
        let halves = rng.u32_in(1, 3);
        let bits = 48u32;
        let n = 1 << halves; // 2, 4, 8
        let cfg = SramConfig::dual(words, bits);
        let parts = cfg.split_bits(n).expect("48 divides by 2,4,8");
        assert_eq!(parts.len(), n as usize);
        let cap: u64 = parts.iter().map(|p| p.capacity_bits()).sum();
        assert_eq!(cap, cfg.capacity_bits());
    });
}
