//! Operating corners.
//!
//! Sign-off flows time the design at a slow corner and check power at
//! a fast one; GPUPlanner's map is corner-relative (the paper: results
//! "depend mainly on the performance of the memories and of the
//! standard cells"). [`Corner::apply`] derates a [`crate::Tech`]
//! bundle with factors typical of a 65 nm LP process spread.

use crate::sram::{MemoryCompiler, SramParams};
use crate::stdcell::{CellSpec, StdCellLibrary};
use crate::Tech;
use std::fmt;

/// A process/voltage/temperature corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Slow process, low voltage, high temperature — timing sign-off.
    SlowCold,
    /// Nominal.
    Typical,
    /// Fast process, high voltage — leakage/power sign-off.
    FastHot,
}

impl Corner {
    /// Multiplier on every cell and memory delay.
    pub fn delay_factor(self) -> f64 {
        match self {
            Corner::SlowCold => 1.18,
            Corner::Typical => 1.0,
            Corner::FastHot => 0.87,
        }
    }

    /// Multiplier on static leakage.
    pub fn leakage_factor(self) -> f64 {
        match self {
            Corner::SlowCold => 0.55,
            Corner::Typical => 1.0,
            Corner::FastHot => 2.4,
        }
    }

    /// Multiplier on switching energy (voltage squared).
    pub fn energy_factor(self) -> f64 {
        match self {
            Corner::SlowCold => 0.85,
            Corner::Typical => 1.0,
            Corner::FastHot => 1.21,
        }
    }

    /// Derates a technology bundle to this corner.
    pub fn apply(self, tech: &Tech) -> Tech {
        let df = self.delay_factor();
        let lf = self.leakage_factor();
        let ef = self.energy_factor();

        let cells: Vec<CellSpec> = tech
            .library
            .iter()
            .map(|spec| CellSpec {
                intrinsic_delay: spec.intrinsic_delay * df,
                drive_res: spec.drive_res * df,
                setup: spec.setup * df,
                leakage: spec.leakage * lf,
                switch_energy: spec.switch_energy * ef,
                ..*spec
            })
            .collect();
        let library = StdCellLibrary::new(format!("{}_{self}", tech.library.name()), cells);

        let p = *tech.memory_compiler.params();
        let memory_compiler = MemoryCompiler::new(SramParams {
            t_fixed: p.t_fixed * df,
            t_word: p.t_word * df,
            t_bit: p.t_bit * df,
            leak_fixed: p.leak_fixed * lf,
            leak_per_kbit: p.leak_per_kbit * lf,
            e_fixed: p.e_fixed * ef,
            e_bit_word: p.e_bit_word * ef,
            ..p
        });

        Tech {
            library,
            memory_compiler,
            metal_stack: tech.metal_stack.clone(),
            wire_load: tech.wire_load,
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corner::SlowCold => f.write_str("ss"),
            Corner::Typical => f.write_str("tt"),
            Corner::FastHot => f.write_str("ff"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramConfig;
    use crate::stdcell::CellClass;

    #[test]
    fn slow_corner_is_slower_everywhere() {
        let tt = Tech::l65();
        let ss = Corner::SlowCold.apply(&tt);
        assert!(ss.library.fo4_delay() > tt.library.fo4_delay());
        let cfg = SramConfig::dual(2048, 32);
        let m_tt = tt.memory_compiler.compile(cfg).unwrap();
        let m_ss = ss.memory_compiler.compile(cfg).unwrap();
        assert!(m_ss.access_time > m_tt.access_time);
        // Area does not change across corners.
        assert_eq!(m_ss.area, m_tt.area);
    }

    #[test]
    fn fast_corner_leaks_more() {
        let tt = Tech::l65();
        let ff = Corner::FastHot.apply(&tt);
        let dff_tt = tt.library.cell(CellClass::Dff);
        let dff_ff = ff.library.cell(CellClass::Dff);
        assert!(dff_ff.leakage > dff_tt.leakage);
        assert!(dff_ff.intrinsic_delay < dff_tt.intrinsic_delay);
    }

    #[test]
    fn typical_is_identity_on_delays() {
        let tt = Tech::l65();
        let tt2 = Corner::Typical.apply(&tt);
        assert_eq!(
            tt.library.cell(CellClass::Nand2).intrinsic_delay,
            tt2.library.cell(CellClass::Nand2).intrinsic_delay
        );
    }

    #[test]
    fn corner_names() {
        assert_eq!(Corner::SlowCold.to_string(), "ss");
        assert_eq!(Corner::Typical.to_string(), "tt");
        assert_eq!(Corner::FastHot.to_string(), "ff");
    }
}
