//! Synthetic 65 nm-class technology substrate for the G-GPU
//! reproduction.
//!
//! The paper's GPUPlanner flow targets a commercial 65 nm CMOS process:
//! a standard-cell library, an SRAM memory compiler (16–65536 words,
//! 2–144 bits, single/dual port) and a nine-layer metal stack with
//! M1/M8/M9 reserved for power. None of those artifacts can be
//! redistributed, so this crate provides calibrated parametric models
//! that preserve the *relationships* the design-space exploration
//! depends on — memory access time vs. size, division cost, buffered
//! wire delay — as argued in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use ggpu_tech::Tech;
//! use ggpu_tech::sram::SramConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Tech::l65();
//! let macro_ = tech.memory_compiler.compile(SramConfig::dual(2048, 32))?;
//! println!("access time: {:.3}", macro_.access_time);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod corner;
pub mod metal;
pub mod sram;
pub mod stdcell;
pub mod units;
pub mod wireload;

pub use corner::Corner;

use metal::MetalStack;
use sram::MemoryCompiler;
use stdcell::StdCellLibrary;
use wireload::WireLoadModel;

/// Bundle of all technology views needed by the flow.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Tech {
    /// The standard-cell library.
    pub library: StdCellLibrary,
    /// The SRAM memory compiler.
    pub memory_compiler: MemoryCompiler,
    /// The metal stack.
    pub metal_stack: MetalStack,
    /// Pre-layout wire-load model.
    pub wire_load: WireLoadModel,
}

impl Tech {
    /// The synthetic 65 nm low-power technology used throughout the
    /// reproduction.
    pub fn l65() -> Self {
        Self {
            library: StdCellLibrary::l65lp(),
            memory_compiler: MemoryCompiler::l65lp(),
            metal_stack: MetalStack::l65(),
            wire_load: WireLoadModel::l65(),
        }
    }

    /// A 64-bit structural fingerprint of the full technology bundle.
    ///
    /// Two technologies fingerprint equal iff every model constant's
    /// bit pattern agrees. Deterministic across processes (the hasher
    /// is keyed with fixed constants), so fingerprints are safe to use
    /// as content-addressed cache keys and to persist in benchmark
    /// artifacts.
    pub fn structural_fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::l65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_is_consistent() {
        let tech = Tech::l65();
        assert_eq!(tech.library.name(), "l65lp");
        assert_eq!(tech.metal_stack.len(), 9);
    }
}
