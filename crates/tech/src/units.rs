//! Strongly-typed physical quantities used throughout the flow.
//!
//! All quantities wrap `f64` and carry their unit in the type so that a
//! delay can never be accidentally added to an area
//! ([C-NEWTYPE](https://rust-lang.github.io/api-guidelines/type-safety.html)).
//!
//! ```
//! use ggpu_tech::units::{Mhz, Ns};
//!
//! let clk = Mhz::new(500.0);
//! assert_eq!(clk.period(), Ns::new(2.0));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Declares an `f64` newtype with arithmetic, ordering and display.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw `f64` value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        /// Structural hash over the IEEE-754 bit pattern.
        ///
        /// Used by the flow's content-addressed caches (design
        /// fingerprints, memoized STA). Two values hash equal iff their
        /// bit patterns agree, which is *stricter* than `PartialEq`
        /// (`0.0 == -0.0` but they hash differently; `NaN != NaN` but
        /// equal-bit NaNs hash equally). Cache keys only ever compare
        /// fingerprints for bit-identity, so the stricter relation is
        /// safe: it can at worst miss a cache hit, never alias two
        /// distinct values.
        impl std::hash::Hash for $name {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                state.write_u64(self.0.to_bits());
            }
        }
    };
}

quantity!(
    /// A time interval in nanoseconds.
    Ns,
    "ns"
);
quantity!(
    /// A clock frequency in megahertz.
    Mhz,
    "MHz"
);
quantity!(
    /// A length in micrometres (layout distances, wirelength).
    Um,
    "um"
);
quantity!(
    /// An area in square micrometres.
    Um2,
    "um^2"
);
quantity!(
    /// Power in milliwatts.
    MilliWatts,
    "mW"
);
quantity!(
    /// Power in nanowatts (per-cell leakage).
    NanoWatts,
    "nW"
);
quantity!(
    /// Energy in picojoules (per-event switching energy).
    PicoJoules,
    "pJ"
);
quantity!(
    /// Capacitance in femtofarads.
    FemtoFarads,
    "fF"
);
quantity!(
    /// Resistance in kilo-ohms.
    KiloOhms,
    "kOhm"
);

impl Mhz {
    /// Clock period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    pub fn period(self) -> Ns {
        assert!(self.0 > 0.0, "frequency must be positive, got {self}");
        Ns::new(1000.0 / self.0)
    }
}

impl Ns {
    /// Frequency whose period is this interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero or negative.
    pub fn frequency(self) -> Mhz {
        assert!(self.0 > 0.0, "period must be positive, got {self}");
        Mhz::new(1000.0 / self.0)
    }
}

impl Um2 {
    /// Converts to square millimetres (the unit used in the paper's
    /// Table I).
    pub fn to_mm2(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Constructs an area from square millimetres.
    pub fn from_mm2(mm2: f64) -> Self {
        Self(mm2 * 1.0e6)
    }
}

impl Um {
    /// Converts to millimetres.
    pub fn to_mm(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Mul<Um> for Um {
    type Output = Um2;
    fn mul(self, rhs: Um) -> Um2 {
        Um2::new(self.0 * rhs.0)
    }
}

/// RC product: resistance times capacitance gives a delay.
///
/// 1 kOhm * 1 fF = 1e3 * 1e-15 s = 1e-12 s = 1e-3 ns.
impl Mul<FemtoFarads> for KiloOhms {
    type Output = Ns;
    fn mul(self, rhs: FemtoFarads) -> Ns {
        Ns::new(self.0 * rhs.0 * 1.0e-3)
    }
}

impl Mul<KiloOhms> for FemtoFarads {
    type Output = Ns;
    fn mul(self, rhs: KiloOhms) -> Ns {
        rhs * self
    }
}

impl NanoWatts {
    /// Converts to milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(self.0 * 1.0e-6)
    }
}

impl MilliWatts {
    /// Converts to watts (the unit of the paper's dynamic-power column).
    pub fn to_watts(self) -> f64 {
        self.0 / 1000.0
    }
}

impl PicoJoules {
    /// Power dissipated when this energy is spent once per cycle of the
    /// given clock: 1 pJ * 1 MHz = 1e-12 J * 1e6 / s = 1e-6 W = 1e-3 mW.
    pub fn at_rate(self, clock: Mhz) -> MilliWatts {
        MilliWatts::new(self.0 * clock.value() * 1.0e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_500mhz_is_2ns() {
        assert!((Mhz::new(500.0).period().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_of_1_5ns_is_667mhz() {
        let f = Ns::new(1.5).frequency();
        assert!((f.value() - 666.666).abs() < 1e-2);
    }

    #[test]
    fn period_roundtrip() {
        let f = Mhz::new(590.0);
        let back = f.period().frequency();
        assert!((back.value() - f.value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn period_of_zero_panics() {
        let _ = Mhz::new(0.0).period();
    }

    #[test]
    fn arithmetic_works() {
        let a = Ns::new(1.0) + Ns::new(0.5);
        assert_eq!(a, Ns::new(1.5));
        let b = a - Ns::new(0.25);
        assert_eq!(b, Ns::new(1.25));
        assert_eq!(b * 2.0, Ns::new(2.5));
        assert_eq!(2.0 * b, Ns::new(2.5));
        assert_eq!(b / 2.0, Ns::new(0.625));
        assert_eq!(Ns::new(3.0) / Ns::new(1.5), 2.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Ns = [Ns::new(0.1), Ns::new(0.2), Ns::new(0.3)].into_iter().sum();
        assert!((total.value() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rc_product_is_delay() {
        // 1 kOhm driving 100 fF is a 0.1 ns RC constant.
        let d = KiloOhms::new(1.0) * FemtoFarads::new(100.0);
        assert!((d.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn area_conversions() {
        assert!((Um2::from_mm2(4.19).to_mm2() - 4.19).abs() < 1e-12);
        let a = Um::new(2000.0) * Um::new(500.0);
        assert!((a.to_mm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_at_rate() {
        // 2 pJ at 500 MHz = 1 mW.
        let p = PicoJoules::new(2.0).at_rate(Mhz::new(500.0));
        assert!((p.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nanowatt_conversion() {
        let mw = NanoWatts::new(4_620_000.0).to_milliwatts();
        assert!((mw.value() - 4.62).abs() < 1e-12);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Ns::new(1.2345)), "1.23 ns");
        assert_eq!(format!("{}", Mhz::new(500.0)), "500 MHz");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Ns::new(1.0).max(Ns::new(2.0)), Ns::new(2.0));
        assert_eq!(Ns::new(1.0).min(Ns::new(2.0)), Ns::new(1.0));
        assert_eq!(Ns::new(-1.5).abs(), Ns::new(1.5));
    }
}
