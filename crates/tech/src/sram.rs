//! SRAM memory-compiler model.
//!
//! The paper's flow instantiates macros from a commercial 65 nm memory
//! compiler offering single- and dual-port low-power SRAM with
//! 16–65536 words and 2–144-bit words. This module reproduces that
//! interface: [`MemoryCompiler::compile`] turns a [`SramConfig`] into a
//! characterized [`SramMacro`] (area, access time, power, footprint).
//!
//! The model encodes the two facts GPUPlanner's design-space
//! exploration relies on:
//!
//! 1. access time grows with the number of words (and mildly with word
//!    size), so *dividing* a macro produces faster memories;
//! 2. two macros of size `M×N` are larger and leakier than one macro of
//!    size `2M×N`, so division costs area and power.
//!
//! ```
//! use ggpu_tech::sram::{MemoryCompiler, PortKind, SramConfig};
//!
//! # fn main() -> Result<(), ggpu_tech::sram::CompileSramError> {
//! let compiler = MemoryCompiler::l65lp();
//! let big = compiler.compile(SramConfig::dual(2048, 32))?;
//! let half = compiler.compile(SramConfig::dual(1024, 32))?;
//! assert!(half.access_time < big.access_time);
//! assert!(2.0 * half.area.value() > big.area.value());
//! # Ok(())
//! # }
//! ```

use crate::units::{FemtoFarads, Ns, PicoJoules, Um, Um2};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

/// Process-wide count of raw [`MemoryCompiler::compile`] invocations —
/// the number of times the characterization model actually ran, cache
/// hits excluded. Monotone; benchmark harnesses read it before/after a
/// phase and report the delta.
static RAW_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide raw-compile counter (see [`RAW_COMPILES`]).
pub fn raw_compile_count() -> u64 {
    RAW_COMPILES.load(Ordering::Relaxed)
}

/// Number of read/write ports of a macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortKind {
    /// One shared read/write port.
    Single,
    /// Two independent ports (the paper notes most G-GPU memories must
    /// be dual-port).
    Dual,
}

impl PortKind {
    /// Number of ports this kind provides.
    pub fn count(self) -> u32 {
        match self {
            PortKind::Single => 1,
            PortKind::Dual => 2,
        }
    }
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Single => f.write_str("1P"),
            PortKind::Dual => f.write_str("2P"),
        }
    }
}

/// Requested macro geometry: `words` addresses of `bits`-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramConfig {
    /// Number of addressable words (compiler range: 16–65536).
    pub words: u32,
    /// Word size in bits (compiler range: 2–144).
    pub bits: u32,
    /// Port configuration.
    pub ports: PortKind,
}

/// Compiler limits, matching the paper's §III description.
pub const MIN_WORDS: u32 = 16;
/// See [`MIN_WORDS`].
pub const MAX_WORDS: u32 = 65536;
/// See [`MIN_WORDS`].
pub const MIN_BITS: u32 = 2;
/// See [`MIN_WORDS`].
pub const MAX_BITS: u32 = 144;

impl SramConfig {
    /// Convenience constructor for a single-port macro.
    pub fn single(words: u32, bits: u32) -> Self {
        Self {
            words,
            bits,
            ports: PortKind::Single,
        }
    }

    /// Convenience constructor for a dual-port macro.
    pub fn dual(words: u32, bits: u32) -> Self {
        Self {
            words,
            bits,
            ports: PortKind::Dual,
        }
    }

    /// Total storage capacity in bits.
    pub fn capacity_bits(self) -> u64 {
        u64::from(self.words) * u64::from(self.bits)
    }

    /// Checks the geometry against the compiler range.
    pub fn validate(self) -> Result<(), CompileSramError> {
        if !(MIN_WORDS..=MAX_WORDS).contains(&self.words) {
            return Err(CompileSramError::WordsOutOfRange(self.words));
        }
        if !(MIN_BITS..=MAX_BITS).contains(&self.bits) {
            return Err(CompileSramError::BitsOutOfRange(self.bits));
        }
        Ok(())
    }

    /// Splits this macro into `n` macros each holding `words / n`
    /// addresses — the word-direction memory-division transform.
    ///
    /// # Errors
    ///
    /// Fails if `n` does not evenly divide `words`, or if the divided
    /// geometry falls outside the compiler range.
    pub fn split_words(self, n: u32) -> Result<Vec<SramConfig>, CompileSramError> {
        if n == 0 || !self.words.is_multiple_of(n) {
            return Err(CompileSramError::UnevenSplit {
                extent: self.words,
                parts: n,
            });
        }
        let part = SramConfig {
            words: self.words / n,
            ..self
        };
        part.validate()?;
        Ok(vec![part; n as usize])
    }

    /// Splits this macro into `n` macros each holding `bits / n` of
    /// every word — the bit-direction memory-division transform.
    ///
    /// # Errors
    ///
    /// Fails if `n` does not evenly divide `bits`, or if the divided
    /// geometry falls outside the compiler range.
    pub fn split_bits(self, n: u32) -> Result<Vec<SramConfig>, CompileSramError> {
        if n == 0 || !self.bits.is_multiple_of(n) {
            return Err(CompileSramError::UnevenSplit {
                extent: self.bits,
                parts: n,
            });
        }
        let part = SramConfig {
            bits: self.bits / n,
            ..self
        };
        part.validate()?;
        Ok(vec![part; n as usize])
    }

    /// Number of ports of this configuration.
    pub fn port_count(self) -> u32 {
        self.ports.count()
    }

    /// Splits this macro into `banks` word-interleaved banks — the
    /// banking transform's per-bank geometry. Capacity-wise identical
    /// to [`SramConfig::split_words`]; semantically the banks share
    /// the logical word space round-robin (word `w` in bank
    /// `w % banks`) instead of partitioning it into contiguous ranges,
    /// and every bank keeps the parent's port kind, so the *total*
    /// port count of the logical memory grows by the bank factor.
    ///
    /// # Errors
    ///
    /// Fails if `banks` does not evenly divide `words`, or if the
    /// per-bank geometry falls outside the compiler range.
    pub fn banked(self, banks: u32) -> Result<Vec<SramConfig>, CompileSramError> {
        self.split_words(banks)
    }
}

impl fmt::Display for SramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} {}", self.words, self.bits, self.ports)
    }
}

/// Per-word error-protection scheme stored alongside the data bits of
/// a macro.
///
/// The memory compiler itself is protection-agnostic — ECC is "just
/// more columns" — so a protected macro is compiled by widening its
/// word via [`SramConfig::with_ecc`] and the scheme only determines
/// *how many* extra columns are paid for:
///
/// * [`EccScheme::Parity`]: 1 bit per word; detects any odd number of
///   flipped bits, corrects nothing.
/// * [`EccScheme::SecDed`]: extended Hamming; corrects single-bit and
///   detects double-bit errors at a cost of
///   [`secded_check_bits`]` + 1` bits per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum EccScheme {
    /// No protection: flips propagate silently.
    #[default]
    None,
    /// Single even-parity bit per word (detect-only, odd flips).
    Parity,
    /// Extended Hamming SEC-DED per word.
    SecDed,
}

impl EccScheme {
    /// Extra storage bits per `data_bits`-bit word this scheme costs.
    pub fn check_bits(self, data_bits: u32) -> u32 {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => 1,
            EccScheme::SecDed => secded_check_bits(data_bits) + 1,
        }
    }

    /// Short machine-readable name (`none`/`parity`/`secded`).
    pub fn as_str(self) -> &'static str {
        match self {
            EccScheme::None => "none",
            EccScheme::Parity => "parity",
            EccScheme::SecDed => "secded",
        }
    }

    /// Parses the output of [`EccScheme::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(EccScheme::None),
            "parity" => Some(EccScheme::Parity),
            "secded" => Some(EccScheme::SecDed),
            _ => None,
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of Hamming check bits `r` required to single-error-correct a
/// `data_bits`-bit word: the smallest `r` with `2^r >= data_bits + r + 1`.
/// SEC-DED (extended Hamming) adds one further overall-parity bit on
/// top of this.
pub fn secded_check_bits(data_bits: u32) -> u32 {
    let mut r = 1u32;
    while (1u64 << r) < u64::from(data_bits) + u64::from(r) + 1 {
        r += 1;
    }
    r
}

impl SramConfig {
    /// The same geometry widened to store `scheme`'s check bits next to
    /// every data word — how GPUPlanner compiles a protected macro.
    ///
    /// # Errors
    ///
    /// Returns [`CompileSramError::BitsOutOfRange`] if the widened word
    /// exceeds the compiler's 144-bit limit (the caller must divide the
    /// macro in the bit direction first).
    pub fn with_ecc(self, scheme: EccScheme) -> Result<SramConfig, CompileSramError> {
        let widened = SramConfig {
            bits: self.bits + scheme.check_bits(self.bits),
            ..self
        };
        widened.validate()?;
        Ok(widened)
    }
}

/// Total check bits a banked memory pays under `scheme`: every one of
/// the `banks` banks (each shaped like `bank`) stores its own check
/// bits next to every word, so the overhead is
/// `banks x bank.words x check_bits(bank.bits)`. Word-interleaving does
/// not share check bits across banks — each bank must be independently
/// correctable, which is exactly what makes banking and ECC orthogonal
/// knobs for the planner.
pub fn banked_ecc_check_bits(scheme: EccScheme, bank: SramConfig, banks: u32) -> u64 {
    u64::from(banks) * u64::from(bank.words) * u64::from(scheme.check_bits(bank.bits))
}

/// Error returned when a requested geometry cannot be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileSramError {
    /// Word count outside 16–65536.
    WordsOutOfRange(u32),
    /// Word size outside 2–144 bits.
    BitsOutOfRange(u32),
    /// A division was requested that does not evenly partition the
    /// macro.
    UnevenSplit {
        /// The extent (words or bits) being divided.
        extent: u32,
        /// The requested number of parts.
        parts: u32,
    },
}

impl fmt::Display for CompileSramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileSramError::WordsOutOfRange(w) => {
                write!(
                    f,
                    "word count {w} outside compiler range {MIN_WORDS}-{MAX_WORDS}"
                )
            }
            CompileSramError::BitsOutOfRange(b) => {
                write!(
                    f,
                    "word size {b} outside compiler range {MIN_BITS}-{MAX_BITS}"
                )
            }
            CompileSramError::UnevenSplit { extent, parts } => {
                write!(f, "cannot split extent {extent} into {parts} equal parts")
            }
        }
    }
}

impl Error for CompileSramError {}

/// A characterized macro produced by [`MemoryCompiler::compile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    /// The geometry this macro implements.
    pub config: SramConfig,
    /// Placed macro area including periphery.
    pub area: Um2,
    /// Footprint width (bitline direction).
    pub width: Um,
    /// Footprint height (wordline direction).
    pub height: Um,
    /// Address-to-data read access time.
    pub access_time: Ns,
    /// Minimum clock period the macro supports.
    pub cycle_time: Ns,
    /// Setup time required on address/data inputs.
    pub setup: Ns,
    /// Static leakage.
    pub leakage: crate::units::NanoWatts,
    /// Energy per read access.
    pub read_energy: PicoJoules,
    /// Energy per write access.
    pub write_energy: PicoJoules,
    /// Capacitance presented by each address/data input pin.
    pub input_cap: FemtoFarads,
}

/// Technology constants of the memory compiler; exposed so that the
/// calibration tests can document exactly which knobs reproduce the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramParams {
    /// Bit-cell area for a single-port cell.
    pub bitcell_area_1p: f64,
    /// Bit-cell area for a dual-port cell.
    pub bitcell_area_2p: f64,
    /// Fixed periphery area per macro (control, timing circuitry).
    pub periphery_area: f64,
    /// Periphery fraction proportional to array area (well taps,
    /// redundancy).
    pub periphery_frac: f64,
    /// Periphery area per bit of word width (sense amps, write
    /// drivers, IO). This term is what makes memory division cost
    /// area: every new macro pays the full column periphery again.
    pub periphery_per_bit: f64,
    /// Periphery area per word (row decoder).
    pub periphery_per_word: f64,
    /// Fixed component of access time (ns).
    pub t_fixed: f64,
    /// Access-time coefficient on `words^t_word_exp` (ns).
    pub t_word: f64,
    /// Exponent of the word-count term of the access time. Calibrated
    /// steeper than sqrt (0.8) so that halving a large macro buys the
    /// ~0.55 ns the paper's 500 -> 667 MHz step requires.
    pub t_word_exp: f64,
    /// Access-time coefficient on `bits` (ns).
    pub t_bit: f64,
    /// Dual-port access-time penalty (ratio).
    pub t_dual_penalty: f64,
    /// Fixed leakage per macro (nW).
    pub leak_fixed: f64,
    /// Leakage per kilobit (nW).
    pub leak_per_kbit: f64,
    /// Fixed read energy per access (pJ).
    pub e_fixed: f64,
    /// Read-energy coefficient on `bits * sqrt(words)` (pJ).
    pub e_bit_word: f64,
}

/// Structural hash over the bit patterns of every model constant, so
/// two compilers key the same [`CompiledSramCache`] entries iff their
/// technology constants are bit-identical.
impl Hash for SramParams {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in [
            self.bitcell_area_1p,
            self.bitcell_area_2p,
            self.periphery_area,
            self.periphery_frac,
            self.periphery_per_bit,
            self.periphery_per_word,
            self.t_fixed,
            self.t_word,
            self.t_word_exp,
            self.t_bit,
            self.t_dual_penalty,
            self.leak_fixed,
            self.leak_per_kbit,
            self.e_fixed,
            self.e_bit_word,
        ] {
            state.write_u64(v.to_bits());
        }
    }
}

impl SramParams {
    /// Constants for the synthetic 65 nm low-power compiler.
    pub fn l65lp() -> Self {
        Self {
            bitcell_area_1p: 0.62,
            bitcell_area_2p: 1.06,
            periphery_area: 2600.0,
            periphery_frac: 0.04,
            periphery_per_bit: 150.0,
            periphery_per_word: 3.0,
            t_fixed: 0.26,
            t_word: 0.002838,
            t_word_exp: 0.8,
            t_bit: 0.0014,
            t_dual_penalty: 1.08,
            leak_fixed: 2_000.0,
            leak_per_kbit: 1700.0,
            e_fixed: 4.0,
            e_bit_word: 0.058,
        }
    }
}

/// The memory compiler: turns geometries into characterized macros.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct MemoryCompiler {
    params: SramParams,
    /// Structural fingerprint of `params`, precomputed once so that
    /// every [`CompiledSramCache`] probe keys on a single `u64` instead
    /// of re-hashing fifteen model constants.
    params_key: u64,
}

impl MemoryCompiler {
    /// Compiler with explicit technology constants.
    pub fn new(params: SramParams) -> Self {
        let mut h = DefaultHasher::new();
        params.hash(&mut h);
        Self {
            params,
            params_key: h.finish(),
        }
    }

    /// The synthetic 65 nm low-power compiler used throughout the
    /// reproduction.
    pub fn l65lp() -> Self {
        Self::new(SramParams::l65lp())
    }

    /// The technology constants in effect.
    pub fn params(&self) -> &SramParams {
        &self.params
    }

    /// Compiles `config` into a characterized macro.
    ///
    /// # Errors
    ///
    /// Returns [`CompileSramError`] if the geometry is outside the
    /// compiler range (16–65536 words, 2–144 bits).
    pub fn compile(&self, config: SramConfig) -> Result<SramMacro, CompileSramError> {
        RAW_COMPILES.fetch_add(1, Ordering::Relaxed);
        config.validate()?;
        let p = &self.params;
        let words = f64::from(config.words);
        let bits = f64::from(config.bits);
        let bitcell = match config.ports {
            PortKind::Single => p.bitcell_area_1p,
            PortKind::Dual => p.bitcell_area_2p,
        };
        let array = bitcell * words * bits;
        let area = array * (1.0 + p.periphery_frac)
            + p.periphery_per_bit * bits
            + p.periphery_per_word * words
            + p.periphery_area;

        // Column-mux factor 4: the physical array is words/4 rows of
        // bits*4 columns, which keeps tall memories from becoming
        // unroutable slivers. The footprint is normalized so that
        // width * height equals the reported area (periphery included),
        // with the aspect ratio taken from the array geometry.
        let colmux = 4.0_f64.min(words / f64::from(MIN_WORDS));
        let cell_w = (bitcell / 0.82).sqrt() * 0.95;
        let cell_h = bitcell / cell_w;
        let raw_w = bits * colmux * cell_w + 14.0;
        let raw_h = (words / colmux) * cell_h + 22.0;
        let aspect = (raw_w / raw_h).clamp(0.2, 5.0);
        let width = (area * aspect).sqrt();
        let height = area / width;

        let mut access = p.t_fixed + p.t_word * words.powf(p.t_word_exp) + p.t_bit * bits;
        if config.ports == PortKind::Dual {
            access *= p.t_dual_penalty;
        }
        let cycle = access * 1.12;

        let leakage = p.leak_fixed + p.leak_per_kbit * (words * bits / 1000.0);
        let read_energy = p.e_fixed + p.e_bit_word * bits * words.sqrt();
        let write_energy = read_energy * 1.12;

        Ok(SramMacro {
            config,
            area: Um2::new(area),
            width: Um::new(width),
            height: Um::new(height),
            access_time: Ns::new(access),
            cycle_time: Ns::new(cycle),
            setup: Ns::new(0.10),
            leakage: crate::units::NanoWatts::new(leakage),
            read_energy: PicoJoules::new(read_energy),
            write_energy: PicoJoules::new(write_energy),
            input_cap: FemtoFarads::new(6.0),
        })
    }

    /// Memoized [`MemoryCompiler::compile`] through the process-wide
    /// [`CompiledSramCache`].
    ///
    /// Identical geometries are the common case in a G-GPU netlist —
    /// register-file banks are cloned per PE, CRAM banks per CU — so
    /// each distinct `(technology constants, geometry)` pair is
    /// characterized once per process and every further request is a
    /// table lookup. Results (including deterministic range errors)
    /// are bit-identical to the raw path: the cache stores exactly
    /// what [`MemoryCompiler::compile`] returned.
    ///
    /// # Errors
    ///
    /// Returns [`CompileSramError`] under the same conditions as
    /// [`MemoryCompiler::compile`] (errors are memoized too — the
    /// compiler is a pure function of its constants and the geometry).
    pub fn compile_cached(&self, config: SramConfig) -> Result<SramMacro, CompileSramError> {
        CompiledSramCache::global().get_or_compile(self, config)
    }
}

impl Default for MemoryCompiler {
    fn default() -> Self {
        Self::l65lp()
    }
}

/// Process-wide memo table for compiled SRAM macros, keyed by
/// `(technology-constants fingerprint, geometry)`.
///
/// The STA inner loop compiles the launching/capturing macro of every
/// memory path on every analysis; before memoization a single
/// `optimize_for` run re-characterized the same handful of geometries
/// thousands of times. The table is shared by all threads (reads take
/// a shared `RwLock` guard) and lives for the process, matching the
/// lifetime a real memory compiler's on-disk characterization database
/// would have.
#[derive(Debug)]
pub struct CompiledSramCache {
    table: RwLock<HashMap<(u64, SramConfig), Result<SramMacro, CompileSramError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

impl CompiledSramCache {
    fn new() -> Self {
        Self {
            table: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// The process-wide instance used by
    /// [`MemoryCompiler::compile_cached`].
    pub fn global() -> &'static CompiledSramCache {
        static GLOBAL: OnceLock<CompiledSramCache> = OnceLock::new();
        GLOBAL.get_or_init(CompiledSramCache::new)
    }

    /// Looks up `(compiler, config)`, compiling and memoizing on miss.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`CompileSramError`] from the
    /// underlying compile.
    pub fn get_or_compile(
        &self,
        compiler: &MemoryCompiler,
        config: SramConfig,
    ) -> Result<SramMacro, CompileSramError> {
        if !self.enabled.load(Ordering::Relaxed) {
            return compiler.compile(config);
        }
        let key = (compiler.params_key, config);
        if let Some(r) = self
            .table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *r;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = compiler.compile(config);
        self.table
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, r);
        r
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the characterization model.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized geometries.
    pub fn entries(&self) -> usize {
        self.table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Enables or disables memoization (process-wide). Intended for
    /// benchmark harnesses that need to measure the unmemoized
    /// baseline; leave enabled everywhere else. Disabling does not
    /// drop existing entries — re-enabling resumes hitting them.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// `true` if memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiler() -> MemoryCompiler {
        MemoryCompiler::l65lp()
    }

    #[test]
    fn compile_typical_macro() {
        let m = compiler().compile(SramConfig::dual(2048, 32)).unwrap();
        // A 64 Kib dual-port 65 nm LP macro is on the order of
        // 0.05-0.11 mm^2 with ~1.3-1.9 ns access.
        assert!(m.area.value() > 50_000.0 && m.area.value() < 110_000.0);
        assert!(m.access_time.value() > 1.2 && m.access_time.value() < 1.9);
    }

    #[test]
    fn division_speeds_access_but_costs_area() {
        let c = compiler();
        let whole = c.compile(SramConfig::dual(4096, 32)).unwrap();
        let parts = SramConfig::dual(4096, 32).split_words(2).unwrap();
        let part = c.compile(parts[0]).unwrap();
        assert!(part.access_time < whole.access_time);
        assert!(
            2.0 * part.area.value() > whole.area.value(),
            "two halves must be larger than the whole"
        );
        assert!(2.0 * part.leakage.value() > whole.leakage.value());
    }

    #[test]
    fn bit_division_also_speeds_access() {
        let c = compiler();
        let whole = c.compile(SramConfig::dual(1024, 64)).unwrap();
        let part = c.compile(SramConfig::dual(1024, 32)).unwrap();
        assert!(part.access_time < whole.access_time);
    }

    #[test]
    fn dual_port_is_bigger_and_slower_than_single() {
        let c = compiler();
        let s = c.compile(SramConfig::single(1024, 32)).unwrap();
        let d = c.compile(SramConfig::dual(1024, 32)).unwrap();
        assert!(d.area > s.area);
        assert!(d.access_time > s.access_time);
    }

    #[test]
    fn range_limits_enforced() {
        let c = compiler();
        assert_eq!(
            c.compile(SramConfig::dual(8, 32)).unwrap_err(),
            CompileSramError::WordsOutOfRange(8)
        );
        assert_eq!(
            c.compile(SramConfig::dual(131072, 32)).unwrap_err(),
            CompileSramError::WordsOutOfRange(131072)
        );
        assert_eq!(
            c.compile(SramConfig::dual(1024, 1)).unwrap_err(),
            CompileSramError::BitsOutOfRange(1)
        );
        assert_eq!(
            c.compile(SramConfig::dual(1024, 160)).unwrap_err(),
            CompileSramError::BitsOutOfRange(160)
        );
        assert!(c.compile(SramConfig::dual(MIN_WORDS, MIN_BITS)).is_ok());
        assert!(c.compile(SramConfig::dual(MAX_WORDS, MAX_BITS)).is_ok());
    }

    #[test]
    fn banking_preserves_capacity_ports_and_prices_like_division() {
        let c = compiler();
        let cfg = SramConfig::dual(2048, 32);
        let banks = cfg.banked(4).unwrap();
        assert_eq!(banks.len(), 4);
        let total: u64 = banks.iter().map(|b| b.capacity_bits()).sum();
        assert_eq!(total, cfg.capacity_bits());
        // Every bank keeps the parent's port kind, so the logical
        // memory's total port count grows by the bank factor.
        assert!(banks.iter().all(|b| b.ports == cfg.ports));
        assert_eq!(
            banks.iter().map(|b| b.port_count()).sum::<u32>(),
            4 * cfg.port_count()
        );
        // Banks are word-splits, so the compiler prices them like
        // division parts: faster access, more total area.
        let whole = c.compile(cfg).unwrap();
        let bank = c.compile(banks[0]).unwrap();
        assert!(bank.access_time < whole.access_time);
        assert!(4.0 * bank.area.value() > whole.area.value());
        // Too many banks push words below the compiler minimum.
        assert!(SramConfig::dual(32, 32).banked(4).is_err());
    }

    #[test]
    fn banked_ecc_check_bits_scale_with_bank_count() {
        let bank = SramConfig::dual(512, 32);
        // Parity: 1 bit per word per bank.
        assert_eq!(banked_ecc_check_bits(EccScheme::Parity, bank, 4), 4 * 512);
        // SEC-DED on 32-bit words: 6 Hamming + 1 overall parity.
        let per_word = u64::from(EccScheme::SecDed.check_bits(32));
        assert_eq!(per_word, 7);
        assert_eq!(
            banked_ecc_check_bits(EccScheme::SecDed, bank, 8),
            8 * 512 * per_word
        );
        assert_eq!(banked_ecc_check_bits(EccScheme::None, bank, 8), 0);
        // Banking a protected memory pays exactly `banks` times the
        // per-bank overhead — no sharing across banks.
        let whole = SramConfig::dual(2048, 32);
        let banked: u64 = whole
            .banked(4)
            .unwrap()
            .iter()
            .map(|b| banked_ecc_check_bits(EccScheme::SecDed, *b, 1))
            .sum();
        assert_eq!(banked, banked_ecc_check_bits(EccScheme::SecDed, bank, 4));
    }

    #[test]
    fn split_words_validates() {
        let cfg = SramConfig::dual(2048, 32);
        let parts = cfg.split_words(4).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.words == 512 && p.bits == 32));

        assert!(matches!(
            cfg.split_words(3),
            Err(CompileSramError::UnevenSplit {
                extent: 2048,
                parts: 3
            })
        ));
        // Splitting a 16-word macro would go below the range.
        assert!(SramConfig::dual(16, 32).split_words(2).is_err());
        assert!(cfg.split_words(0).is_err());
    }

    #[test]
    fn split_bits_validates() {
        let cfg = SramConfig::dual(2048, 32);
        let parts = cfg.split_bits(2).unwrap();
        assert!(parts.iter().all(|p| p.bits == 16 && p.words == 2048));
        assert!(SramConfig::dual(2048, 2).split_bits(2).is_err());
        assert!(cfg.split_bits(5).is_err());
    }

    #[test]
    fn capacity() {
        assert_eq!(SramConfig::dual(2048, 32).capacity_bits(), 65536);
    }

    #[test]
    fn footprint_is_positive_and_consistent() {
        let m = compiler().compile(SramConfig::dual(512, 128)).unwrap();
        assert!(m.width.value() > 0.0 && m.height.value() > 0.0);
        // The bounding box should be within 2.5x of the reported area
        // (periphery and routing halo).
        let bbox = m.width.value() * m.height.value();
        assert!(
            bbox < 2.5 * m.area.value(),
            "bbox {bbox} vs area {}",
            m.area
        );
    }

    #[test]
    fn cached_compile_is_bit_identical_to_raw() {
        let c = compiler();
        // A geometry unique to this test, so the first cached call is
        // a guaranteed miss even though the table is process-global.
        let cfg = SramConfig::dual(8192, 72);
        let raw = c.compile(cfg).unwrap();
        let hits0 = CompiledSramCache::global().hits();
        let raws0 = raw_compile_count();
        let first = c.compile_cached(cfg).unwrap();
        let second = c.compile_cached(cfg).unwrap();
        assert_eq!(first, raw);
        assert_eq!(second, raw);
        // The second lookup (at latest) is answered from the table and
        // at most one raw compile ran for the two probes.
        assert!(CompiledSramCache::global().hits() > hits0);
        assert!(raw_compile_count() - raws0 <= 1);
    }

    #[test]
    fn cached_compile_memoizes_errors() {
        let c = compiler();
        let bad = SramConfig::dual(7, 3); // unique out-of-range key
        assert_eq!(
            c.compile_cached(bad).unwrap_err(),
            CompileSramError::WordsOutOfRange(7)
        );
        assert_eq!(
            c.compile_cached(bad).unwrap_err(),
            CompileSramError::WordsOutOfRange(7)
        );
    }

    #[test]
    fn different_params_key_different_cache_entries() {
        let a = MemoryCompiler::l65lp();
        let mut params = SramParams::l65lp();
        params.t_fixed = 0.5;
        let b = MemoryCompiler::new(params);
        let cfg = SramConfig::single(4096, 130); // unique to this test
        let ma = a.compile_cached(cfg).unwrap();
        let mb = b.compile_cached(cfg).unwrap();
        assert!(mb.access_time > ma.access_time, "t_fixed raise must show");
        assert_eq!(ma, a.compile(cfg).unwrap());
        assert_eq!(mb, b.compile(cfg).unwrap());
    }

    #[test]
    fn raw_compile_counter_is_monotone() {
        let before = raw_compile_count();
        let _ = compiler().compile(SramConfig::dual(64, 8));
        assert!(raw_compile_count() > before);
    }

    #[test]
    fn secded_check_bits_match_hamming_table() {
        // Classic extended-Hamming overheads: (data bits, r).
        for (k, r) in [
            (2, 3),
            (4, 3),
            (8, 4),
            (11, 4),
            (16, 5),
            (26, 5),
            (32, 6),
            (57, 6),
            (64, 7),
            (120, 7),
            (128, 8),
            (144, 8),
        ] {
            assert_eq!(secded_check_bits(k), r, "k={k}");
            // Defining inequality holds and is tight.
            assert!((1u64 << r) > u64::from(k) + u64::from(r));
            assert!((1u64 << (r - 1)) < u64::from(k) + u64::from(r), "k={k}");
        }
    }

    #[test]
    fn ecc_widening_costs_and_limits() {
        let cfg = SramConfig::dual(2048, 32);
        assert_eq!(cfg.with_ecc(EccScheme::None).unwrap(), cfg);
        assert_eq!(cfg.with_ecc(EccScheme::Parity).unwrap().bits, 33);
        // 32 data bits need r=6 plus the overall parity bit.
        assert_eq!(cfg.with_ecc(EccScheme::SecDed).unwrap().bits, 39);
        assert_eq!(EccScheme::SecDed.check_bits(32), 7);
        assert_eq!(EccScheme::Parity.check_bits(144), 1);
        // Widening past the 144-bit compiler limit is a typed error.
        assert_eq!(
            SramConfig::dual(1024, 144)
                .with_ecc(EccScheme::Parity)
                .unwrap_err(),
            CompileSramError::BitsOutOfRange(145)
        );
        assert!(SramConfig::dual(1024, 140)
            .with_ecc(EccScheme::SecDed)
            .is_err());
        // Widened macros cost area/energy — protection is not free.
        let c = compiler();
        let plain = c.compile(cfg).unwrap();
        let prot = c.compile(cfg.with_ecc(EccScheme::SecDed).unwrap()).unwrap();
        assert!(prot.area > plain.area);
        assert!(prot.read_energy > plain.read_energy);
    }

    #[test]
    fn ecc_scheme_round_trips_names() {
        for s in [EccScheme::None, EccScheme::Parity, EccScheme::SecDed] {
            assert_eq!(EccScheme::parse(s.as_str()), Some(s));
            assert_eq!(s.to_string(), s.as_str());
        }
        assert_eq!(EccScheme::parse("hamming"), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SramConfig::dual(2048, 32).to_string(), "2048x32 2P");
        assert_eq!(SramConfig::single(64, 8).to_string(), "64x8 1P");
        let e = CompileSramError::WordsOutOfRange(8).to_string();
        assert!(e.contains("word count 8"));
    }
}
