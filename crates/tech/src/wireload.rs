//! Wire-load and repeater models.
//!
//! Before placement, net parasitics are estimated from fanout with a
//! classic wire-load model ([`WireLoadModel`]). After placement, long
//! inter-partition routes are assumed optimally buffered; the
//! [`BufferedWire`] model gives the linear delay-per-millimetre that
//! the paper's 8-CU analysis hinges on (peripheral-CU connections add
//! enough wire delay to break the 1.5 ns target).

use crate::metal::MetalLayer;
use crate::units::{FemtoFarads, Ns, Um};

/// Fanout-based pre-layout parasitic estimate.
#[derive(Debug, Clone, Copy, PartialEq, Hash)]
pub struct WireLoadModel {
    /// Capacitance added per fanout pin.
    pub cap_per_fanout: FemtoFarads,
    /// Fixed capacitance per net.
    pub cap_base: FemtoFarads,
}

impl WireLoadModel {
    /// The wire-load model used for pre-layout synthesis timing.
    pub fn l65() -> Self {
        Self {
            cap_per_fanout: FemtoFarads::new(1.9),
            cap_base: FemtoFarads::new(1.1),
        }
    }

    /// Estimated net capacitance for a net with `fanout` sink pins.
    pub fn net_cap(&self, fanout: u32) -> FemtoFarads {
        self.cap_base + self.cap_per_fanout * f64::from(fanout)
    }
}

impl Default for WireLoadModel {
    fn default() -> Self {
        Self::l65()
    }
}

/// Optimally-repeatered long-wire model.
///
/// With repeaters every critical length, wire delay becomes linear in
/// distance. At 65 nm the well-known figure is 120–200 ps/mm depending
/// on layer; we expose the layer dependence through the RC constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedWire {
    /// Delay per millimetre of optimally buffered wire.
    pub delay_per_mm: Ns,
    /// Capacitance per micrometre seen by the driver of the first
    /// segment.
    pub cap_per_um: FemtoFarads,
}

impl BufferedWire {
    /// Buffered-wire model for routes on the given layer.
    ///
    /// Optimal repeater insertion yields delay proportional to
    /// `sqrt(R*C)` per unit length; the constant is calibrated to
    /// ~0.14 ns/mm on M6 at 65 nm.
    pub fn on_layer(layer: &MetalLayer) -> Self {
        let rc = layer.res_per_um.value() * layer.cap_per_um.value();
        // sqrt(RC) for M6 (0.0003 kOhm/um * 0.21 fF/um) = 7.94e-3;
        // scale so that M6 lands at 0.14 ns/mm.
        let delay_per_mm = Ns::new(17.6 * rc.sqrt());
        Self {
            delay_per_mm,
            cap_per_um: layer.cap_per_um,
        }
    }

    /// Delay of a buffered route of the given length.
    pub fn delay(&self, length: Um) -> Ns {
        self.delay_per_mm * length.to_mm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metal::MetalStack;

    #[test]
    fn wireload_grows_with_fanout() {
        let wl = WireLoadModel::l65();
        assert!(wl.net_cap(8) > wl.net_cap(1));
        let c1 = wl.net_cap(1).value();
        let c0 = wl.net_cap(0).value();
        assert!((c1 - c0 - wl.cap_per_fanout.value()).abs() < 1e-12);
    }

    #[test]
    fn buffered_m6_is_about_140ps_per_mm() {
        let stack = MetalStack::l65();
        let m6 = BufferedWire::on_layer(stack.by_name("M6").unwrap());
        let d = m6.delay_per_mm.value();
        assert!((0.11..=0.18).contains(&d), "M6 buffered = {d} ns/mm");
    }

    #[test]
    fn lower_layers_are_slower_buffered() {
        let stack = MetalStack::l65();
        let m2 = BufferedWire::on_layer(stack.by_name("M2").unwrap());
        let m7 = BufferedWire::on_layer(stack.by_name("M7").unwrap());
        assert!(m2.delay_per_mm > m7.delay_per_mm);
    }

    #[test]
    fn delay_linear_in_length() {
        let stack = MetalStack::l65();
        let w = BufferedWire::on_layer(stack.by_name("M5").unwrap());
        let d1 = w.delay(Um::new(1000.0)).value();
        let d2 = w.delay(Um::new(2500.0)).value();
        assert!((d2 / d1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn peripheral_cu_route_breaks_1_5ns_budget() {
        // The paper's 8-CU floorplan puts peripheral CUs ~2.5-3 mm from
        // the general memory controller; the added wire delay must be
        // large enough to violate a 1.5 ns period but tolerable at
        // 1.667 ns (600 MHz). Sanity-check the order of magnitude.
        let stack = MetalStack::l65();
        let m6 = BufferedWire::on_layer(stack.by_name("M6").unwrap());
        let extra = m6.delay(Um::new(2800.0)).value();
        assert!((0.25..=0.6).contains(&extra), "route adds {extra} ns");
    }
}
