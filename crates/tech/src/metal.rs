//! Back-end-of-line metal stack model.
//!
//! The paper's technology has a nine-layer stack in which M1, M8 and M9
//! are reserved for power routing; Table II therefore reports signal
//! wirelength for M2–M7 only. [`MetalStack::l65`] reproduces that
//! arrangement with per-layer pitch and RC constants typical of a 65 nm
//! process (lower layers: tight pitch, high resistance; upper layers:
//! relaxed pitch, low resistance).

use crate::units::{FemtoFarads, KiloOhms, Um};
use std::fmt;

/// Preferred routing direction of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Horizontal wires.
    Horizontal,
    /// Vertical wires.
    Vertical,
}

impl Direction {
    /// The perpendicular direction.
    pub fn flipped(self) -> Self {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }
}

/// One metal layer.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct MetalLayer {
    /// Layer name, e.g. `"M2"`.
    pub name: String,
    /// 1-based index counted from the substrate.
    pub index: u8,
    /// Preferred routing direction.
    pub direction: Direction,
    /// Track pitch.
    pub pitch: Um,
    /// Wire resistance per micrometre.
    pub res_per_um: KiloOhms,
    /// Wire capacitance per micrometre.
    pub cap_per_um: FemtoFarads,
    /// `true` for layers reserved for the power grid (M1, M8, M9 in
    /// the paper's stack); these never carry signal wirelength.
    pub power_only: bool,
}

impl MetalLayer {
    /// Elmore-style RC delay of an unbuffered wire of `length` on this
    /// layer (0.5·R·C·L²).
    pub fn rc_delay(&self, length: Um) -> crate::units::Ns {
        let l = length.value();
        0.5 * (self.res_per_um * l) * (self.cap_per_um * l)
    }
}

impl fmt::Display for MetalLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A full metal stack.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct MetalStack {
    layers: Vec<MetalLayer>,
}

impl MetalStack {
    /// Builds a stack from an explicit layer list.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or indices are not consecutive from 1.
    pub fn new(layers: Vec<MetalLayer>) -> Self {
        assert!(!layers.is_empty(), "a metal stack cannot be empty");
        for (i, layer) in layers.iter().enumerate() {
            assert_eq!(
                usize::from(layer.index),
                i + 1,
                "layer indices must be consecutive from 1"
            );
        }
        Self { layers }
    }

    /// The nine-layer 65 nm stack of the paper: M1/M8/M9 power-only,
    /// M2–M7 signal routing with alternating preferred directions.
    pub fn l65() -> Self {
        let layer = |index: u8, pitch: f64, res: f64, cap: f64, power: bool| MetalLayer {
            name: format!("M{index}"),
            index,
            direction: if index.is_multiple_of(2) {
                Direction::Horizontal
            } else {
                Direction::Vertical
            },
            pitch: Um::new(pitch),
            res_per_um: KiloOhms::new(res),
            cap_per_um: FemtoFarads::new(cap),
            power_only: power,
        };
        Self::new(vec![
            layer(1, 0.18, 0.00125, 0.195, true),
            layer(2, 0.20, 0.00105, 0.190, false),
            layer(3, 0.20, 0.00105, 0.190, false),
            layer(4, 0.28, 0.00062, 0.200, false),
            layer(5, 0.28, 0.00062, 0.200, false),
            layer(6, 0.40, 0.00030, 0.210, false),
            layer(7, 0.40, 0.00030, 0.210, false),
            layer(8, 0.80, 0.00009, 0.230, true),
            layer(9, 0.80, 0.00009, 0.230, true),
        ])
    }

    /// All layers, bottom-up.
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// The signal (non-power) routing layers, bottom-up.
    pub fn signal_layers(&self) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter().filter(|l| !l.power_only)
    }

    /// Looks a layer up by name (`"M2"`).
    pub fn by_name(&self, name: &str) -> Option<&MetalLayer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the stack has no layers (never true for constructed
    /// stacks, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l65_shape_matches_paper() {
        let stack = MetalStack::l65();
        assert_eq!(stack.len(), 9);
        let signal: Vec<_> = stack.signal_layers().map(|l| l.name.clone()).collect();
        assert_eq!(signal, ["M2", "M3", "M4", "M5", "M6", "M7"]);
        assert!(stack.by_name("M1").unwrap().power_only);
        assert!(stack.by_name("M8").unwrap().power_only);
        assert!(stack.by_name("M9").unwrap().power_only);
    }

    #[test]
    fn upper_layers_are_faster() {
        let stack = MetalStack::l65();
        let m2 = stack.by_name("M2").unwrap();
        let m7 = stack.by_name("M7").unwrap();
        let len = Um::new(1000.0);
        assert!(m7.rc_delay(len) < m2.rc_delay(len));
    }

    #[test]
    fn rc_delay_is_quadratic_in_length() {
        let stack = MetalStack::l65();
        let m4 = stack.by_name("M4").unwrap();
        let d1 = m4.rc_delay(Um::new(500.0)).value();
        let d2 = m4.rc_delay(Um::new(1000.0)).value();
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn directions_alternate() {
        let stack = MetalStack::l65();
        let m2 = stack.by_name("M2").unwrap();
        let m3 = stack.by_name("M3").unwrap();
        assert_ne!(m2.direction, m3.direction);
        assert_eq!(m2.direction.flipped(), m3.direction);
    }

    #[test]
    fn lookup_missing_layer() {
        assert!(MetalStack::l65().by_name("M10").is_none());
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn nonconsecutive_indices_rejected() {
        let mut layers = MetalStack::l65().layers().to_vec();
        layers[3].index = 9;
        let _ = MetalStack::new(layers);
    }
}
