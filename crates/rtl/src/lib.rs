//! Netlist generators for the G-GPU accelerator and the RISC-V
//! baseline CPU.
//!
//! [`generate`] turns a [`GgpuConfig`] into the FGPU-derived module
//! hierarchy described in the paper's Fig. 1: `compute_units` copies
//! of an 8-PE compute unit, a general memory controller holding the
//! shared direct-mapped write-back cache, runtime memory and AXI data
//! movers, and the top-level glue. [`generate_riscv`] builds the
//! CV32E40P-class comparison core of the evaluation section.
//!
//! # Example
//!
//! ```
//! use ggpu_rtl::{generate, GgpuConfig};
//! use ggpu_netlist::stats::design_stats;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GgpuConfig::with_cus(1)?)?;
//! let stats = design_stats(&design, &Tech::l65())?;
//! assert_eq!(stats.macro_count, 51); // Table I, 1 CU @ 500 MHz
//! # Ok(())
//! # }
//! ```

pub mod calib;
pub mod config;
pub mod ggpu;
pub mod riscv_core;

pub use config::{ConfigError, GgpuConfig};
pub use ggpu::{generate, CU_MODULE, GMC_MODULE, PE_MODULE};
pub use riscv_core::{generate_riscv, RiscvConfig};
