//! Calibration constants of the G-GPU netlist generator.
//!
//! The populations below are architectural estimates for an
//! FGPU-derived SIMT accelerator, tuned so that the generated designs
//! land near the paper's Table I (1 CU @ 500 MHz: 4.19 mm² total,
//! 2.68 mm² memory, 119,778 FFs, 127,826 combinational cells,
//! 51 macros). `EXPERIMENTS.md` records measured-vs-paper for every
//! configuration.
//!
//! Keeping every knob in one module makes the calibration auditable:
//! nothing else in the generator contains magic numbers.

/// Flip-flops per processing element (operand/pipeline registers of a
/// deeply pipelined PE).
pub const PE_FF: u64 = 9_500;
/// Adders in a PE's ALU datapath.
pub const PE_ALU_ADDERS: u64 = 1_200;
/// Full-adder cells in the PE multiplier array.
pub const PE_MUL_ADDERS: u64 = 2_400;
/// NAND-class cells in the PE logic unit.
pub const PE_LOGIC_GATES: u64 = 1_800;
/// Multiplexers in the PE shifter.
pub const PE_SHIFT_MUXES: u64 = 1_300;
/// Miscellaneous AOI cells in the PE.
pub const PE_MISC_GATES: u64 = 1_100;

/// Register-file bank geometry per PE (words x bits, dual port).
pub const RF_WORDS: u32 = 2048;
/// See [`RF_WORDS`].
pub const RF_BITS: u32 = 48;

/// Flip-flops in the CU-level control (wavefront scheduler, divergence
/// logic, LSU queues).
pub const CU_CTRL_FF: u64 = 28_000;
/// CU-level combinational populations.
pub const CU_CTRL_MUXES: u64 = 6_000;
/// See [`CU_CTRL_MUXES`].
pub const CU_CTRL_NANDS: u64 = 8_000;
/// See [`CU_CTRL_MUXES`].
pub const CU_CTRL_AOIS: u64 = 4_000;
/// See [`CU_CTRL_MUXES`].
pub const CU_CTRL_XORS: u64 = 3_400;

/// Instruction-RAM (CRAM) geometry: two banks per CU.
pub const CRAM_WORDS: u32 = 2048;
/// See [`CRAM_WORDS`].
pub const CRAM_BITS: u32 = 32;
/// Local scratch RAM: four banks per CU.
pub const LRAM_WORDS: u32 = 1024;
/// See [`LRAM_WORDS`].
pub const LRAM_BITS: u32 = 32;
/// Wavefront-state RAM: four banks per CU.
pub const WF_STATE_WORDS: u32 = 512;
/// See [`WF_STATE_WORDS`].
pub const WF_STATE_BITS: u32 = 64;
/// Divergence-stack RAM: two banks per CU.
pub const DIV_STACK_WORDS: u32 = 256;
/// See [`DIV_STACK_WORDS`].
pub const DIV_STACK_BITS: u32 = 48;
/// Operand-collector FIFOs: one per PE.
pub const OP_FIFO_WORDS: u32 = 64;
/// See [`OP_FIFO_WORDS`].
pub const OP_FIFO_BITS: u32 = 72;
/// Load-store coalescing buffers: six per CU.
pub const LSU_BUF_COUNT: usize = 6;
/// See [`LSU_BUF_COUNT`].
pub const LSU_BUF_WORDS: u32 = 128;
/// See [`LSU_BUF_COUNT`].
pub const LSU_BUF_BITS: u32 = 72;
/// Accumulator scratch: one per PE.
pub const ACCUM_WORDS: u32 = 128;
/// See [`ACCUM_WORDS`].
pub const ACCUM_BITS: u32 = 36;

/// Flip-flops in the general memory controller (cache control, data
/// movers).
pub const GMC_FF: u64 = 9_000;
/// Combinational cells in the general memory controller.
pub const GMC_COMB: u64 = 30_000;
/// Data-cache data-array banks. Bank word count derives from the
/// user-requested cache capacity (`GgpuConfig::cache_kib`); the
/// paper's configuration (64 KiB) gives 2048-word banks.
pub const CACHE_DATA_BANKS: usize = 4;
/// Cache data bank word width.
pub const CACHE_DATA_BITS: u32 = 64;
/// Cache tag array geometry.
pub const CACHE_TAG_WORDS: u32 = 1024;
/// See [`CACHE_TAG_WORDS`].
pub const CACHE_TAG_BITS: u32 = 28;
/// Runtime-memory banks.
pub const RTM_BANKS: usize = 2;
/// Runtime-memory geometry.
pub const RTM_WORDS: u32 = 1024;
/// See [`RTM_WORDS`].
pub const RTM_BITS: u32 = 32;
/// AXI data-mover FIFO geometry (one per data interface pair).
pub const AXI_FIFO_WORDS: u32 = 512;
/// See [`AXI_FIFO_WORDS`].
pub const AXI_FIFO_BITS: u32 = 36;

/// Fixed flip-flops in the top-level glue (AXI control, dispatcher).
pub const TOP_FF_BASE: u64 = 4_000;
/// Additional top-level flip-flops per CU (arbitration, fan-out
/// registers).
pub const TOP_FF_PER_CU: u64 = 600;
/// Fixed combinational cells in the top-level glue.
pub const TOP_COMB_BASE: u64 = 8_000;
/// Additional combinational cells per CU.
pub const TOP_COMB_PER_CU: u64 = 1_500;

/// Logic depth (NAND2 stages) after a register-file read.
pub const RF_READ_DEPTH: usize = 4;
/// Logic depth after an instruction fetch.
pub const CRAM_FETCH_DEPTH: usize = 4;
/// Logic depth after a scratch-RAM read.
pub const LRAM_READ_DEPTH: usize = 6;
/// Logic depth after a wavefront-state read.
pub const WF_STATE_DEPTH: usize = 8;
/// Logic depth after a divergence-stack read.
pub const DIV_STACK_DEPTH: usize = 10;
/// Depth of the wavefront-scheduler pure-logic path (NAND2 stages).
pub const WF_SCHED_DEPTH: usize = 38;
/// Logic depth after a cache data read (MUX2 stages).
pub const CACHE_DATA_DEPTH: usize = 2;
/// XOR compare depth on the cache tag path.
pub const CACHE_TAG_DEPTH: usize = 4;
/// Logic depth after a runtime-memory read.
pub const RTM_READ_DEPTH: usize = 4;
/// Logic depth after an AXI FIFO read.
pub const AXI_FIFO_DEPTH: usize = 6;
/// MUX2 stages in the per-CU arbitration path at the top level,
/// as a function of the CU count.
pub fn arb_depth(compute_units: u32) -> usize {
    3 + (compute_units as usize)
        .next_power_of_two()
        .trailing_zeros() as usize
        * 2
}

/// Switching-activity assumptions (fraction of cells toggling per
/// cycle) for a busy SIMT workload.
pub mod activity {
    /// PE datapath registers.
    pub const PE_REGS: f64 = 0.25;
    /// PE combinational logic.
    pub const PE_COMB: f64 = 0.18;
    /// Register-file access rate per cycle.
    pub const RF: f64 = 0.85;
    /// CU control registers.
    pub const CU_CTRL: f64 = 0.30;
    /// CU control logic.
    pub const CU_COMB: f64 = 0.20;
    /// Instruction RAM access rate.
    pub const CRAM: f64 = 0.60;
    /// Scratch RAM access rate.
    pub const LRAM: f64 = 0.30;
    /// Wavefront-state access rate.
    pub const WF_STATE: f64 = 0.50;
    /// Divergence-stack access rate.
    pub const DIV_STACK: f64 = 0.30;
    /// Operand FIFO access rate.
    pub const OP_FIFO: f64 = 0.40;
    /// LSU buffer access rate.
    pub const LSU_BUF: f64 = 0.45;
    /// Accumulator access rate.
    pub const ACCUM: f64 = 0.35;
    /// Cache data access rate.
    pub const CACHE_DATA: f64 = 0.55;
    /// Cache tag access rate.
    pub const CACHE_TAG: f64 = 0.60;
    /// Runtime memory access rate.
    pub const RTM: f64 = 0.20;
    /// AXI FIFO access rate.
    pub const AXI_FIFO: f64 = 0.35;
    /// Memory-controller logic.
    pub const GMC: f64 = 0.25;
    /// Top-level glue logic.
    pub const TOP: f64 = 0.20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arb_depth_grows_with_cus() {
        assert!(arb_depth(8) > arb_depth(1));
        assert_eq!(arb_depth(1), 3);
        assert_eq!(arb_depth(8), 9);
    }

    #[test]
    fn cu_macro_budget_matches_paper() {
        // 8 RF + 2 CRAM + 4 LRAM + 4 WF + 2 DIV + 8 OP-FIFO +
        // 6 LSU + 8 ACCUM = 42 macros per CU; with the 9 shared macros
        // this yields the paper's 42n + 9 progression (51/93/177/345).
        let per_cu = 8 + 2 + 4 + 4 + 2 + 8 + LSU_BUF_COUNT as u32 + 8;
        assert_eq!(per_cu, 42);
        let shared = CACHE_DATA_BANKS as u32 + 1 + RTM_BANKS as u32 + 2;
        assert_eq!(shared, 9);
        for (n, expect) in [(1u32, 51u32), (2, 93), (4, 177), (8, 345)] {
            assert_eq!(per_cu * n + shared, expect);
        }
    }
}
