//! Netlist generator for the RISC-V baseline CPU.
//!
//! The paper compares G-GPU against "an implementation of the popular
//! RISC-V architecture" (a CV32E40P-class 32-bit in-order core) with
//! 32 KiB of memory, synthesized at 667 MHz in the same technology.
//! This generator produces the matching netlist so the area-derated
//! speed-up of Fig. 6 can be computed from the same technology models.

use ggpu_netlist::module::{CellGroup, MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;

/// Configuration of the baseline CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiscvConfig {
    /// Unified instruction/data memory size in KiB (paper: 32).
    pub memory_kib: u32,
}

impl Default for RiscvConfig {
    fn default() -> Self {
        Self { memory_kib: 32 }
    }
}

/// Generates the RISC-V baseline netlist.
///
/// # Panics
///
/// Panics if `memory_kib` is zero or not a multiple of 4 (one 4 KiB
/// single-port bank per macro).
pub fn generate_riscv(cfg: &RiscvConfig) -> Design {
    assert!(
        cfg.memory_kib > 0 && cfg.memory_kib.is_multiple_of(4),
        "memory size must be a positive multiple of 4 KiB, got {}",
        cfg.memory_kib
    );
    let mut design = Design::new("riscv_cv32e40p");
    let mut core = Module::new("riscv_top")
        .with_group(CellGroup::new("pipeline_regs", CellClass::Dff, 9_000, 0.28))
        .with_group(CellGroup::new("alu", CellClass::FullAdder, 9_000, 0.20))
        .with_group(CellGroup::new(
            "mul_div",
            CellClass::FullAdder,
            14_000,
            0.10,
        ))
        .with_group(CellGroup::new(
            "decode_logic",
            CellClass::Nand2,
            38_000,
            0.18,
        ))
        .with_group(CellGroup::new("bus_matrix", CellClass::Mux2, 26_000, 0.15))
        .with_group(CellGroup::new("csr_misc", CellClass::Aoi21, 21_000, 0.15));

    let banks = cfg.memory_kib / 4;
    for i in 0..banks {
        core.macros.push(MacroInst::new(
            format!("mem{i}"),
            SramConfig::single(1024, 32),
            MemoryRole::ScratchRam,
            0.35,
        ));
    }

    core.paths.push(TimingPath::new(
        "imem_fetch",
        PathEndpoint::Macro("mem0".into()),
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 4, 2),
    ));
    core.paths.push(TimingPath::new(
        "alu_path",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 24, 2),
    ));
    core.paths.push(TimingPath::new(
        "lsu_store",
        PathEndpoint::Register,
        PathEndpoint::Macro("mem0".into()),
        LogicStage::chain(CellClass::Mux2, 4, 2),
    ));
    let id = design.add_module(core);
    design.set_top(id);
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::stats::design_stats;
    use ggpu_sta::max_frequency;
    use ggpu_tech::Tech;

    #[test]
    fn baseline_is_valid_and_small() {
        let d = generate_riscv(&RiscvConfig::default());
        assert!(d.validate().is_ok());
        let s = design_stats(&d, &Tech::l65()).unwrap();
        // The paper's Fig. 6 implies the RISC-V (with 32 KiB memory)
        // is about 1/6.5 the area of a 1-CU G-GPU: ~0.65-0.75 mm^2.
        let mm2 = s.total_area().to_mm2();
        assert!((0.55..=0.90).contains(&mm2), "RISC-V area {mm2} mm2");
        assert_eq!(s.macro_count, 8);
    }

    #[test]
    fn baseline_meets_667mhz() {
        let d = generate_riscv(&RiscvConfig::default());
        let fmax = max_frequency(&d, &Tech::l65()).unwrap().unwrap();
        assert!(
            fmax.value() >= 667.0,
            "RISC-V must close 667 MHz as in the paper, got {fmax}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 4 KiB")]
    fn bad_memory_size_panics() {
        let _ = generate_riscv(&RiscvConfig { memory_kib: 6 });
    }

    #[test]
    fn larger_memory_means_more_banks() {
        let d = generate_riscv(&RiscvConfig { memory_kib: 64 });
        let s = design_stats(&d, &Tech::l65()).unwrap();
        assert_eq!(s.macro_count, 16);
    }
}
