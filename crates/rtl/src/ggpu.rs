//! The G-GPU netlist generator: builds the FGPU-derived module
//! hierarchy (PE → CU → top with general memory controller) as a
//! [`Design`].

use crate::calib::{self, activity};
use crate::config::{ConfigError, GgpuConfig};
use ggpu_netlist::module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::{BankGroupId, Design};
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;

/// Module name of the compute-unit partition.
pub const CU_MODULE: &str = "compute_unit";
/// Module name of the processing element.
pub const PE_MODULE: &str = "processing_element";
/// Module name of the general memory controller partition.
pub const GMC_MODULE: &str = "memory_controller";

fn macro_path(name: &str, macro_name: &str, depth: usize, class: CellClass) -> TimingPath {
    TimingPath::new(
        name,
        PathEndpoint::Macro(macro_name.into()),
        PathEndpoint::Register,
        LogicStage::chain(class, depth, 2),
    )
}

/// Builds one processing element.
fn build_pe() -> Module {
    let mut pe = Module::new(PE_MODULE)
        .with_group(CellGroup::new(
            "pipeline_regs",
            CellClass::Dff,
            calib::PE_FF,
            activity::PE_REGS,
        ))
        .with_group(CellGroup::new(
            "alu_adders",
            CellClass::FullAdder,
            calib::PE_ALU_ADDERS,
            activity::PE_COMB,
        ))
        .with_group(CellGroup::new(
            "mul_array",
            CellClass::FullAdder,
            calib::PE_MUL_ADDERS,
            activity::PE_COMB * 0.6,
        ))
        .with_group(CellGroup::new(
            "logic_unit",
            CellClass::Nand2,
            calib::PE_LOGIC_GATES,
            activity::PE_COMB,
        ))
        .with_group(CellGroup::new(
            "shifter",
            CellClass::Mux2,
            calib::PE_SHIFT_MUXES,
            activity::PE_COMB * 0.7,
        ))
        .with_group(CellGroup::new(
            "misc",
            CellClass::Aoi21,
            calib::PE_MISC_GATES,
            activity::PE_COMB,
        ))
        .with_macro(
            MacroInst::new(
                "rf_bank",
                SramConfig::dual(calib::RF_WORDS, calib::RF_BITS),
                MemoryRole::RegisterFile,
                activity::RF,
            )
            .with_bank_group(BankGroupId(0)),
        );
    // The unoptimized design's critical path: a register-file read
    // into the operand-routing logic (the paper: "the critical path
    // ... has its starting point at a memory block" inside the CU).
    pe.paths.push(macro_path(
        "rf_read",
        "rf_bank",
        calib::RF_READ_DEPTH,
        CellClass::Nand2,
    ));
    pe.paths.push(TimingPath::new(
        "alu_bypass",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 18, 2),
    ));
    pe.paths.push(TimingPath::new(
        "rf_writeback",
        PathEndpoint::Register,
        PathEndpoint::Macro("rf_bank".into()),
        LogicStage::chain(CellClass::Mux2, 4, 2),
    ));
    pe
}

/// Builds the compute unit around `pe`.
fn build_cu(pe: ggpu_netlist::ModuleId, cfg: &GgpuConfig) -> Module {
    let mut cu = Module::new(CU_MODULE)
        .with_group(CellGroup::new(
            "ctrl_regs",
            CellClass::Dff,
            calib::CU_CTRL_FF,
            activity::CU_CTRL,
        ))
        .with_group(CellGroup::new(
            "ctrl_muxes",
            CellClass::Mux2,
            calib::CU_CTRL_MUXES,
            activity::CU_COMB,
        ))
        .with_group(CellGroup::new(
            "ctrl_nands",
            CellClass::Nand2,
            calib::CU_CTRL_NANDS,
            activity::CU_COMB,
        ))
        .with_group(CellGroup::new(
            "ctrl_aois",
            CellClass::Aoi21,
            calib::CU_CTRL_AOIS,
            activity::CU_COMB,
        ))
        .with_group(CellGroup::new(
            "ctrl_xors",
            CellClass::Xor2,
            calib::CU_CTRL_XORS,
            activity::CU_COMB,
        ));

    for i in 0..cfg.pes_per_cu {
        cu.children.push(Instance {
            name: format!("pe{i}"),
            module: pe,
        });
    }

    for i in 0..2 {
        cu.macros.push(
            MacroInst::new(
                format!("cram{i}"),
                SramConfig::dual(calib::CRAM_WORDS, calib::CRAM_BITS),
                MemoryRole::InstructionRam,
                activity::CRAM,
            )
            .with_bank_group(BankGroupId(0)),
        );
    }
    for i in 0..4 {
        cu.macros.push(
            MacroInst::new(
                format!("lram{i}"),
                SramConfig::dual(calib::LRAM_WORDS, calib::LRAM_BITS),
                MemoryRole::ScratchRam,
                activity::LRAM,
            )
            .with_bank_group(BankGroupId(1)),
        );
    }
    for i in 0..4 {
        cu.macros.push(
            MacroInst::new(
                format!("wf_state{i}"),
                SramConfig::dual(calib::WF_STATE_WORDS, calib::WF_STATE_BITS),
                MemoryRole::SchedulerState,
                activity::WF_STATE,
            )
            .with_bank_group(BankGroupId(2)),
        );
    }
    for i in 0..2 {
        cu.macros.push(
            MacroInst::new(
                format!("div_stack{i}"),
                SramConfig::dual(calib::DIV_STACK_WORDS, calib::DIV_STACK_BITS),
                MemoryRole::SchedulerState,
                activity::DIV_STACK,
            )
            .with_bank_group(BankGroupId(3)),
        );
    }
    for i in 0..cfg.pes_per_cu {
        cu.macros.push(
            MacroInst::new(
                format!("op_fifo{i}"),
                SramConfig::dual(calib::OP_FIFO_WORDS, calib::OP_FIFO_BITS),
                MemoryRole::Fifo,
                activity::OP_FIFO,
            )
            .with_bank_group(BankGroupId(4)),
        );
    }
    for i in 0..calib::LSU_BUF_COUNT {
        cu.macros.push(
            MacroInst::new(
                format!("lsu_buf{i}"),
                SramConfig::dual(calib::LSU_BUF_WORDS, calib::LSU_BUF_BITS),
                MemoryRole::Fifo,
                activity::LSU_BUF,
            )
            .with_bank_group(BankGroupId(5)),
        );
    }
    for i in 0..cfg.pes_per_cu {
        cu.macros.push(
            MacroInst::new(
                format!("accum{i}"),
                SramConfig::dual(calib::ACCUM_WORDS, calib::ACCUM_BITS),
                MemoryRole::ScratchRam,
                activity::ACCUM,
            )
            .with_bank_group(BankGroupId(6)),
        );
    }

    cu.paths.push(macro_path(
        "cram_fetch",
        "cram0",
        calib::CRAM_FETCH_DEPTH,
        CellClass::Nand2,
    ));
    cu.paths.push(macro_path(
        "lram_read",
        "lram0",
        calib::LRAM_READ_DEPTH,
        CellClass::Nand2,
    ));
    cu.paths.push(macro_path(
        "wf_state_read",
        "wf_state0",
        calib::WF_STATE_DEPTH,
        CellClass::Nand2,
    ));
    cu.paths.push(macro_path(
        "div_stack_read",
        "div_stack0",
        calib::DIV_STACK_DEPTH,
        CellClass::Nand2,
    ));
    // The deep pure-logic wavefront scheduler path: this is the path
    // the paper fixes with on-demand pipeline insertion once the
    // memory paths have been divided past it.
    cu.paths.push(TimingPath::new(
        "wf_sched",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, calib::WF_SCHED_DEPTH, 2),
    ));
    cu.paths.push(TimingPath::new(
        "lsu_issue",
        PathEndpoint::Register,
        PathEndpoint::Macro("lsu_buf0".into()),
        LogicStage::chain(CellClass::Mux2, 5, 2),
    ));
    cu
}

/// Builds the general memory controller (shared cache, runtime memory,
/// AXI data movers).
fn build_gmc(cfg: &GgpuConfig) -> Module {
    let mut gmc = Module::new(GMC_MODULE)
        .with_group(CellGroup::new(
            "cache_ctrl_regs",
            CellClass::Dff,
            calib::GMC_FF,
            activity::GMC,
        ))
        .with_group(CellGroup::new(
            "cache_ctrl_logic",
            CellClass::Nand2,
            calib::GMC_COMB / 2,
            activity::GMC,
        ))
        .with_group(CellGroup::new(
            "data_mover_muxes",
            CellClass::Mux2,
            calib::GMC_COMB / 2,
            activity::GMC,
        ));

    // The cache capacity is a user parameter: words per bank derive
    // from it (banks x words x bits must equal the requested KiB).
    let cache_words =
        cfg.cache_kib * 1024 * 8 / (calib::CACHE_DATA_BANKS as u32 * calib::CACHE_DATA_BITS);
    for i in 0..calib::CACHE_DATA_BANKS {
        gmc.macros.push(
            MacroInst::new(
                format!("cache_data{i}"),
                SramConfig::dual(cache_words, calib::CACHE_DATA_BITS),
                MemoryRole::CacheData,
                activity::CACHE_DATA,
            )
            .with_bank_group(BankGroupId(0)),
        );
    }
    gmc.macros.push(
        MacroInst::new(
            "cache_tag",
            SramConfig::dual(calib::CACHE_TAG_WORDS, calib::CACHE_TAG_BITS),
            MemoryRole::CacheTag,
            activity::CACHE_TAG,
        )
        .with_bank_group(BankGroupId(1)),
    );
    for i in 0..calib::RTM_BANKS {
        gmc.macros.push(
            MacroInst::new(
                format!("rtm{i}"),
                SramConfig::dual(calib::RTM_WORDS, calib::RTM_BITS),
                MemoryRole::RuntimeMemory,
                activity::RTM,
            )
            .with_bank_group(BankGroupId(2)),
        );
    }
    for i in 0..cfg.axi_data_interfaces.min(2) {
        gmc.macros.push(
            MacroInst::new(
                format!("axi_fifo{i}"),
                SramConfig::dual(calib::AXI_FIFO_WORDS, calib::AXI_FIFO_BITS),
                MemoryRole::Fifo,
                activity::AXI_FIFO,
            )
            .with_bank_group(BankGroupId(3)),
        );
    }

    gmc.paths.push(macro_path(
        "cache_data_read",
        "cache_data0",
        calib::CACHE_DATA_DEPTH,
        CellClass::Mux2,
    ));
    gmc.paths.push(macro_path(
        "tag_compare",
        "cache_tag",
        calib::CACHE_TAG_DEPTH,
        CellClass::Xor2,
    ));
    gmc.paths.push(macro_path(
        "rtm_read",
        "rtm0",
        calib::RTM_READ_DEPTH,
        CellClass::Nand2,
    ));
    gmc.paths.push(macro_path(
        "axi_fifo_read",
        "axi_fifo0",
        calib::AXI_FIFO_DEPTH,
        CellClass::Nand2,
    ));
    gmc
}

/// Generates the complete G-GPU netlist for `cfg`.
///
/// The hierarchy is the paper's three-partition structure: `top`
/// instantiates `compute_units` copies of [`CU_MODULE`] (each holding
/// eight [`PE_MODULE`]s) and one [`GMC_MODULE`]; top-level glue holds
/// the AXI control interface, the workgroup dispatcher and one
/// arbitration path per CU (the paths the 8-CU layout fails on).
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` is invalid.
pub fn generate(cfg: &GgpuConfig) -> Result<Design, ConfigError> {
    cfg.validate()?;
    let mut design = Design::new(cfg.design_name());
    let pe = design.add_module(build_pe());
    let cu = design.add_module(build_cu(pe, cfg));
    let gmc = design.add_module(build_gmc(cfg));

    let n = u64::from(cfg.compute_units);
    let mut top = Module::new("top")
        .with_group(CellGroup::new(
            "glue_regs",
            CellClass::Dff,
            calib::TOP_FF_BASE + calib::TOP_FF_PER_CU * n,
            activity::TOP,
        ))
        .with_group(CellGroup::new(
            "glue_logic",
            CellClass::Nand2,
            calib::TOP_COMB_BASE + calib::TOP_COMB_PER_CU * n,
            activity::TOP,
        ));
    for i in 0..cfg.compute_units {
        top.children.push(Instance {
            name: format!("cu{i}"),
            module: cu,
        });
        // One arbitration path per CU; the physical-design step
        // annotates each with the route delay between that CU
        // partition and the memory controller.
        top.paths.push(TimingPath::new(
            format!("arb_cu{i}"),
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Mux2, calib::arb_depth(cfg.compute_units), 2),
        ));
    }
    for g in 0..cfg.memory_controllers {
        top.children.push(Instance {
            name: if cfg.memory_controllers == 1 {
                "gmc".into()
            } else {
                format!("gmc{g}")
            },
            module: gmc,
        });
    }
    top.paths.push(TimingPath::new(
        "dispatch",
        PathEndpoint::Register,
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, 16, 2),
    ));
    let top = design.add_module(top);
    design.set_top(top);
    debug_assert!(design.validate().is_ok());
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::stats::design_stats;
    use ggpu_tech::Tech;

    #[test]
    fn generates_valid_designs_for_paper_cu_counts() {
        for n in [1, 2, 4, 8] {
            let cfg = GgpuConfig::with_cus(n).unwrap();
            let d = generate(&cfg).unwrap();
            assert!(d.validate().is_ok(), "{n} CUs");
        }
    }

    #[test]
    fn macro_counts_match_table1_progression() {
        let tech = Tech::l65();
        for (n, expect) in [(1u32, 51u64), (2, 93), (4, 177), (8, 345)] {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            let s = design_stats(&d, &tech).unwrap();
            assert_eq!(s.macro_count, expect, "{n} CUs");
        }
    }

    #[test]
    fn ff_counts_are_near_table1() {
        let tech = Tech::l65();
        // Paper values; the generator is calibrated to within a few
        // percent (architectural estimate, not a curve fit per row).
        for (n, paper) in [
            (1u32, 119_778f64),
            (2, 229_171.0),
            (4, 437_318.0),
            (8, 852_094.0),
        ] {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            let s = design_stats(&d, &tech).unwrap();
            let rel = (s.ff_cells as f64 - paper).abs() / paper;
            assert!(rel < 0.05, "{n} CUs: {} vs paper {paper}", s.ff_cells);
        }
    }

    #[test]
    fn comb_counts_are_near_table1() {
        let tech = Tech::l65();
        for (n, paper) in [
            (1u32, 127_826f64),
            (2, 214_243.0),
            (4, 387_246.0),
            (8, 714_256.0),
        ] {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            let s = design_stats(&d, &tech).unwrap();
            let rel = (s.comb_cells as f64 - paper).abs() / paper;
            assert!(rel < 0.08, "{n} CUs: {} vs paper {paper}", s.comb_cells);
        }
    }

    #[test]
    fn total_area_is_near_table1() {
        let tech = Tech::l65();
        for (n, paper_mm2) in [(1u32, 4.19f64), (2, 7.45), (4, 13.84), (8, 26.51)] {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            let s = design_stats(&d, &tech).unwrap();
            let rel = (s.total_area().to_mm2() - paper_mm2).abs() / paper_mm2;
            assert!(
                rel < 0.15,
                "{n} CUs: {:.2} mm2 vs paper {paper_mm2}",
                s.total_area().to_mm2()
            );
        }
    }

    #[test]
    fn memory_area_is_near_table1() {
        let tech = Tech::l65();
        for (n, paper_mm2) in [(1u32, 2.68f64), (8, 16.39)] {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            let s = design_stats(&d, &tech).unwrap();
            let rel = (s.macro_area.to_mm2() - paper_mm2).abs() / paper_mm2;
            assert!(
                rel < 0.15,
                "{n} CUs: {:.2} mm2 vs paper {paper_mm2}",
                s.macro_area.to_mm2()
            );
        }
    }

    #[test]
    fn area_grows_linearly_with_cus() {
        let tech = Tech::l65();
        let a1 = design_stats(&generate(&GgpuConfig::with_cus(1).unwrap()).unwrap(), &tech)
            .unwrap()
            .total_area();
        let a8 = design_stats(&generate(&GgpuConfig::with_cus(8).unwrap()).unwrap(), &tech)
            .unwrap()
            .total_area();
        let ratio = a8 / a1;
        assert!((5.5..7.5).contains(&ratio), "8CU/1CU area ratio {ratio}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = GgpuConfig {
            compute_units: 12,
            ..GgpuConfig::default()
        };
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn extended_cu_counts_generate_when_opted_in() {
        let cfg = GgpuConfig {
            compute_units: 16,
            allow_extended_cus: true,
            ..GgpuConfig::default()
        };
        let d = generate(&cfg).unwrap();
        assert!(d.validate().is_ok());
    }

    #[test]
    fn top_has_one_arb_path_per_cu() {
        let d = generate(&GgpuConfig::with_cus(8).unwrap()).unwrap();
        let top = d.module(d.top());
        let arbs = top
            .paths
            .iter()
            .filter(|p| p.name.starts_with("arb_cu"))
            .count();
        assert_eq!(arbs, 8);
    }
}

#[cfg(test)]
mod cache_param_tests {
    use super::*;
    use ggpu_sta::max_frequency;
    use ggpu_tech::Tech;

    #[test]
    fn cache_capacity_drives_bank_geometry() {
        for (kib, words) in [(32u32, 1024u32), (64, 2048), (128, 4096)] {
            let cfg = GgpuConfig {
                cache_kib: kib,
                ..GgpuConfig::default()
            };
            let d = generate(&cfg).unwrap();
            let gmc = d.module_by_name(GMC_MODULE).unwrap();
            let bank = d.module(gmc).find_macro("cache_data0").unwrap();
            assert_eq!(bank.config.words, words, "{kib} KiB");
            assert_eq!(bank.config.bits, 64);
        }
    }

    #[test]
    fn bigger_cache_is_slower_until_divided() {
        let tech = Tech::l65();
        let small = generate(&GgpuConfig::default()).unwrap();
        let big = generate(&GgpuConfig {
            cache_kib: 256,
            ..GgpuConfig::default()
        })
        .unwrap();
        let f_small = max_frequency(&small, &tech).unwrap().unwrap();
        let f_big = max_frequency(&big, &tech).unwrap().unwrap();
        assert!(
            f_big < f_small,
            "8192-word cache banks must limit fmax: {f_small} vs {f_big}"
        );
    }

    #[test]
    fn out_of_range_cache_rejected() {
        for bad in [0u32, 3, 4096] {
            let cfg = GgpuConfig {
                cache_kib: bad,
                ..GgpuConfig::default()
            };
            assert!(cfg.validate().is_err(), "{bad} KiB");
        }
    }
}
