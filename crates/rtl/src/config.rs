//! G-GPU configuration: the user-facing parameters of the generator.
//!
//! The paper's customization axes are the number of compute units
//! (1–8) and the memory-system geometry; everything else (PEs per CU,
//! wavefront organization) follows the FGPU architecture.

use std::error::Error;
use std::fmt;

/// Parameters of one G-GPU instance.
///
/// ```
/// use ggpu_rtl::config::GgpuConfig;
///
/// let cfg = GgpuConfig::with_cus(4).expect("4 CUs is within range");
/// assert_eq!(cfg.compute_units, 4);
/// assert_eq!(cfg.max_work_items_per_cu(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GgpuConfig {
    /// Number of compute units (paper range: 1–8).
    pub compute_units: u32,
    /// Processing elements per CU (FGPU: 8).
    pub pes_per_cu: u32,
    /// Work-items per wavefront (FGPU: 64).
    pub wavefront_size: u32,
    /// Maximum resident wavefronts per CU (FGPU: 8, i.e. 512
    /// work-items).
    pub max_wavefronts_per_cu: u32,
    /// Data-cache capacity in KiB.
    pub cache_kib: u32,
    /// Number of parallel AXI data interfaces (paper: up to 4).
    pub axi_data_interfaces: u32,
    /// Number of general-memory-controller replicas (1 or 2). The
    /// paper proposes replication as future work to shorten the
    /// peripheral-CU routes that cap the 8-CU layout at 600 MHz.
    pub memory_controllers: u32,
    /// Allow more than 8 CUs (the paper lists this as future work; the
    /// generator supports it behind this explicit opt-in).
    pub allow_extended_cus: bool,
}

impl GgpuConfig {
    /// The architecture the paper evaluates, with the given CU count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `compute_units` is outside 1–8.
    pub fn with_cus(compute_units: u32) -> Result<Self, ConfigError> {
        let cfg = Self {
            compute_units,
            ..Self::default()
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Upper bound on concurrently resident work-items per CU.
    pub fn max_work_items_per_cu(&self) -> u32 {
        self.wavefront_size * self.max_wavefronts_per_cu
    }

    /// Checks the configuration against the generator's supported
    /// ranges.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.compute_units == 0 {
            return Err(ConfigError::ZeroComputeUnits);
        }
        if self.compute_units > 8 && !self.allow_extended_cus {
            return Err(ConfigError::TooManyComputeUnits(self.compute_units));
        }
        if self.pes_per_cu == 0 || !self.pes_per_cu.is_power_of_two() {
            return Err(ConfigError::BadPeCount(self.pes_per_cu));
        }
        if self.wavefront_size == 0
            || !self.wavefront_size.is_multiple_of(self.pes_per_cu)
            || !self.wavefront_size.is_power_of_two()
        {
            return Err(ConfigError::BadWavefrontSize(self.wavefront_size));
        }
        if self.max_wavefronts_per_cu == 0 {
            return Err(ConfigError::BadWavefrontCount(self.max_wavefronts_per_cu));
        }
        // Bank word counts must stay inside the memory compiler's
        // range (16-65536 words over 4 x 64-bit banks: 1-2048 KiB).
        if self.cache_kib == 0
            || !self.cache_kib.is_power_of_two()
            || !(1..=2048).contains(&self.cache_kib)
        {
            return Err(ConfigError::BadCacheSize(self.cache_kib));
        }
        if self.axi_data_interfaces == 0 || self.axi_data_interfaces > 4 {
            return Err(ConfigError::BadAxiCount(self.axi_data_interfaces));
        }
        if self.memory_controllers == 0 || self.memory_controllers > 2 {
            return Err(ConfigError::BadControllerCount(self.memory_controllers));
        }
        Ok(())
    }

    /// Canonical design name, e.g. `"ggpu_4cu"`.
    pub fn design_name(&self) -> String {
        format!("ggpu_{}cu", self.compute_units)
    }
}

impl Default for GgpuConfig {
    /// The paper's FGPU-derived baseline: 8 PEs per CU, 64-item
    /// wavefronts, 8 resident wavefronts, 32 KiB data cache, 4 AXI
    /// data interfaces, 1 CU.
    fn default() -> Self {
        Self {
            compute_units: 1,
            pes_per_cu: 8,
            wavefront_size: 64,
            max_wavefronts_per_cu: 8,
            cache_kib: 64,
            axi_data_interfaces: 4,
            memory_controllers: 1,
            allow_extended_cus: false,
        }
    }
}

impl fmt::Display for GgpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "G-GPU {} CU x {} PE, WF {}, cache {} KiB, {} AXI",
            self.compute_units,
            self.pes_per_cu,
            self.wavefront_size,
            self.cache_kib,
            self.axi_data_interfaces
        )
    }
}

/// Configuration constraint violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `compute_units` was zero.
    ZeroComputeUnits,
    /// `compute_units` exceeded 8 without `allow_extended_cus`.
    TooManyComputeUnits(u32),
    /// `pes_per_cu` must be a power of two.
    BadPeCount(u32),
    /// `wavefront_size` must be a power-of-two multiple of the PE
    /// count.
    BadWavefrontSize(u32),
    /// `max_wavefronts_per_cu` was zero.
    BadWavefrontCount(u32),
    /// `cache_kib` must be a nonzero power of two.
    BadCacheSize(u32),
    /// `axi_data_interfaces` must be 1–4.
    BadAxiCount(u32),
    /// `memory_controllers` must be 1 or 2.
    BadControllerCount(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroComputeUnits => f.write_str("compute unit count must be nonzero"),
            ConfigError::TooManyComputeUnits(n) => write!(
                f,
                "{n} compute units exceeds the supported range of 8 (set allow_extended_cus to opt in)"
            ),
            ConfigError::BadPeCount(n) => {
                write!(f, "PE count {n} must be a nonzero power of two")
            }
            ConfigError::BadWavefrontSize(n) => write!(
                f,
                "wavefront size {n} must be a power-of-two multiple of the PE count"
            ),
            ConfigError::BadWavefrontCount(n) => {
                write!(f, "resident wavefront count {n} must be nonzero")
            }
            ConfigError::BadCacheSize(n) => {
                write!(f, "cache size {n} KiB must be a nonzero power of two")
            }
            ConfigError::BadAxiCount(n) => {
                write!(f, "AXI data interface count {n} must be 1-4")
            }
            ConfigError::BadControllerCount(n) => {
                write!(f, "memory controller count {n} must be 1 or 2")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GgpuConfig::default().validate().is_ok());
    }

    #[test]
    fn paper_cu_counts_are_valid() {
        for n in [1, 2, 4, 8] {
            assert!(GgpuConfig::with_cus(n).is_ok(), "{n} CUs");
        }
    }

    #[test]
    fn nine_cus_need_opt_in() {
        assert_eq!(
            GgpuConfig::with_cus(9).unwrap_err(),
            ConfigError::TooManyComputeUnits(9)
        );
        let cfg = GgpuConfig {
            compute_units: 16,
            allow_extended_cus: true,
            ..GgpuConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_cus_rejected() {
        assert_eq!(
            GgpuConfig::with_cus(0).unwrap_err(),
            ConfigError::ZeroComputeUnits
        );
    }

    #[test]
    fn wavefront_must_be_multiple_of_pes() {
        let cfg = GgpuConfig {
            wavefront_size: 24,
            ..GgpuConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadWavefrontSize(24))
        ));
    }

    #[test]
    fn cache_must_be_power_of_two() {
        let cfg = GgpuConfig {
            cache_kib: 48,
            ..GgpuConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadCacheSize(48))));
    }

    #[test]
    fn axi_range() {
        for bad in [0, 5] {
            let cfg = GgpuConfig {
                axi_data_interfaces: bad,
                ..GgpuConfig::default()
            };
            assert!(matches!(cfg.validate(), Err(ConfigError::BadAxiCount(_))));
        }
    }

    #[test]
    fn names_and_display() {
        let cfg = GgpuConfig::with_cus(8).unwrap();
        assert_eq!(cfg.design_name(), "ggpu_8cu");
        assert!(cfg.to_string().contains("8 CU"));
        assert_eq!(cfg.max_work_items_per_cu(), 512);
    }
}
