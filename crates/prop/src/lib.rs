//! Self-contained deterministic property-testing support.
//!
//! The workspace builds in fully offline environments, so the external
//! `proptest`/`rand` crates are replaced by this minimal harness: a
//! [`Rng`] built on splitmix64 plus a [`cases`] runner that derives one
//! reproducible seed per case. A failing case prints its case index and
//! seed; re-running is deterministic, so failures always reproduce.
//!
//! # Example
//!
//! ```
//! use ggpu_prop::{cases, Rng};
//!
//! cases(64, |rng| {
//!     let a = rng.u32_in(0, 1000);
//!     let b = rng.u32_in(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::ops::RangeInclusive;

/// Default number of cases per property (override per call site, or
/// globally with the `GGPU_PROP_CASES` environment variable).
pub const DEFAULT_CASES: u32 = 128;

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            // Avoid the all-zero orbit start without losing determinism.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Modulo bias is negligible for test-scale spans (< 2^32).
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u128;
        (lo as i128 + (u128::from(self.next_u64()) % (span + 1)) as i128) as i64
    }

    /// Uniform `i32` in `[lo, hi]` (inclusive).
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(i64::from(lo), i64::from(hi)) as i32
    }

    /// Arbitrary `u32` over the full domain.
    pub fn any_u32(&mut self) -> u32 {
        self.next_u32()
    }

    /// Arbitrary `i32` over the full domain.
    pub fn any_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Arbitrary `i16` over the full domain.
    pub fn any_i16(&mut self) -> i16 {
        self.next_u32() as u16 as i16
    }

    /// Arbitrary `u16` over the full domain.
    pub fn any_u16(&mut self) -> u16 {
        self.next_u32() as u16
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Uniform choice from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// Uniform choice from a non-empty slice, by value.
    pub fn pick_copy<T: Copy>(&mut self, items: &[T]) -> T {
        *self.pick(items)
    }

    /// A vector of `len_range`-many values drawn from `gen`.
    pub fn vec_of<T>(
        &mut self,
        len_range: RangeInclusive<usize>,
        mut gen: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(*len_range.start(), *len_range.end());
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Prints the failing case's reproduction data if the closure panics.
struct CaseReporter {
    case: u32,
    seed: u64,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "ggpu-prop: property failed at case {} (rng seed {:#018x}); \
                 cases are deterministic, rerun to reproduce",
                self.case, self.seed
            );
        }
    }
}

fn case_count(requested: u32) -> u32 {
    match std::env::var("GGPU_PROP_CASES") {
        Ok(v) => v.parse().unwrap_or(requested),
        Err(_) => requested,
    }
    .max(1)
}

/// Runs `property` once per case with a per-case deterministic RNG.
///
/// The case budget can be scaled globally with `GGPU_PROP_CASES`.
pub fn cases(n: u32, mut property: impl FnMut(&mut Rng)) {
    for case in 0..case_count(n) {
        let seed = 0x6770_7550_6C61_6E21 ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let reporter = CaseReporter { case, seed };
        let mut rng = Rng::seeded(seed);
        property(&mut rng);
        drop(reporter);
    }
}

/// [`cases`] with the default budget.
pub fn check(property: impl FnMut(&mut Rng)) {
    cases(DEFAULT_CASES, property);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_inclusive_and_in_bounds() {
        let mut rng = Rng::seeded(42);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.u32_in(3, 7);
            assert!((3..=7).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 7;
        }
        assert!(saw_lo && saw_hi, "both endpoints must be reachable");
        for _ in 0..2000 {
            let v = rng.i32_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_draws_cover_sign_bit() {
        let mut rng = Rng::seeded(1);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..100 {
            let v = rng.any_i32();
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng::seeded(3);
        for _ in 0..200 {
            let v = rng.vec_of(1..=4, |r| r.any_u32());
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn cases_runs_the_requested_count() {
        let mut count = 0;
        if std::env::var("GGPU_PROP_CASES").is_err() {
            cases(17, |_| count += 1);
            assert_eq!(count, 17);
        }
    }

    #[test]
    fn pick_is_uniformish() {
        let mut rng = Rng::seeded(9);
        let items = [1u32, 2, 3];
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[(rng.pick_copy(&items) - 1) as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "counts {counts:?}");
        }
    }
}
