//! The static kernel verifier: CFG + dataflow passes over a SIMT
//! program.
//!
//! Checks (stable codes, see [`crate::diag::Code`]):
//!
//! * **K009** empty program — the very first fetch faults.
//! * **K005** branch/jump targets outside the program.
//! * **K004** reachable fallthrough off the end (missing `ret`).
//! * **K003** unreachable instructions.
//! * **K001** may-uninitialized register reads (definite-assignment
//!   forward dataflow; `r0` is exempt as the zero-idiom register — the
//!   simulator zero-initializes the register file, so this is a smell,
//!   not a fault).
//! * **K002** dead stores (backward liveness; only side-effect-free
//!   writes are flagged, and `r0` writes are exempt so `nop` stays
//!   clean).
//! * **K006** divergence-depth estimate above
//!   [`DIVERGENCE_DEPTH_LIMIT`] (longest forward-edge path counting
//!   lane-varying branches).
//! * **K008** barrier inside lane-divergent control flow: a `bar`
//!   reachable from a lane-varying branch that it does not
//!   post-dominate (the simulator faults with `DivergentBarrier`).
//! * **K010/K011/K012** abstract-interpretation checks — proven or
//!   possible out-of-bounds access, misaligned word access, and the
//!   flow-sensitive LRAM race that replaced K007's syntactic check
//!   (see [`crate::absint`]).
//!
//! Soundness note used by the property suite: a program with no
//! K004/K005/K009 findings cannot raise `SimError::PcOutOfRange`,
//! because every reachable instruction's successors stay inside the
//! program or end at `ret`.

use crate::absint::AnalysisCtx;
use crate::cfg::{BitSet, Cfg};
use crate::diag::{Code, LintConfig, Report};
use ggpu_isa::asm::{assemble, AssembleError};
use ggpu_isa::inst::{IdSource, Inst, Reg};

/// K006 threshold: estimated nesting depth of lane-varying branches
/// above which a kernel is reported as divergence-heavy. The shipped
/// paper kernels peak at 5.
pub const DIVERGENCE_DEPTH_LIMIT: u32 = 8;

/// Registers an instruction reads.
fn uses(inst: &Inst) -> impl Iterator<Item = Reg> {
    let regs: [Option<Reg>; 2] = match *inst {
        Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
        Inst::AluImm { rs1, .. } => [Some(rs1), None],
        Inst::Lui { .. } | Inst::ReadId { .. } | Inst::Param { .. } => [None, None],
        Inst::Lw { rs1, .. } | Inst::Lwl { rs1, .. } => [Some(rs1), None],
        Inst::Sw { rs1, rs2, .. } | Inst::Swl { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
        Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
        Inst::Jmp { .. } | Inst::Bar | Inst::Ret => [None, None],
    };
    regs.into_iter().flatten()
}

/// The register an instruction writes, if any.
fn def(inst: &Inst) -> Option<Reg> {
    match *inst {
        Inst::Alu { rd, .. }
        | Inst::AluImm { rd, .. }
        | Inst::Lui { rd, .. }
        | Inst::ReadId { rd, .. }
        | Inst::Param { rd, .. }
        | Inst::Lw { rd, .. }
        | Inst::Lwl { rd, .. } => Some(rd),
        _ => None,
    }
}

/// `true` if the instruction's only effect is its register write, so a
/// dead destination makes the whole instruction dead. Loads are
/// excluded: they can fault and they perturb the memory system.
fn is_pure_def(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { .. }
            | Inst::AluImm { .. }
            | Inst::Lui { .. }
            | Inst::ReadId { .. }
            | Inst::Param { .. }
    )
}

/// Fixpoint of the lane-variance taint: bit `r` set iff register `r`
/// may hold a value that differs across the work-items of one
/// wavefront. Seeds: `gid`/`lid` reads. Loads are conservatively
/// varying (memory contents are unknown).
fn lane_varying(program: &[Inst]) -> u32 {
    let mut varying: u32 = 0;
    loop {
        let before = varying;
        for inst in program {
            let tainted = |r: Reg| varying & (1 << r.index()) != 0;
            let out = match *inst {
                Inst::ReadId { src, .. } => {
                    matches!(src, IdSource::GlobalId | IdSource::LocalId)
                }
                Inst::Alu { rs1, rs2, .. } => tainted(rs1) || tainted(rs2),
                Inst::AluImm { rs1, .. } => tainted(rs1),
                Inst::Lw { .. } | Inst::Lwl { .. } => true,
                Inst::Lui { .. } | Inst::Param { .. } => false,
                _ => false,
            };
            if out {
                if let Some(rd) = def(inst) {
                    varying |= 1 << rd.index();
                }
            }
        }
        if varying == before {
            return varying;
        }
    }
}

/// Verifies one assembled program under `config` with the default
/// (launch-agnostic) analysis context, producing a [`Report`] named
/// `name`.
pub fn verify_program(name: &str, program: &[Inst], config: &LintConfig) -> Report {
    verify_program_with_ctx(name, program, config, &AnalysisCtx::default())
}

/// Verifies one assembled program with launch facts pinned by `ctx`
/// (a known parameter block or geometry sharpens the K010–K012
/// verdicts).
pub fn verify_program_with_ctx(
    name: &str,
    program: &[Inst],
    config: &LintConfig,
    ctx: &AnalysisCtx,
) -> Report {
    verify_impl(name, program, config, Some(ctx))
}

/// The PR-2-era verifier without the abstract-interpretation pass —
/// kept callable so `lint_bench` can measure the absint overhead
/// against the dataflow-only baseline.
pub fn verify_program_classic(name: &str, program: &[Inst], config: &LintConfig) -> Report {
    verify_impl(name, program, config, None)
}

fn verify_impl(
    name: &str,
    program: &[Inst],
    config: &LintConfig,
    ctx: Option<&AnalysisCtx>,
) -> Report {
    let mut report = Report::new(name);
    if program.is_empty() {
        report.push(
            config,
            Code::K009,
            "empty program: the first fetch falls outside the program",
            None,
            None,
        );
        return report;
    }
    let cfg = Cfg::build(program);
    let reachable = cfg.reachable();

    // K005: static branch-target bounds.
    for &(i, target) in &cfg.bad_targets {
        report.push(
            config,
            Code::K005,
            format!(
                "control-flow target {target} outside program of {} instructions",
                cfg.len
            ),
            Some(i),
            None,
        );
    }

    // K004: reachable fallthrough off the end of the program.
    for &i in &cfg.off_end {
        if reachable.contains(i) {
            report.push(
                config,
                Code::K004,
                "reachable path falls through the end of the program (missing `ret`)",
                Some(i),
                None,
            );
        }
    }

    // K003: unreachable instructions, reported as contiguous ranges.
    let mut i = 0;
    while i < cfg.len {
        if !reachable.contains(i) {
            let start = i;
            while i < cfg.len && !reachable.contains(i) {
                i += 1;
            }
            let msg = if i - start == 1 {
                format!("unreachable instruction {start}")
            } else {
                format!("unreachable instructions {start}..{i}")
            };
            report.push(config, Code::K003, msg, Some(start), None);
        } else {
            i += 1;
        }
    }

    check_uninitialized_reads(program, &cfg, &reachable, config, &mut report);
    check_dead_stores(program, &cfg, &reachable, config, &mut report);
    check_divergence(program, &cfg, &reachable, config, &mut report);
    if let Some(ctx) = ctx {
        crate::absint::check_kernel(program, &cfg, &reachable, ctx, config, &mut report);
    }
    report.sort_canonical();
    report
}

/// Assembles and verifies `source`.
///
/// # Errors
///
/// Returns [`AssembleError`] if the source does not assemble; lint
/// findings are never assembly errors.
pub fn verify_asm(
    name: &str,
    source: &str,
    config: &LintConfig,
) -> Result<(Vec<Inst>, Report), AssembleError> {
    let program = assemble(source)?;
    let report = verify_program(name, &program, config);
    Ok((program, report))
}

/// K001: definite-assignment forward dataflow (meet = intersection).
fn check_uninitialized_reads(
    program: &[Inst],
    cfg: &Cfg,
    reachable: &BitSet,
    config: &LintConfig,
    report: &mut Report,
) {
    let n = cfg.len;
    let regs = usize::from(Reg::COUNT);
    // in[i]: registers definitely assigned on entry to instruction i.
    // Unreached-so-far nodes start at top (all registers) so the meet
    // only narrows along real paths. r0 counts as assigned everywhere:
    // it is the conventional zero register and the simulator
    // zero-initializes the file.
    let mut input: Vec<BitSet> = (0..=n).map(|_| BitSet::full(regs)).collect();
    let mut entry = BitSet::new(regs);
    entry.insert(0);
    input[0] = entry;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !reachable.contains(i) {
                continue;
            }
            let mut out = input[i].clone();
            if let Some(rd) = def(&program[i]) {
                out.insert(rd.index());
            }
            for &s in &cfg.succs[i] {
                if s == 0 {
                    continue; // entry keeps its boundary value
                }
                changed |= input[s].intersect_with(&out);
            }
        }
    }
    for (i, inst) in program.iter().enumerate() {
        if !reachable.contains(i) {
            continue;
        }
        for r in uses(inst) {
            if r.index() != 0 && !input[i].contains(r.index()) {
                report.push(
                    config,
                    Code::K001,
                    format!("{r} may be read before any assignment"),
                    Some(i),
                    None,
                );
            }
        }
    }
}

/// K002: backward liveness; a pure def whose destination is dead is a
/// dead store.
fn check_dead_stores(
    program: &[Inst],
    cfg: &Cfg,
    reachable: &BitSet,
    config: &LintConfig,
    report: &mut Report,
) {
    let n = cfg.len;
    let regs = usize::from(Reg::COUNT);
    // live_in[i]: registers whose value may still be read at entry to
    // instruction i. The exit node has nothing live.
    let mut live_in: Vec<BitSet> = (0..=n).map(|_| BitSet::new(regs)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = BitSet::new(regs);
            for &s in &cfg.succs[i] {
                out.union_with(&live_in[s]);
            }
            if let Some(rd) = def(&program[i]) {
                out.remove(rd.index());
            }
            for r in uses(&program[i]) {
                out.insert(r.index());
            }
            if out != live_in[i] {
                live_in[i] = out;
                changed = true;
            }
        }
    }
    for (i, inst) in program.iter().enumerate() {
        if !reachable.contains(i) || !is_pure_def(inst) {
            continue;
        }
        let Some(rd) = def(inst) else { continue };
        if rd.index() == 0 {
            continue; // `nop` assembles to a write of r0
        }
        let mut live_out = false;
        for &s in &cfg.succs[i] {
            if live_in[s].contains(rd.index()) {
                live_out = true;
                break;
            }
        }
        if !live_out {
            report.push(
                config,
                Code::K002,
                format!("store to {rd} is never read (dead store)"),
                Some(i),
                None,
            );
        }
    }
}

/// K006/K008: lane-variance-driven divergence checks.
fn check_divergence(
    program: &[Inst],
    cfg: &Cfg,
    reachable: &BitSet,
    config: &LintConfig,
    report: &mut Report,
) {
    let varying = lane_varying(program);
    let is_varying = |r: Reg| varying & (1 << r.index()) != 0;
    let varying_branches: Vec<usize> = program
        .iter()
        .enumerate()
        .filter(|(i, inst)| {
            reachable.contains(*i)
                && matches!(inst, Inst::Branch { rs1, rs2, .. }
                    if is_varying(*rs1) || is_varying(*rs2))
        })
        .map(|(i, _)| i)
        .collect();

    // K006: longest forward-edge path counting lane-varying branches —
    // a nesting-depth estimate that ignores loop back-edges.
    let n = cfg.len;
    let mut depth = vec![0u32; n + 1];
    for i in (0..n).rev() {
        let own = u32::from(varying_branches.contains(&i));
        let best = cfg.succs[i]
            .iter()
            .filter(|&&s| s > i)
            .map(|&s| depth[s])
            .max()
            .unwrap_or(0);
        depth[i] = own + best;
    }
    if reachable.contains(0) && depth[0] > DIVERGENCE_DEPTH_LIMIT {
        report.push(
            config,
            Code::K006,
            format!(
                "estimated divergence depth {} exceeds limit {DIVERGENCE_DEPTH_LIMIT}",
                depth[0]
            ),
            Some(0),
            None,
        );
    }

    // The old K007 syntactic race check (uniform-address `swl` of a
    // varying value over the taint bit) lived here; it is retired in
    // favor of the flow-sensitive K012 in `crate::absint`, which also
    // clears the tid-affine false positives the taint bit produced.

    // K008: a barrier reachable from a lane-varying branch that it
    // does not post-dominate sits in a divergent region.
    let bars: Vec<usize> = program
        .iter()
        .enumerate()
        .filter(|(i, inst)| reachable.contains(*i) && matches!(inst, Inst::Bar))
        .map(|(i, _)| i)
        .collect();
    if !bars.is_empty() && !varying_branches.is_empty() {
        let pdom = cfg.post_dominators();
        for &b in &bars {
            for &v in &varying_branches {
                if reaches(cfg, v, b) && !pdom[v].contains(b) {
                    report.push(
                        config,
                        Code::K008,
                        format!(
                            "barrier is control-dependent on the lane-varying branch at {v}: \
                             lanes can arrive split"
                        ),
                        Some(b),
                        None,
                    );
                    break;
                }
            }
        }
    }
}

/// `true` if `to` is reachable from `from` (excluding the trivial
/// zero-length path).
fn reaches(cfg: &Cfg, from: usize, to: usize) -> bool {
    let mut seen = BitSet::new(cfg.len + 1);
    let mut stack: Vec<usize> = cfg.succs[from].clone();
    while let Some(i) = stack.pop() {
        if i == to {
            return true;
        }
        if seen.contains(i) {
            continue;
        }
        seen.insert(i);
        stack.extend(cfg.succs[i].iter().copied());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn lint(src: &str) -> Report {
        verify_asm("t", src, &LintConfig::new()).unwrap().1
    }

    #[test]
    fn clean_kernel_is_clean() {
        let r = lint(
            "
            gid   r1
            param r2, 0
            slli  r3, r1, 2
            add   r3, r3, r2
            lw    r4, r3, 0
            sw    r3, r4, 4
            ret
            ",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn empty_program_is_k009() {
        let r = lint("; nothing here");
        assert_eq!(r.codes(), vec![Code::K009]);
        assert_eq!(r.denial_count(), 1);
    }

    #[test]
    fn fallthrough_off_end_is_k004() {
        let r = lint("gid r1\naddi r2, r1, 1");
        let k004 = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::K004)
            .expect("K004 reported");
        assert_eq!(k004.severity, Severity::Deny);
    }

    #[test]
    fn unreachable_fallthrough_is_only_k003() {
        // The dead tail cannot fault, so it is a warning, not a K004.
        let r = lint("ret\nnop");
        assert!(r.has(Code::K003));
        assert!(!r.has(Code::K004));
        assert_eq!(r.denial_count(), 0);
    }

    #[test]
    fn trailing_label_jump_is_k005() {
        let r = lint("jmp off\nret\noff:");
        assert!(r.has(Code::K005));
    }

    #[test]
    fn uninit_read_is_k001_but_r0_is_exempt() {
        let r = lint("add r2, r1, r1\nret");
        assert!(r.has(Code::K001));
        let r = lint("addi r2, r0, 5\nsw r2, r2, 0\nret");
        assert!(!r.has(Code::K001), "{r}");
    }

    #[test]
    fn one_path_uninit_read_is_k001() {
        let r = lint(
            "
            gid  r1
            beq  r1, r0, skip
            addi r2, r0, 7
            skip:
            add  r3, r2, r1   ; r2 unset when the branch is taken
            sw   r1, r3, 0
            ret
            ",
        );
        assert!(r.has(Code::K001), "{r}");
    }

    #[test]
    fn dead_store_is_k002_but_nop_is_exempt() {
        let r = lint("addi r5, r0, 1\nret");
        assert!(r.has(Code::K002));
        let r = lint("nop\nret");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn loop_induction_variable_is_not_dead() {
        let r = lint(
            "
            addi r1, r0, 0
            addi r2, r0, 10
            loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            ret
            ",
        );
        assert!(!r.has(Code::K002), "{r}");
    }

    #[test]
    fn racey_local_store_is_k012() {
        let r = lint(
            "
            lid  r1
            addi r2, r0, 64   ; lane-uniform address
            swl  r2, r1, 0    ; lane-varying value
            ret
            ",
        );
        assert!(r.has(Code::K012), "{r}");
        assert!(!r.has(Code::K007), "K007 is retired: {r}");
        // Lane-distinct tid-affine address: each work-item owns its
        // word — the case the old taint bit could not prove.
        let r = lint(
            "
            lid  r1
            slli r2, r1, 2
            swl  r2, r1, 0
            ret
            ",
        );
        assert!(!r.has(Code::K012), "{r}");
    }

    #[test]
    fn divergent_barrier_is_k008() {
        let r = lint(
            "
            lid  r1
            beq  r1, r0, skip
            bar               ; only the nonzero lanes arrive
            skip:
            ret
            ",
        );
        assert!(r.has(Code::K008), "{r}");
        // A barrier that post-dominates the varying branch is fine.
        let r = lint(
            "
            lid  r1
            beq  r1, r0, join
            addi r2, r0, 1
            sw   r1, r2, 0
            join:
            bar
            ret
            ",
        );
        assert!(!r.has(Code::K008), "{r}");
    }

    #[test]
    fn deep_divergence_is_k006() {
        // 9 nested lane-varying branches exceed the limit of 8.
        let mut src = String::from("gid r1\n");
        for i in 0..9 {
            src.push_str(&format!("blt r1, r1, l{i}\n"));
        }
        for i in 0..9 {
            src.push_str(&format!("l{i}:\n"));
        }
        src.push_str("ret\n");
        let r = lint(&src);
        assert!(r.has(Code::K006), "{r}");
    }

    #[test]
    fn verify_asm_propagates_assembler_errors() {
        assert!(verify_asm("t", "frobnicate r1", &LintConfig::new()).is_err());
    }
}
