//! Flow invariants: post-transform checks asserted after every
//! GPUPlanner step.
//!
//! The planner's two transforms are supposed to be PPA-neutral in
//! specific, checkable ways (the paper's §III):
//!
//! * *memory division* replaces one macro by `k` smaller ones holding
//!   the same data — the **total macro bits** of the design must not
//!   change (N005);
//! * *pipeline insertion* splits one timing path in two around a new
//!   register — the number of **macro timing endpoints** must not
//!   change and exactly **one path** is added (N006).
//!
//! [`FlowSnapshot`] captures the cheap structural totals before a
//! step; [`check_division`]/[`check_pipeline`] compare snapshots and
//! return diagnostics on violation. The DSE loop aborts the plan when
//! any check denies.

use crate::diag::{Code, LintConfig, Report};
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::Design;

/// Structural totals of a design, cheap to capture (one hierarchy
/// walk, no clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSnapshot {
    /// Total macro storage under the top, in bits, counting every
    /// instantiation.
    pub total_macro_bits: u64,
    /// Total macro instantiations under the top.
    pub macro_count: u64,
    /// Timing-path endpoints of kind [`PathEndpoint::Macro`], summed
    /// over module definitions.
    pub macro_endpoints: u64,
    /// Timing paths, summed over module definitions.
    pub path_count: u64,
}

impl FlowSnapshot {
    /// Captures the totals of `design`.
    pub fn of(design: &Design) -> Self {
        let mut total_macro_bits = 0u64;
        let mut macro_count = 0u64;
        design.visit_instances(|_, id| {
            for mac in &design.module(id).macros {
                total_macro_bits += mac.config.capacity_bits();
                macro_count += 1;
            }
        });
        let mut macro_endpoints = 0u64;
        let mut path_count = 0u64;
        for id in design.module_ids() {
            for path in &design.module(id).paths {
                path_count += 1;
                for endpoint in [&path.start, &path.end] {
                    if matches!(endpoint, PathEndpoint::Macro(_)) {
                        macro_endpoints += 1;
                    }
                }
            }
        }
        Self {
            total_macro_bits,
            macro_count,
            macro_endpoints,
            path_count,
        }
    }
}

/// Checks the memory-division invariant between two snapshots,
/// appending findings about `step` to `report`.
///
/// Division must preserve total macro bits (N005) while the macro
/// count strictly grows.
pub fn check_division(
    before: FlowSnapshot,
    after: FlowSnapshot,
    step: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    if after.total_macro_bits != before.total_macro_bits {
        report.push(
            config,
            Code::N005,
            format!(
                "division `{step}` changed total macro bits: {} -> {}",
                before.total_macro_bits, after.total_macro_bits
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.macro_count <= before.macro_count {
        report.push(
            config,
            Code::N005,
            format!(
                "division `{step}` did not add macros: {} -> {}",
                before.macro_count, after.macro_count
            ),
            None,
            Some(step.to_string()),
        );
    }
}

/// Checks the pipeline-insertion invariant between two snapshots,
/// appending findings about `step` to `report`.
///
/// Insertion must preserve macro endpoints and total macro bits and
/// add exactly one timing path (the split halves) (N006).
pub fn check_pipeline(
    before: FlowSnapshot,
    after: FlowSnapshot,
    step: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    if after.macro_endpoints != before.macro_endpoints {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` changed macro timing endpoints: {} -> {}",
                before.macro_endpoints, after.macro_endpoints
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.path_count != before.path_count + 1 {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` must add exactly one path: {} -> {}",
                before.path_count, after.path_count
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.total_macro_bits != before.total_macro_bits {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` changed total macro bits: {} -> {}",
                before.total_macro_bits, after.total_macro_bits
            ),
            None,
            Some(step.to_string()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, TimingPath};
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;

    fn design_with_ram(words: u32) -> Design {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(words, 32),
            MemoryRole::Other,
            0.5,
        ));
        m.paths.push(TimingPath::new(
            "p",
            PathEndpoint::Macro("ram".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 6, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        d
    }

    #[test]
    fn snapshot_counts_hierarchy() {
        let snap = FlowSnapshot::of(&design_with_ram(256));
        assert_eq!(snap.total_macro_bits, 256 * 32);
        assert_eq!(snap.macro_count, 1);
        assert_eq!(snap.macro_endpoints, 1);
        assert_eq!(snap.path_count, 1);
    }

    #[test]
    fn division_that_loses_bits_is_n005() {
        let before = FlowSnapshot::of(&design_with_ram(256));
        let after = FlowSnapshot::of(&design_with_ram(128));
        let mut report = Report::new("t");
        check_division(before, after, "m/ram x2", &LintConfig::new(), &mut report);
        assert!(report.has(Code::N005));
        assert!(report.denial_count() >= 1);
    }

    #[test]
    fn real_division_passes() {
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::divide_macro(&mut d, id, "ram", 2, ggpu_synth::DivideAxis::Words).unwrap();
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_division(before, after, "m/ram x2", &LintConfig::new(), &mut report);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn real_pipeline_passes_and_fake_fails() {
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::insert_pipeline(&mut d, id, "p").unwrap();
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_pipeline(before, after, "m/p", &LintConfig::new(), &mut report);
        assert!(report.is_clean(), "{report}");
        // A no-op "pipeline" fails the one-path-added invariant.
        let mut report = Report::new("t");
        check_pipeline(before, before, "m/p", &LintConfig::new(), &mut report);
        assert!(report.has(Code::N006));
    }
}
