//! Flow invariants: post-transform checks asserted after every
//! GPUPlanner step.
//!
//! The planner's transforms are supposed to be PPA-neutral in
//! specific, checkable ways (the paper's §III):
//!
//! * *memory division* replaces one macro by `k` smaller ones holding
//!   the same data — the **total macro bits** of the design must not
//!   change (N005);
//! * *pipeline insertion* splits one timing path in two around a new
//!   register — the number of **macro timing endpoints** must not
//!   change and exactly **one path** is added (N006);
//! * *memory banking* re-banks a logical memory into word-interleaved
//!   banks — total macro bits are preserved while the **port budget**
//!   grows by exactly the added banks' ports (N009).
//!
//! [`FlowSnapshot`] captures the cheap structural totals before a
//! step; [`check_division`]/[`check_pipeline`]/[`check_banking`]
//! compare snapshots and return diagnostics on violation. The DSE
//! loop aborts the plan when any check denies.

use crate::diag::{Code, LintConfig, Report};
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::Design;

/// Structural totals of a design, cheap to capture (one hierarchy
/// walk, no clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSnapshot {
    /// Total macro storage under the top, in bits, counting every
    /// instantiation.
    pub total_macro_bits: u64,
    /// Total macro instantiations under the top.
    pub macro_count: u64,
    /// Total macro ports under the top (1 per single-ported macro,
    /// 2 per dual-ported) — the concurrency budget banking grows.
    pub macro_ports: u64,
    /// Timing-path endpoints of kind [`PathEndpoint::Macro`], summed
    /// over module definitions.
    pub macro_endpoints: u64,
    /// Timing paths, summed over module definitions.
    pub path_count: u64,
}

impl FlowSnapshot {
    /// Captures the totals of `design`.
    pub fn of(design: &Design) -> Self {
        let mut total_macro_bits = 0u64;
        let mut macro_count = 0u64;
        let mut macro_ports = 0u64;
        design.visit_instances(|_, id| {
            for mac in &design.module(id).macros {
                total_macro_bits += mac.config.capacity_bits();
                macro_count += 1;
                macro_ports += u64::from(mac.config.port_count());
            }
        });
        let mut macro_endpoints = 0u64;
        let mut path_count = 0u64;
        for id in design.module_ids() {
            for path in &design.module(id).paths {
                path_count += 1;
                for endpoint in [&path.start, &path.end] {
                    if matches!(endpoint, PathEndpoint::Macro(_)) {
                        macro_endpoints += 1;
                    }
                }
            }
        }
        Self {
            total_macro_bits,
            macro_count,
            macro_ports,
            macro_endpoints,
            path_count,
        }
    }
}

/// Checks the memory-division invariant between two snapshots,
/// appending findings about `step` to `report`.
///
/// Division must preserve total macro bits (N005) while the macro
/// count strictly grows.
pub fn check_division(
    before: FlowSnapshot,
    after: FlowSnapshot,
    step: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    if after.total_macro_bits != before.total_macro_bits {
        report.push(
            config,
            Code::N005,
            format!(
                "division `{step}` changed total macro bits: {} -> {}",
                before.total_macro_bits, after.total_macro_bits
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.macro_count <= before.macro_count {
        report.push(
            config,
            Code::N005,
            format!(
                "division `{step}` did not add macros: {} -> {}",
                before.macro_count, after.macro_count
            ),
            None,
            Some(step.to_string()),
        );
    }
}

/// Checks the pipeline-insertion invariant between two snapshots,
/// appending findings about `step` to `report`.
///
/// Insertion must preserve macro endpoints and total macro bits and
/// add exactly one timing path (the split halves) (N006).
pub fn check_pipeline(
    before: FlowSnapshot,
    after: FlowSnapshot,
    step: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    if after.macro_endpoints != before.macro_endpoints {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` changed macro timing endpoints: {} -> {}",
                before.macro_endpoints, after.macro_endpoints
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.path_count != before.path_count + 1 {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` must add exactly one path: {} -> {}",
                before.path_count, after.path_count
            ),
            None,
            Some(step.to_string()),
        );
    }
    if after.total_macro_bits != before.total_macro_bits {
        report.push(
            config,
            Code::N006,
            format!(
                "pipeline `{step}` changed total macro bits: {} -> {}",
                before.total_macro_bits, after.total_macro_bits
            ),
            None,
            Some(step.to_string()),
        );
    }
}

/// Checks the memory-banking invariant between two snapshots,
/// appending findings about `step` to `report`.
///
/// Banking replaces each of a structure's macros by `banks` smaller,
/// word-interleaved ones: total macro bits must not change, the macro
/// count must grow by a multiple of `banks - 1`, and the port budget
/// must grow by exactly the added macros' ports (`group_ports` per
/// added bank) (N009).
pub fn check_banking(
    before: FlowSnapshot,
    after: FlowSnapshot,
    banks: u32,
    group_ports: u32,
    step: &str,
    config: &LintConfig,
    report: &mut Report,
) {
    if after.total_macro_bits != before.total_macro_bits {
        report.push(
            config,
            Code::N009,
            format!(
                "banking `{step}` changed total macro bits: {} -> {}",
                before.total_macro_bits, after.total_macro_bits
            ),
            None,
            Some(step.to_string()),
        );
    }
    let added = after.macro_count.saturating_sub(before.macro_count);
    if added == 0 || (banks > 1 && !added.is_multiple_of(u64::from(banks - 1))) {
        report.push(
            config,
            Code::N009,
            format!(
                "banking `{step}` (x{banks}) added a non-multiple of {} macros: {} -> {}",
                banks - 1,
                before.macro_count,
                after.macro_count
            ),
            None,
            Some(step.to_string()),
        );
    }
    let expected_ports = before.macro_ports + added * u64::from(group_ports);
    if after.macro_ports != expected_ports {
        report.push(
            config,
            Code::N009,
            format!(
                "banking `{step}` broke the port budget: expected {expected_ports} \
                 ({} + {added} x {group_ports}), got {}",
                before.macro_ports, after.macro_ports
            ),
            None,
            Some(step.to_string()),
        );
    }
}

/// One recorded fallback of the flow supervisor's degradation ladder,
/// in the linter's plain-data terms (the planner owns the rich type;
/// the linter gates on the facts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationStep {
    /// Flow stage that degraded (`"plan"`, `"implement"`, …).
    pub stage: String,
    /// The configured engine that failed (`"placer=analytical"`).
    pub from: String,
    /// The fallback that ran instead (`"placer=legacy"`).
    pub to: String,
    /// Why the ladder stepped down.
    pub reason: String,
}

/// The flow-supervision gate (N010): every degradation a supervised
/// run recorded becomes one finding, so a degraded result can never
/// pass CI silently — `--deny warn` promotes these to denials, and a
/// clean run contributes nothing.
pub fn check_supervision(steps: &[DegradationStep], config: &LintConfig, report: &mut Report) {
    for step in steps {
        report.push(
            config,
            Code::N010,
            format!(
                "flow degraded at stage `{}`: {} -> {} ({})",
                step.stage, step.from, step.to, step.reason
            ),
            None,
            Some(step.stage.clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, TimingPath};
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;

    fn design_with_ram(words: u32) -> Design {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(words, 32),
            MemoryRole::Other,
            0.5,
        ));
        m.paths.push(TimingPath::new(
            "p",
            PathEndpoint::Macro("ram".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 6, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        d
    }

    #[test]
    fn snapshot_counts_hierarchy() {
        let snap = FlowSnapshot::of(&design_with_ram(256));
        assert_eq!(snap.total_macro_bits, 256 * 32);
        assert_eq!(snap.macro_count, 1);
        assert_eq!(snap.macro_endpoints, 1);
        assert_eq!(snap.path_count, 1);
    }

    #[test]
    fn division_that_loses_bits_is_n005() {
        let before = FlowSnapshot::of(&design_with_ram(256));
        let after = FlowSnapshot::of(&design_with_ram(128));
        let mut report = Report::new("t");
        check_division(before, after, "m/ram x2", &LintConfig::new(), &mut report);
        assert!(report.has(Code::N005));
        assert!(report.denial_count() >= 1);
    }

    #[test]
    fn real_division_passes() {
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::divide_macro(&mut d, id, "ram", 2, ggpu_synth::DivideAxis::Words).unwrap();
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_division(before, after, "m/ram x2", &LintConfig::new(), &mut report);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn real_banking_passes() {
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        assert_eq!(before.macro_ports, 2, "dual-ported ram");
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::bank_macro(&mut d, id, "ram", 4).unwrap();
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_banking(
            before,
            after,
            4,
            2,
            "m/ram x4",
            &LintConfig::new(),
            &mut report,
        );
        assert!(report.is_clean(), "{report}");
        assert_eq!(after.macro_ports, 8, "4 dual-ported banks");
    }

    #[test]
    fn banking_that_loses_bits_is_n009() {
        // Seeded bug: a "banking" that halved capacity instead of
        // splitting it (each bank kept words/4 of a half-sized array).
        let before = FlowSnapshot::of(&design_with_ram(256));
        let after = FlowSnapshot::of(&{
            let mut d = design_with_ram(128);
            let id = d.module_by_name("m").unwrap();
            ggpu_synth::bank_macro(&mut d, id, "ram", 4).unwrap();
            d
        });
        let mut report = Report::new("t");
        check_banking(
            before,
            after,
            4,
            2,
            "m/ram x4",
            &LintConfig::new(),
            &mut report,
        );
        assert!(report.has(Code::N009));
        assert!(report.denial_count() >= 1);
    }

    #[test]
    fn banking_that_downgrades_ports_is_n009() {
        // Seeded bug: the bank compiler silently downgraded the dual-
        // ported parent to single-ported banks — capacity checks out,
        // the port budget does not.
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::bank_macro(&mut d, id, "ram", 2).unwrap();
        for name in ["ram_b0", "ram_b1"] {
            let mac = d.module_mut(id).find_macro_mut(name).unwrap();
            mac.config = SramConfig::single(mac.config.words, mac.config.bits);
        }
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_banking(
            before,
            after,
            2,
            2,
            "m/ram x2",
            &LintConfig::new(),
            &mut report,
        );
        assert!(report.has(Code::N009), "{report}");
    }

    #[test]
    fn noop_banking_is_n009() {
        let before = FlowSnapshot::of(&design_with_ram(256));
        let mut report = Report::new("t");
        check_banking(
            before,
            before,
            4,
            2,
            "m/ram x4",
            &LintConfig::new(),
            &mut report,
        );
        assert!(report.has(Code::N009), "a no-op banking added no macros");
    }

    #[test]
    fn real_pipeline_passes_and_fake_fails() {
        let mut d = design_with_ram(256);
        let before = FlowSnapshot::of(&d);
        let id = d.module_by_name("m").unwrap();
        ggpu_synth::insert_pipeline(&mut d, id, "p").unwrap();
        let after = FlowSnapshot::of(&d);
        let mut report = Report::new("t");
        check_pipeline(before, after, "m/p", &LintConfig::new(), &mut report);
        assert!(report.is_clean(), "{report}");
        // A no-op "pipeline" fails the one-path-added invariant.
        let mut report = Report::new("t");
        check_pipeline(before, before, "m/p", &LintConfig::new(), &mut report);
        assert!(report.has(Code::N006));
    }
}
