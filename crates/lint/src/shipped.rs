//! The 8 shipped paper kernels, shared with `ggpu-kernels`.
//!
//! The kernel sources live as `.s` files under
//! `crates/kernels/src/kernels/asm/` and are `include_str!`-ed both by
//! the `ggpu-kernels` benchmark crate and here — one source of truth,
//! no dependency edge (`ggpu-kernels` depends on `ggpu-simt`, which
//! depends on this crate; depending back on `ggpu-kernels` would be a
//! cycle).

use crate::diag::LintConfig;
use crate::kernel::verify_asm;
use crate::Report;

/// `(name, assembler source)` of the paper's Table-II kernels.
pub const SHIPPED_KERNELS: [(&str, &str); 8] = [
    ("copy", include_str!("../../kernels/src/kernels/asm/copy.s")),
    (
        "vec_mul",
        include_str!("../../kernels/src/kernels/asm/vec_mul.s"),
    ),
    (
        "div_int",
        include_str!("../../kernels/src/kernels/asm/div_int.s"),
    ),
    ("fir", include_str!("../../kernels/src/kernels/asm/fir.s")),
    (
        "mat_mul",
        include_str!("../../kernels/src/kernels/asm/mat_mul.s"),
    ),
    (
        "mat_mul_local",
        include_str!("../../kernels/src/kernels/asm/mat_mul_local.s"),
    ),
    (
        "parallel_sel",
        include_str!("../../kernels/src/kernels/asm/parallel_sel.s"),
    ),
    (
        "xcorr",
        include_str!("../../kernels/src/kernels/asm/xcorr.s"),
    ),
];

/// Verifies every shipped kernel under `config`, returning one report
/// per kernel in table order.
///
/// # Panics
///
/// Panics if a shipped kernel no longer assembles — that is a build
/// break, not a lint finding.
pub fn verify_shipped(config: &LintConfig) -> Vec<Report> {
    SHIPPED_KERNELS
        .iter()
        .map(|(name, src)| {
            verify_asm(name, src, config)
                .unwrap_or_else(|e| panic!("shipped kernel {name} must assemble: {e}"))
                .1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_kernels_assemble() {
        for (name, src) in SHIPPED_KERNELS {
            assert!(
                ggpu_isa::asm::assemble(src).is_ok(),
                "kernel {name} must assemble"
            );
        }
    }

    #[test]
    fn shipped_kernels_are_clean_even_under_strict_policy() {
        for report in verify_shipped(&LintConfig::strict()) {
            assert!(report.is_clean(), "{report}");
        }
    }
}
