//! Instruction-level control-flow graph over a SIMT program.
//!
//! Each instruction is a node; a virtual *exit* node `n` (one past the
//! last instruction) represents clean termination via `ret`. Edges
//! follow the simulator's fetch rules: straight-line instructions fall
//! through, branches fork, jumps redirect, `ret` goes to the exit.
//! Out-of-range targets and off-end fallthroughs get **no** edge —
//! they are reported separately (K004/K005) and excluding them keeps
//! every dataflow pass well-defined on the remaining graph.

use ggpu_isa::inst::Inst;

/// A small dense bitset over node/register indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub(crate) fn full(len: usize) -> Self {
        let mut set = Self::new(len);
        for i in 0..len {
            set.insert(i);
        }
        set
    }

    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self &= other`; returns `true` if `self` changed.
    pub(crate) fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w & *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self |= other`; returns `true` if `self` changed.
    pub(crate) fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists, indexed by instruction; index `n` (the exit
    /// node) has none.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists (transpose of `succs`).
    pub preds: Vec<Vec<usize>>,
    /// Number of real instructions (the exit node is index `len`).
    pub len: usize,
    /// Instruction indices whose execution would fall through the end
    /// of the program (fetch at `pc == len` faults). K004 material.
    pub off_end: Vec<usize>,
    /// `(instruction, target)` pairs whose branch/jump target lies
    /// outside the program. K005 material.
    pub bad_targets: Vec<(usize, u32)>,
}

impl Cfg {
    /// Builds the CFG for `program`.
    pub fn build(program: &[Inst]) -> Self {
        let n = program.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut off_end = Vec::new();
        let mut bad_targets = Vec::new();
        for (i, inst) in program.iter().enumerate() {
            match inst {
                Inst::Ret => succs[i].push(n),
                Inst::Jmp { target } => {
                    let t = *target as usize;
                    if t < n {
                        succs[i].push(t);
                    } else {
                        bad_targets.push((i, *target));
                    }
                }
                Inst::Branch { target, .. } => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    } else {
                        off_end.push(i);
                    }
                    let t = *target as usize;
                    if t < n {
                        if !succs[i].contains(&t) {
                            succs[i].push(t);
                        }
                    } else {
                        bad_targets.push((i, *target));
                    }
                }
                _ => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    } else {
                        off_end.push(i);
                    }
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }
        Self {
            succs,
            preds,
            len: n,
            off_end,
            bad_targets,
        }
    }

    /// Nodes reachable from the entry (instruction 0); the exit node
    /// `len` is included when some `ret` is reachable.
    pub(crate) fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.len + 1);
        if self.len == 0 {
            return seen;
        }
        let mut stack = vec![0usize];
        seen.insert(0);
        while let Some(i) = stack.pop() {
            for &s in &self.succs[i] {
                if !seen.contains(s) {
                    seen.insert(s);
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Post-dominator sets: `pdom[i]` contains `j` iff every path from
    /// `i` to the exit passes through `j` (every node post-dominates
    /// itself). Nodes that cannot reach the exit keep the full set.
    pub(crate) fn post_dominators(&self) -> Vec<BitSet> {
        let total = self.len + 1;
        let mut pdom: Vec<BitSet> = (0..total).map(|_| BitSet::full(total)).collect();
        let mut exit_only = BitSet::new(total);
        exit_only.insert(self.len);
        pdom[self.len] = exit_only;
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..self.len).rev() {
                let mut meet: Option<BitSet> = None;
                for &s in &self.succs[i] {
                    match &mut meet {
                        None => meet = Some(pdom[s].clone()),
                        Some(m) => {
                            m.intersect_with(&pdom[s]);
                        }
                    }
                }
                let mut next = meet.unwrap_or_else(|| BitSet::full(total));
                next.insert(i);
                if next != pdom[i] {
                    pdom[i] = next;
                    changed = true;
                }
            }
        }
        pdom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::asm::assemble;

    #[test]
    fn straight_line_chains_to_exit() {
        let p = assemble("nop\nnop\nret").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.succs[0], vec![1]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert_eq!(cfg.succs[2], vec![3], "ret edges to the exit node");
        assert!(cfg.off_end.is_empty());
        assert!(cfg.bad_targets.is_empty());
    }

    #[test]
    fn branch_forks_and_jump_redirects() {
        let p = assemble("beq r0, r0, skip\nnop\nskip: jmp end\nend: ret").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.succs[0], vec![1, 2]);
        assert_eq!(cfg.succs[2], vec![3]);
        assert_eq!(cfg.preds[2], vec![0, 1]);
    }

    #[test]
    fn off_end_and_bad_targets_are_collected() {
        let p = assemble("nop\nnop").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.off_end, vec![1]);
        // A trailing label resolves to index n: a jump there is a bad
        // target, not an edge.
        let p = assemble("jmp off\nret\noff:").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.bad_targets, vec![(0, 2)]);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn reachability_skips_dead_code() {
        let p = assemble("jmp end\nnop\nend: ret").unwrap();
        let cfg = Cfg::build(&p);
        let reach = cfg.reachable();
        assert!(reach.contains(0));
        assert!(!reach.contains(1));
        assert!(reach.contains(2));
        assert!(reach.contains(3), "exit reachable through ret");
    }

    #[test]
    fn post_dominators_of_a_diamond() {
        // 0: branch -> (1 fallthrough, 2 target); 1: jmp 3; 2: nop; 3: ret
        let p = assemble("beq r0, r0, b\njmp join\nb: nop\njoin: ret").unwrap();
        let cfg = Cfg::build(&p);
        let pdom = cfg.post_dominators();
        // The join (3) post-dominates the branch (0); the arms do not.
        assert!(pdom[0].contains(3));
        assert!(!pdom[0].contains(1));
        assert!(!pdom[0].contains(2));
        assert!(pdom[0].contains(4), "exit post-dominates everything");
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(129);
        let mut b = BitSet::new(130);
        b.insert(129);
        assert!(a.intersect_with(&b));
        assert!(!a.contains(0));
        assert!(a.contains(129));
        a.remove(129);
        assert!(!a.contains(129));
        let full = BitSet::full(130);
        let mut c = BitSet::new(130);
        assert!(c.union_with(&full));
        assert!(c.contains(64));
    }
}
