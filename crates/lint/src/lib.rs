//! `ggpu-lint`: static analysis for the G-GPU reproduction.
//!
//! Two analyzers with stable diagnostic codes:
//!
//! * the **kernel verifier** ([`kernel`]) builds a control-flow graph
//!   over an assembled SIMT program and runs dataflow passes —
//!   uninitialized reads, dead stores, unreachable code, missing-`ret`
//!   paths, branch-target bounds, divergence depth, divergent barriers
//!   (`K001`–`K009`) — plus the abstract interpreter ([`absint`]):
//!   proven/possible out-of-bounds and misalignment, the
//!   flow-sensitive local-memory race, and per-access coalescing /
//!   bank-conflict summaries (`K010`–`K012`);
//! * the **design linter** ([`design`]) checks netlist structure and
//!   numerics — duplicate names, dangling references, SRAM compiler
//!   range, activity sanity (`N001`–`N004`, `N007`), resilience
//!   coverage under an ECC policy (`N008`) — and [`flow`] asserts
//!   post-transform invariants after every GPUPlanner step
//!   (`N005`–`N006`).
//!
//! Both are wired as *pre-flight gates*: `ggpu_simt::Kernel::
//! from_asm_verified` rejects deny-level kernels before they reach the
//! simulator, and `GpuPlanner::plan` lints the generated and the
//! optimized netlist. The `ggpu-lint` binary runs the same checks from
//! the command line (CI uses `--all-kernels --deny warn`).
//!
//! ```
//! use ggpu_lint::{verify_asm, Code, LintConfig};
//!
//! let (_, report) = verify_asm("demo", "gid r1\nsw r1, r1, 0", &LintConfig::new()).unwrap();
//! assert!(report.has(Code::K004)); // falls through the end: missing ret
//! assert!(report.denial_count() > 0);
//! ```

pub mod absint;
pub mod cache;
pub mod cfg;
pub mod design;
pub mod diag;
pub mod flow;
pub mod kernel;
pub mod shipped;

pub use absint::{
    analyze, AnalysisCtx, CoalescingClass, KernelAnalysis, MemAccessSummary, MemSpace,
};
pub use cache::{verify_cache_stats, verify_program_cached};
pub use cfg::Cfg;
pub use design::{lint_design, lint_resilience};
pub use diag::{Code, Diagnostic, LintConfig, Report, Severity};
pub use flow::{
    check_banking, check_division, check_pipeline, check_supervision, DegradationStep, FlowSnapshot,
};
pub use kernel::{
    verify_asm, verify_program, verify_program_classic, verify_program_with_ctx,
    DIVERGENCE_DEPTH_LIMIT,
};
pub use shipped::{verify_shipped, SHIPPED_KERNELS};
