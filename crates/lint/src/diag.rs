//! Diagnostics: stable codes, severities, reports and configuration.
//!
//! Every finding of the kernel verifier ([`crate::kernel`]) or the
//! design linter ([`crate::design`]) is a [`Diagnostic`] carrying a
//! stable [`Code`] (`K…` for kernel checks, `N…` for netlist/flow
//! checks), an effective [`Severity`], a human-readable message and an
//! optional location (instruction index or hierarchical site).
//! Consumers gate on [`Report::denial_count`]; tooling consumes
//! [`Report::to_json`].

use std::collections::BTreeMap;
use std::fmt;

/// How severe a diagnostic is treated.
///
/// * `Deny` — the program/design is rejected (pre-flight gates fail).
/// * `Warn` — reported, does not fail by default; promoted to a denial
///   under [`LintConfig::warnings_are_denials`] (CI's `--deny warn`).
/// * `Allow` — the check is disabled; the diagnostic is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Check disabled.
    Allow,
    /// Report without failing.
    Warn,
    /// Reject.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable diagnostic codes.
///
/// `K…` codes come from the kernel verifier, `N…` codes from the
/// netlist/flow linter. Codes are append-only: a code's meaning never
/// changes once shipped, so corpus tests and CI greps stay valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// May-uninitialized register read (the register is not definitely
    /// assigned on some path; r0 is exempt as the zero-idiom register).
    K001,
    /// Dead store: a pure register write whose value is never read.
    K002,
    /// Unreachable instruction(s).
    K003,
    /// Missing `ret`: a reachable path falls through the end of the
    /// program (the simulator faults with `PcOutOfRange`).
    K004,
    /// Branch/jump target outside the program.
    K005,
    /// Estimated divergence depth exceeds the lint threshold.
    K006,
    /// Local-memory race: a `swl` writes a lane-uniform address with a
    /// lane-varying value, so work-items of one wavefront clobber the
    /// same word in an unordered way no barrier can serialize.
    K007,
    /// Barrier inside lane-divergent control flow (the simulator
    /// faults with `DivergentBarrier` when lanes arrive split).
    K008,
    /// Empty program (the very first fetch faults).
    K009,
    /// Out-of-bounds memory access proven (deny) or possible (capped
    /// at warn) by the abstract interpreter's value-range domain.
    K010,
    /// Misaligned word access proven (deny) or possible (capped at
    /// warn) by the stride/alignment domain.
    K011,
    /// Flow-sensitive local-memory race: a `swl` whose address is not
    /// provably lane-distinct stores a value that is neither
    /// lane-uniform nor determined by the address. Replaces K007's
    /// syntactic check.
    K012,
    /// Duplicate name: module, instance or macro.
    N001,
    /// Dangling reference: a child instance or a timing-path endpoint
    /// names a missing module/macro.
    N002,
    /// SRAM macro geometry outside the 65 nm compiler's legal range
    /// (16–65536 words × 2–144 bits).
    N003,
    /// Invalid activity value (non-finite or outside `[0, 1]`).
    N004,
    /// Flow invariant: memory division must preserve total macro bits.
    N005,
    /// Flow invariant: pipeline insertion must preserve macro timing
    /// endpoints and add exactly one path.
    N006,
    /// Design has no top module or the instantiation graph is cyclic.
    N007,
    /// Resilience coverage: an SRAM macro is left without ECC/parity
    /// while a resilience target is configured (the ECC policy
    /// resolves its role to `none`). Only emitted by the resilience
    /// lint, which callers invoke when a target exists.
    N008,
    /// Flow invariant: memory banking must preserve total macro bits
    /// and grow the port budget by exactly the added banks' ports.
    N009,
    /// Flow supervision: the supervised flow fell back from a
    /// configured engine to a degraded one (analytical placer → shelf,
    /// SoA backend → scalar, incremental STA → legacy full, beam →
    /// greedy). Degradations are legitimate — that is the point of the
    /// ladder — but must never be silent: each one surfaces here and
    /// in the datasheet, and CI's `--deny warn` turns a degraded run
    /// into a failure.
    N010,
}

impl Code {
    /// Every code, in order.
    pub const ALL: [Code; 22] = [
        Code::K001,
        Code::K002,
        Code::K003,
        Code::K004,
        Code::K005,
        Code::K006,
        Code::K007,
        Code::K008,
        Code::K009,
        Code::K010,
        Code::K011,
        Code::K012,
        Code::N001,
        Code::N002,
        Code::N003,
        Code::N004,
        Code::N005,
        Code::N006,
        Code::N007,
        Code::N008,
        Code::N009,
        Code::N010,
    ];

    /// The stable textual form (`"K001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::K001 => "K001",
            Code::K002 => "K002",
            Code::K003 => "K003",
            Code::K004 => "K004",
            Code::K005 => "K005",
            Code::K006 => "K006",
            Code::K007 => "K007",
            Code::K008 => "K008",
            Code::K009 => "K009",
            Code::K010 => "K010",
            Code::K011 => "K011",
            Code::K012 => "K012",
            Code::N001 => "N001",
            Code::N002 => "N002",
            Code::N003 => "N003",
            Code::N004 => "N004",
            Code::N005 => "N005",
            Code::N006 => "N006",
            Code::N007 => "N007",
            Code::N008 => "N008",
            Code::N009 => "N009",
            Code::N010 => "N010",
        }
    }

    /// Parses the textual form back to a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity a fresh [`LintConfig`] assigns this code.
    ///
    /// Code-smell checks (uninitialized reads, dead stores,
    /// unreachable code, deep divergence) default to `Warn`; checks
    /// whose violation provably faults the simulator or corrupts the
    /// flow default to `Deny`.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::K001 | Code::K002 | Code::K003 | Code::K006 | Code::N008 | Code::N010 => {
                Severity::Warn
            }
            Code::K004
            | Code::K005
            | Code::K007
            | Code::K008
            | Code::K009
            | Code::K010
            | Code::K011
            | Code::K012
            | Code::N001
            | Code::N002
            | Code::N003
            | Code::N004
            | Code::N005
            | Code::N006
            | Code::N007
            | Code::N009 => Severity::Deny,
        }
    }

    /// `true` for codes no pass emits anymore. Retired codes keep
    /// their slot (codes are append-only) and can still be configured,
    /// but corpus-coverage tests skip them.
    pub fn retired(self) -> bool {
        // K007's syntactic race check is subsumed by the
        // flow-sensitive K012.
        self == Code::K007
    }

    /// One-line description for `--help`/docs.
    pub fn description(self) -> &'static str {
        match self {
            Code::K001 => "may-uninitialized register read",
            Code::K002 => "dead store (pure write never read)",
            Code::K003 => "unreachable instruction(s)",
            Code::K004 => "reachable path falls through end of program",
            Code::K005 => "branch/jump target outside program",
            Code::K006 => "divergence depth exceeds threshold",
            Code::K007 => "retired: syntactic local-store race, superseded by K012",
            Code::K008 => "barrier inside divergent control flow",
            Code::K009 => "empty program",
            Code::K010 => "out-of-bounds memory access (proven or possible)",
            Code::K011 => "misaligned word access (proven or possible)",
            Code::K012 => "flow-sensitive local-memory race",
            Code::N001 => "duplicate module/instance/macro name",
            Code::N002 => "dangling module/macro reference",
            Code::N003 => "SRAM geometry outside compiler range",
            Code::N004 => "invalid activity value",
            Code::N005 => "memory division changed total macro bits",
            Code::N006 => "pipeline insertion broke timing endpoints",
            Code::N007 => "missing top module or instantiation cycle",
            Code::N008 => "SRAM macro without ECC/parity under a resilience target",
            Code::N009 => "memory banking changed stored bits or port budget",
            Code::N010 => "flow supervision degraded a stage to a fallback engine",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Effective severity (after [`LintConfig`] overrides; never
    /// `Allow` — allowed diagnostics are dropped).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Offending instruction index, for kernel diagnostics.
    pub inst: Option<usize>,
    /// Offending site (module/macro/path name), for design diagnostics.
    pub site: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        if let Some(i) = self.inst {
            write!(f, " (inst {i})")?;
        }
        if let Some(site) = &self.site {
            write!(f, " (at {site})")?;
        }
        Ok(())
    }
}

/// Severity policy: per-code overrides plus the CI-style "warnings are
/// denials" switch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LintConfig {
    /// Per-code severity overrides.
    pub overrides: BTreeMap<Code, Severity>,
    /// Promote every `Warn` to `Deny` (CI's `--deny warn`).
    pub warnings_are_denials: bool,
}

impl LintConfig {
    /// The default policy ([`Code::default_severity`], warnings stay
    /// warnings).
    pub fn new() -> Self {
        Self::default()
    }

    /// The CI policy: defaults with warnings promoted to denials.
    pub fn strict() -> Self {
        Self {
            overrides: BTreeMap::new(),
            warnings_are_denials: true,
        }
    }

    /// Overrides one code's severity (builder style).
    pub fn with_override(mut self, code: Code, severity: Severity) -> Self {
        self.overrides.insert(code, severity);
        self
    }

    /// The severity this policy assigns `code`.
    pub fn severity(&self, code: Code) -> Severity {
        let base = self
            .overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity());
        if base == Severity::Warn && self.warnings_are_denials {
            Severity::Deny
        } else {
            base
        }
    }
}

/// All findings for one subject (a kernel or a design).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Subject name (kernel or design name).
    pub subject: String,
    /// Findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Self {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding under the policy `config`; `Allow`-severity
    /// findings are dropped.
    pub fn push(
        &mut self,
        config: &LintConfig,
        code: Code,
        message: impl Into<String>,
        inst: Option<usize>,
        site: Option<String>,
    ) {
        let severity = config.severity(code);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            message: message.into(),
            inst,
            site,
        });
    }

    /// Records a finding whose effective severity is capped at `cap`:
    /// the policy severity applies first (an `Allow` override still
    /// drops the finding), then the cap. Used for "possible"-tier
    /// findings of deny-by-default codes, which must stay warnings
    /// under the default policy yet still fail `--deny warn`.
    pub fn push_at_most(
        &mut self,
        config: &LintConfig,
        code: Code,
        cap: Severity,
        message: impl Into<String>,
        inst: Option<usize>,
        site: Option<String>,
    ) {
        let base = config
            .overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity());
        if base == Severity::Allow {
            return;
        }
        let mut severity = base.min(cap);
        if severity == Severity::Warn && config.warnings_are_denials {
            severity = Severity::Deny;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            message: message.into(),
            inst,
            site,
        });
    }

    /// Sorts findings into the canonical order used by `--json`
    /// output: by instruction (program order, subject-level findings
    /// last), then code, then site, then message. Deterministic for
    /// any pass ordering.
    pub fn sort_canonical(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.inst.map_or(usize::MAX, |i| i),
                    d.code,
                    d.site.clone(),
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// `true` if no diagnostics were recorded.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of deny-level findings.
    pub fn denial_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// `true` if any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The codes present, deduplicated and sorted.
    pub fn codes(&self) -> Vec<Code> {
        let mut codes: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// Machine-readable JSON (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"subject\":");
        json_string(&mut out, &self.subject);
        out.push_str(",\"denials\":");
        out.push_str(&self.denial_count().to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"message\":");
            json_string(&mut out, &d.message);
            match d.inst {
                Some(n) => {
                    out.push_str(",\"inst\":");
                    out.push_str(&n.to_string());
                }
                None => out.push_str(",\"inst\":null"),
            }
            match &d.site {
                Some(s) => {
                    out.push_str(",\"site\":");
                    json_string(&mut out, s);
                }
                None => out.push_str(",\"site\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{}: clean", self.subject);
        }
        writeln!(
            f,
            "{}: {} finding(s), {} denial(s)",
            self.subject,
            self.diagnostics.len(),
            self.denial_count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Writes `s` as a JSON string literal into `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_through_text() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
        }
        assert_eq!(Code::parse("K999"), None);
    }

    #[test]
    fn strict_config_promotes_warnings() {
        let default = LintConfig::new();
        let strict = LintConfig::strict();
        assert_eq!(default.severity(Code::K001), Severity::Warn);
        assert_eq!(strict.severity(Code::K001), Severity::Deny);
        assert_eq!(strict.severity(Code::K004), Severity::Deny);
    }

    #[test]
    fn allow_override_drops_diagnostics() {
        let config = LintConfig::new().with_override(Code::K001, Severity::Allow);
        let mut report = Report::new("x");
        report.push(&config, Code::K001, "dropped", None, None);
        report.push(&config, Code::K004, "kept", Some(3), None);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.denial_count(), 1);
        assert!(report.has(Code::K004));
        assert!(!report.has(Code::K001));
    }

    #[test]
    fn push_at_most_caps_then_promotes() {
        // Default policy: deny-by-default code capped to warn.
        let mut r = Report::new("x");
        r.push_at_most(
            &LintConfig::new(),
            Code::K010,
            Severity::Warn,
            "m",
            Some(0),
            None,
        );
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
        assert_eq!(r.denial_count(), 0);
        // Strict policy: the capped warning is promoted back to deny.
        let mut r = Report::new("x");
        r.push_at_most(
            &LintConfig::strict(),
            Code::K010,
            Severity::Warn,
            "m",
            Some(0),
            None,
        );
        assert_eq!(r.denial_count(), 1);
        // Allow override still drops it.
        let config = LintConfig::new().with_override(Code::K010, Severity::Allow);
        let mut r = Report::new("x");
        r.push_at_most(&config, Code::K010, Severity::Warn, "m", Some(0), None);
        assert!(r.is_clean());
    }

    #[test]
    fn canonical_sort_is_program_order_then_code() {
        let config = LintConfig::new();
        let mut r = Report::new("x");
        r.push(&config, Code::K009, "subject-level", None, None);
        r.push(&config, Code::K005, "later", Some(4), None);
        r.push(
            &config,
            Code::K002,
            "same inst, smaller code",
            Some(4),
            None,
        );
        r.push(&config, Code::K004, "earlier", Some(1), None);
        r.sort_canonical();
        let order: Vec<(Option<usize>, Code)> =
            r.diagnostics.iter().map(|d| (d.inst, d.code)).collect();
        assert_eq!(
            order,
            vec![
                (Some(1), Code::K004),
                (Some(4), Code::K002),
                (Some(4), Code::K005),
                (None, Code::K009),
            ]
        );
    }

    #[test]
    fn json_escapes_and_structures() {
        let config = LintConfig::new();
        let mut report = Report::new("k\"1");
        report.push(&config, Code::K005, "bad \"target\"", Some(2), None);
        let json = report.to_json();
        assert!(json.contains("\"subject\":\"k\\\"1\""));
        assert!(json.contains("\"code\":\"K005\""));
        assert!(json.contains("\"inst\":2"));
        assert!(json.contains("\"denials\":1"));
    }

    #[test]
    fn display_mentions_code_and_site() {
        let d = Diagnostic {
            code: Code::N003,
            severity: Severity::Deny,
            message: "words 8 below minimum".into(),
            inst: None,
            site: Some("cu0/rf_bank0".into()),
        };
        let text = d.to_string();
        assert!(text.contains("N003"));
        assert!(text.contains("cu0/rf_bank0"));
    }
}
