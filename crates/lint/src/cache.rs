//! Memoized kernel verification.
//!
//! The DSE loop re-lints the same kernels once per candidate netlist
//! (before/after gates), and `Kernel::from_asm_verified` re-verifies
//! every construction of the same source. The full verifier now runs
//! several fixpoints (dataflow + the abstract interpreter), so
//! repeated identical runs are pure waste: this module keys a
//! process-wide cache on a hash of the program *and* the lint policy
//! and replays the stored [`Report`].
//!
//! Collision discipline: the map key is the pair hash, but each entry
//! stores the full `(program, config)` it was computed from and a
//! lookup re-checks equality — a hash collision degrades to a miss,
//! never to a wrong report.

use crate::diag::{LintConfig, Report};
use crate::kernel::verify_program;
use ggpu_isa::inst::Inst;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One memoized verification result.
struct Entry {
    program: Vec<Inst>,
    config: LintConfig,
    report: Report,
}

static CACHE: OnceLock<Mutex<HashMap<u64, Vec<Entry>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<u64, Vec<Entry>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key(program: &[Inst], config: &LintConfig) -> u64 {
    let mut h = DefaultHasher::new();
    program.hash(&mut h);
    config.hash(&mut h);
    h.finish()
}

/// Verifies `program` under `config` with the default launch-agnostic
/// [`crate::absint::AnalysisCtx`], memoized process-wide. The cached
/// report is renamed to `name` on replay, so distinct call sites see
/// their own subject while sharing the analysis work. Callers with
/// exact launch facts use `verify_program_with_ctx` directly — a
/// per-launch context would fragment the cache across launches of the
/// same kernel.
pub fn verify_program_cached(name: &str, program: &[Inst], config: &LintConfig) -> Report {
    let k = key(program, config);
    if let Ok(map) = cache().lock() {
        if let Some(entries) = map.get(&k) {
            if let Some(e) = entries
                .iter()
                .find(|e| e.program == program && e.config == *config)
            {
                HITS.fetch_add(1, Ordering::Relaxed);
                let mut report = e.report.clone();
                report.subject = name.to_string();
                return report;
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let report = verify_program(name, program, config);
    if let Ok(mut map) = cache().lock() {
        map.entry(k).or_default().push(Entry {
            program: program.to_vec(),
            config: config.clone(),
            report: report.clone(),
        });
    }
    report
}

/// `(hits, misses)` counters of the process-wide verification cache.
/// Only results computed through [`verify_program_cached`] are
/// counted.
pub fn verify_cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::asm::assemble;

    #[test]
    fn cache_replays_identical_reports_and_counts_hits() {
        let program = assemble("gid r1\nslli r2, r1, 2\nlw r3, r2, 0\nsw r2, r3, 4\nret").unwrap();
        let config = LintConfig::new();
        let (_, m0) = verify_cache_stats();
        let a = verify_program_cached("first", &program, &config);
        let (h1, m1) = verify_cache_stats();
        assert_eq!(m1, m0 + 1);
        let b = verify_program_cached("second", &program, &config);
        let (h2, _) = verify_cache_stats();
        assert_eq!(h2, h1 + 1);
        assert_eq!(a.diagnostics, b.diagnostics);
        assert_eq!(b.subject, "second");
        // Direct verification agrees with the replay.
        let direct = verify_program("second", &program, &config);
        assert_eq!(direct.diagnostics, b.diagnostics);
    }

    #[test]
    fn different_policies_do_not_share_entries() {
        let program = assemble("addi r5, r0, 1\nret").unwrap(); // K002 warn
        let relaxed = verify_program_cached("t", &program, &LintConfig::new());
        let strict = verify_program_cached("t", &program, &LintConfig::strict());
        assert_eq!(relaxed.denial_count(), 0);
        assert_eq!(strict.denial_count(), 1);
    }
}
