//! The netlist linter: structural and numeric invariants over a
//! [`Design`].
//!
//! Unlike [`Design::validate`], which stops at the first structural
//! error, the linter walks the whole design and reports *every*
//! finding, so a planner pre-flight gate can show the complete damage
//! of a bad transform in one pass.
//!
//! Checks:
//!
//! * **N001** duplicate module / child-instance / macro names.
//! * **N002** dangling references: a child instance pointing outside
//!   the arena, or a timing-path [`PathEndpoint::Macro`] naming a
//!   macro absent from its module.
//! * **N003** SRAM geometry outside the 65 nm memory compiler's legal
//!   range (16–65536 words × 2–144 bits, the paper's §III limits).
//! * **N004** non-finite or out-of-`[0, 1]` activity values on cell
//!   groups and macros.
//! * **N007** missing top module or a cyclic instantiation graph.

use crate::diag::{Code, LintConfig, Report};
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::{Design, EccPolicy};
use ggpu_tech::sram::EccScheme;
use std::collections::HashSet;

/// Lints `design` under `config`.
pub fn lint_design(design: &Design, config: &LintConfig) -> Report {
    let mut report = Report::new(design.name());

    // N001: duplicate module names.
    let mut module_names: HashSet<&str> = HashSet::new();
    for id in design.module_ids() {
        let m = design.module(id);
        if !module_names.insert(&m.name) {
            report.push(
                config,
                Code::N001,
                format!("duplicate module name `{}`", m.name),
                None,
                Some(m.name.clone()),
            );
        }
    }

    for id in design.module_ids() {
        let module = design.module(id);

        // N001: duplicate child-instance and macro names.
        let mut inst_names: HashSet<&str> = HashSet::new();
        for child in &module.children {
            if !inst_names.insert(&child.name) {
                report.push(
                    config,
                    Code::N001,
                    format!("duplicate instance name `{}`", child.name),
                    None,
                    Some(format!("{}/{}", module.name, child.name)),
                );
            }
            // N002: dangling child.
            if child.module.index() >= design.module_count() {
                report.push(
                    config,
                    Code::N002,
                    format!("instance `{}` refers to a missing module", child.name),
                    None,
                    Some(format!("{}/{}", module.name, child.name)),
                );
            }
        }
        let mut macro_names: HashSet<&str> = HashSet::new();
        for mac in &module.macros {
            if !macro_names.insert(&mac.name) {
                report.push(
                    config,
                    Code::N001,
                    format!("duplicate macro name `{}`", mac.name),
                    None,
                    Some(format!("{}/{}", module.name, mac.name)),
                );
            }
            // N003: compiler range.
            if let Err(e) = mac.config.validate() {
                report.push(
                    config,
                    Code::N003,
                    format!(
                        "macro `{}` ({}x{}b) outside the memory-compiler range: {e}",
                        mac.name, mac.config.words, mac.config.bits
                    ),
                    None,
                    Some(format!("{}/{}", module.name, mac.name)),
                );
            }
            // N004: macro access activity.
            if !mac.access_activity.is_finite() || !(0.0..=1.0).contains(&mac.access_activity) {
                report.push(
                    config,
                    Code::N004,
                    format!(
                        "macro `{}` has invalid access activity {}",
                        mac.name, mac.access_activity
                    ),
                    None,
                    Some(format!("{}/{}", module.name, mac.name)),
                );
            }
        }

        // N004: cell-group activity.
        for group in &module.groups {
            if !group.activity.is_finite() || !(0.0..=1.0).contains(&group.activity) {
                report.push(
                    config,
                    Code::N004,
                    format!(
                        "cell group `{}` has invalid activity {}",
                        group.name, group.activity
                    ),
                    None,
                    Some(format!("{}/{}", module.name, group.name)),
                );
            }
        }

        // N002: timing-path endpoints naming missing macros.
        for path in &module.paths {
            for (end, endpoint) in [("start", &path.start), ("end", &path.end)] {
                if let PathEndpoint::Macro(name) = endpoint {
                    if module.find_macro(name).is_none() {
                        report.push(
                            config,
                            Code::N002,
                            format!(
                                "path `{}` {end}s at macro `{name}` which is not in `{}`",
                                path.name, module.name
                            ),
                            None,
                            Some(format!("{}/{}", module.name, path.name)),
                        );
                    }
                }
            }
        }
    }

    // N007: missing top / instantiation cycles. Reuse the structural
    // validator for the graph walk, but only surface the cycle/top
    // classes here (the rest were already reported above, completely).
    match design.validate() {
        Err(ggpu_netlist::design::ValidateDesignError::MissingTop) => {
            report.push(config, Code::N007, "design has no top module", None, None);
        }
        Err(ggpu_netlist::design::ValidateDesignError::InstantiationCycle(m)) => {
            report.push(
                config,
                Code::N007,
                format!("instantiation cycle through module `{m}`"),
                None,
                Some(m),
            );
        }
        _ => {}
    }

    report
}

/// The resilience-coverage lint (**N008**): flags every SRAM macro
/// instance whose architectural role the ECC `policy` resolves to
/// [`EccScheme::None`].
///
/// Only call this when a resilience target is configured (a planner
/// spec with `resilience`, or the CLI's `--resilience`); an
/// unprotected design with no target is not a finding. Macro sites are
/// hierarchical instance paths, so an 8-CU design reports each exposed
/// bank instance, mirroring the fault-injection exposure map.
pub fn lint_resilience(design: &Design, policy: &EccPolicy, config: &LintConfig) -> Report {
    let mut report = Report::new(format!("{} (resilience)", design.name()));
    for (path, mac) in design.all_macros() {
        let scheme = policy.scheme_for(mac.role);
        if scheme == EccScheme::None {
            report.push(
                config,
                Code::N008,
                format!(
                    "macro `{}` ({}, {}x{}b) has no ECC/parity under policy `{policy}`",
                    mac.name, mac.role, mac.config.words, mac.config.bits
                ),
                None,
                Some(path),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, TimingPath};
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;

    fn config() -> LintConfig {
        LintConfig::new()
    }

    fn small_design() -> Design {
        let mut d = Design::new("t");
        let mut leaf = Module::new("leaf");
        leaf.macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(64, 32),
            MemoryRole::Other,
            0.5,
        ));
        leaf.paths.push(TimingPath::new(
            "read",
            PathEndpoint::Macro("ram".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 4, 2),
        ));
        let leaf = d.add_module(leaf);
        let mut top = Module::new("top");
        top.children.push(Instance {
            name: "u0".into(),
            module: leaf,
        });
        let top = d.add_module(top);
        d.set_top(top);
        d
    }

    #[test]
    fn well_formed_design_is_clean() {
        let r = lint_design(&small_design(), &config());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn missing_top_is_n007() {
        let d = Design::new("x");
        let r = lint_design(&d, &config());
        assert!(r.has(Code::N007));
    }

    #[test]
    fn illegal_sram_shapes_are_n003() {
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf).find_macro_mut("ram").unwrap().config = SramConfig::dual(8, 32);
        let r = lint_design(&d, &config());
        assert!(r.has(Code::N003), "{r}");
        // 8 words is below the compiler's 16-word minimum.
        assert_eq!(r.denial_count(), 1);
    }

    #[test]
    fn invalid_activity_is_n004() {
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf)
            .find_macro_mut("ram")
            .unwrap()
            .access_activity = f64::NAN;
        d.module_mut(leaf)
            .groups
            .push(CellGroup::new("glue", CellClass::Inv, 10, 0.1));
        d.module_mut(leaf).groups[0].activity = 1.5;
        let r = lint_design(&d, &config());
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|x| x.code == Code::N004)
                .count(),
            2
        );
    }

    #[test]
    fn dangling_path_macro_is_n002() {
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf).remove_macro("ram");
        let r = lint_design(&d, &config());
        assert!(r.has(Code::N002), "{r}");
    }

    #[test]
    fn duplicate_names_are_n001_and_all_reported() {
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        let dup = d.module(leaf).macros[0].clone();
        d.module_mut(leaf).macros.push(dup);
        let top = d.module_by_name("top").unwrap();
        let dup_inst = d.module(top).children[0].clone();
        d.module_mut(top).children.push(dup_inst);
        let r = lint_design(&d, &config());
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|x| x.code == Code::N001)
                .count(),
            2,
            "{r}"
        );
    }

    #[test]
    fn unprotected_policy_flags_every_macro_site_as_n008() {
        let d = small_design();
        let r = lint_resilience(&d, &EccPolicy::unprotected(), &config());
        assert!(r.has(Code::N008), "{r}");
        // One SRAM macro instantiated once → one exposed site, reported
        // at its hierarchical instance path.
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].site.as_deref(), Some("u0/ram"));
        // N008 defaults to warn: visible, but not a denial…
        assert_eq!(r.denial_count(), 0);
        // …unless the CI gate promotes warnings.
        let mut strict = config();
        strict.warnings_are_denials = true;
        let r = lint_resilience(&d, &EccPolicy::unprotected(), &strict);
        assert_eq!(r.denial_count(), 1);
    }

    #[test]
    fn protected_policy_is_clean() {
        let d = small_design();
        let r = lint_resilience(&d, &EccPolicy::uniform(EccScheme::SecDed), &config());
        assert!(r.is_clean(), "{r}");
        let r = lint_resilience(&d, &EccPolicy::uniform(EccScheme::Parity), &config());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn per_role_none_override_exposes_only_that_role() {
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf).macros.push(MacroInst::new(
            "rf",
            SramConfig::dual(64, 32),
            MemoryRole::RegisterFile,
            0.5,
        ));
        let covered = EccPolicy::uniform(EccScheme::SecDed);
        assert!(lint_resilience(&d, &covered, &config()).is_clean());
        let holey = covered.with_role(MemoryRole::Other, EccScheme::None);
        let r = lint_resilience(&d, &holey, &config());
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        assert_eq!(r.diagnostics[0].site.as_deref(), Some("u0/ram"));
    }

    #[test]
    fn n008_counts_each_exposed_instance() {
        // Instantiate the leaf twice: the same macro is exposed at two
        // hierarchical sites, mirroring the fault-injection map.
        let mut d = small_design();
        let leaf = d.module_by_name("leaf").unwrap();
        let top = d.module_by_name("top").unwrap();
        d.module_mut(top).children.push(Instance {
            name: "u1".into(),
            module: leaf,
        });
        let r = lint_resilience(&d, &EccPolicy::unprotected(), &config());
        assert_eq!(r.diagnostics.len(), 2, "{r}");
    }

    #[test]
    fn generated_ggpu_designs_are_clean() {
        for cus in [1u32, 4] {
            let design = ggpu_rtl::generate(&ggpu_rtl::GgpuConfig::with_cus(cus).unwrap()).unwrap();
            let r = lint_design(&design, &config());
            assert!(r.is_clean(), "{cus}-CU baseline: {r}");
        }
    }
}
