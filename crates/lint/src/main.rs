//! `ggpu-lint` — the command-line front end of the static analyzers.
//!
//! ```text
//! ggpu-lint --all-kernels              lint the 8 shipped paper kernels
//! ggpu-lint --asm FILE ...             lint assembler source files
//! ggpu-lint --design [CUS]             lint generated baseline netlists
//! ggpu-lint --resilience POLICY        also run the N008 coverage lint
//!                                      (POLICY: `secded`, or
//!                                      `default=parity,cache-data=none`)
//! ggpu-lint --deny warn                treat warnings as denials (CI)
//! ggpu-lint --allow K001 --deny-code K006   per-code severity overrides
//! ggpu-lint --json                     machine-readable output
//! ggpu-lint --list-codes               print the code table
//! ```
//!
//! Exit status: `0` when no deny-level diagnostic was emitted, `1`
//! otherwise, `2` on usage errors. The last line is always a summary
//! (`N programs, M denials`) so CI logs show the gate at a glance.

use ggpu_lint::{
    lint_design, lint_resilience, verify_asm, Code, LintConfig, Report, Severity, SHIPPED_KERNELS,
};
use ggpu_netlist::EccPolicy;
use std::process::ExitCode;

struct Options {
    all_kernels: bool,
    asm_files: Vec<String>,
    design_cus: Vec<u32>,
    resilience: Option<EccPolicy>,
    config: LintConfig,
    json: bool,
}

fn usage() -> &'static str {
    "usage: ggpu-lint [--all-kernels] [--asm FILE ...] [--design [CUS]] [--resilience POLICY]\n\
     \x20                [--deny warn] [--deny-code CODE] [--warn-code CODE] [--allow CODE]\n\
     \x20                [--json] [--list-codes]"
}

fn parse_code(tok: &str) -> Result<Code, String> {
    Code::parse(tok).ok_or_else(|| format!("unknown lint code `{tok}`"))
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        all_kernels: false,
        asm_files: Vec::new(),
        design_cus: Vec::new(),
        resilience: None,
        config: LintConfig::new(),
        json: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--all-kernels" => opts.all_kernels = true,
            "--asm" => {
                let file = value("--asm")?;
                opts.asm_files.push(file);
            }
            "--design" => {
                // Optional CU-count operand; default 1.
                if let Some(next) = args.get(i + 1).and_then(|a| a.parse::<u32>().ok()) {
                    i += 1;
                    opts.design_cus.push(next);
                } else {
                    opts.design_cus.push(1);
                }
            }
            "--resilience" => {
                let policy = value("--resilience")?;
                opts.resilience =
                    Some(EccPolicy::parse(&policy).map_err(|e| format!("--resilience: {e}"))?);
            }
            "--deny" => {
                let level = value("--deny")?;
                match level.as_str() {
                    "warn" => opts.config.warnings_are_denials = true,
                    other => return Err(format!("--deny takes `warn`, got `{other}`")),
                }
            }
            "--deny-code" => {
                let code = parse_code(&value("--deny-code")?)?;
                opts.config.overrides.insert(code, Severity::Deny);
            }
            "--warn-code" => {
                let code = parse_code(&value("--warn-code")?)?;
                opts.config.overrides.insert(code, Severity::Warn);
            }
            "--allow" => {
                let code = parse_code(&value("--allow")?)?;
                opts.config.overrides.insert(code, Severity::Allow);
            }
            "--json" => opts.json = true,
            "--list-codes" => {
                println!("code  default  description");
                for code in Code::ALL {
                    println!(
                        "{}  {:7}  {}",
                        code.as_str(),
                        code.default_severity().to_string(),
                        code.description()
                    );
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if !opts.all_kernels && opts.asm_files.is_empty() && opts.design_cus.is_empty() {
        return Err("nothing to lint (try --all-kernels)".into());
    }
    Ok(Some(opts))
}

fn collect_reports(opts: &Options) -> Result<Vec<Report>, String> {
    let mut reports = Vec::new();
    if opts.all_kernels {
        for (name, src) in SHIPPED_KERNELS {
            let (_, report) = verify_asm(name, src, &opts.config)
                .map_err(|e| format!("shipped kernel {name} failed to assemble: {e}"))?;
            reports.push(report);
        }
    }
    for file in &opts.asm_files {
        let src =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
        let (_, report) = verify_asm(file, &src, &opts.config)
            .map_err(|e| format!("`{file}` failed to assemble: {e}"))?;
        reports.push(report);
    }
    for &cus in &opts.design_cus {
        let config = ggpu_rtl::GgpuConfig::with_cus(cus)
            .map_err(|e| format!("invalid CU count {cus}: {e}"))?;
        let design =
            ggpu_rtl::generate(&config).map_err(|e| format!("generation ({cus} CUs): {e}"))?;
        // Kernel reports come pre-sorted from the verifier; design
        // reports are sorted here so the v2 JSON ordering guarantee
        // holds for every report in the envelope.
        let mut report = lint_design(&design, &opts.config);
        report.sort_canonical();
        reports.push(report);
        if let Some(policy) = &opts.resilience {
            let mut report = lint_resilience(&design, policy, &opts.config);
            report.sort_canonical();
            reports.push(report);
        }
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ggpu-lint: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let reports = match collect_reports(&opts) {
        Ok(reports) => reports,
        Err(msg) => {
            eprintln!("ggpu-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let denials: usize = reports.iter().map(Report::denial_count).sum();
    if opts.json {
        // schema_version history: 1 = the unversioned PR-2 envelope
        // {"reports":[...],"denials":N}; 2 = adds this field and
        // guarantees canonically-ordered diagnostics (program order,
        // then code) within every report.
        let mut out = String::from("{\"schema_version\":2,\"reports\":[");
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&report.to_json());
        }
        out.push_str("],\"denials\":");
        out.push_str(&denials.to_string());
        out.push('}');
        println!("{out}");
    } else {
        for report in &reports {
            println!("{report}");
        }
    }
    println!("{} programs, {} denials", reports.len(), denials);
    if denials > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
