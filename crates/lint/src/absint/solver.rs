//! Monotone-framework fixpoint solver over the kernel CFG.
//!
//! A classic worklist iteration: abstract register states propagate
//! along [`crate::cfg::Cfg`] edges, joins happen at merge points, and
//! targets of back-edges (any edge whose target index does not exceed
//! its source) widen after a short delay so loops terminate. Every
//! cycle in the CFG contains at least one such edge, which bounds the
//! ascending chains of the interval component.
//!
//! The uniform-load rule — a load from a lane-uniform address at a
//! lane-convergent site produces a lane-uniform value — couples the
//! fixpoint to divergence information that itself depends on the
//! fixpoint (a site is divergent when some lane-varying branch reaches
//! it without being post-dominated by it). [`solve`] iterates the two
//! to a joint fixpoint: run the dataflow assuming the current
//! divergent-site set, recompute the set from the resulting branch
//! lane shapes, and repeat until the (monotonically growing) set
//! stabilizes.

use super::domain::{expr_eq, AbsVal, Align, Expr, ExprKind, Interval, Lane};
use super::AnalysisCtx;
use crate::cfg::{BitSet, Cfg};
use ggpu_isa::inst::{AluOp, IdSource, Inst, Reg};

/// Number of state-changing joins at a widen point before widening
/// engages (lets short constant chains settle exactly first).
const WIDEN_DELAY: u32 = 2;

/// Joint fixpoint of the dataflow and the divergence classification.
pub(crate) struct Solution {
    /// Abstract register state on entry to each instruction (`None`
    /// when the solver never reached it).
    pub input: Vec<Option<Box<[AbsVal]>>>,
    /// `divergent[i]`: instruction `i` can execute with only a subset
    /// of the wavefront's lanes (it is reachable from a lane-varying
    /// branch that it does not post-dominate).
    pub divergent: Vec<bool>,
    /// Reachable branch sites whose operands are both proven
    /// lane-uniform: the wavefront cannot split there.
    pub uniform_branches: Vec<usize>,
}

impl Solution {
    /// The abstract address (`rs1 + sign-extended imm`) of the memory
    /// instruction at `i`, if the solver reached it.
    pub fn address_at(&self, i: usize, base: Reg, imm: i16) -> Option<AbsVal> {
        let st = self.input.get(i)?.as_ref()?;
        Some(address_of(&st[base.index()], imm))
    }

    /// The abstract value of `r` on entry to instruction `i`.
    pub fn reg_at(&self, i: usize, r: Reg) -> Option<&AbsVal> {
        Some(&self.input.get(i)?.as_ref()?[r.index()])
    }
}

/// Computes the abstract address of a memory access.
pub(crate) fn address_of(base: &AbsVal, imm: i16) -> AbsVal {
    let off = AbsVal::constant(imm as i32 as u32);
    let mut v = eval_alu(AluOp::Add, base, &off);
    v.sym = base
        .sym
        .as_ref()
        .and_then(|b| Expr::op_imm(AluOp::Add, b, imm as i32 as u32));
    refine(&mut v);
    v
}

/// Runs the joint fixpoint for `program`.
pub(crate) fn solve(
    program: &[Inst],
    cfg: &Cfg,
    reachable: &BitSet,
    ctx: &AnalysisCtx,
) -> Solution {
    let n = cfg.len;
    let pdom = cfg.post_dominators();
    let mut divergent = vec![false; n];
    loop {
        let input = fixpoint(program, cfg, ctx, &divergent);
        // Lane-varying branches under the current assumption set.
        let mut varying_branches = Vec::new();
        let mut uniform_branches = Vec::new();
        for (i, inst) in program.iter().enumerate() {
            if !reachable.contains(i) {
                continue;
            }
            if let Inst::Branch { rs1, rs2, .. } = inst {
                let uniform = input[i].as_ref().is_some_and(|st| {
                    st[rs1.index()].lane.is_uniform() && st[rs2.index()].lane.is_uniform()
                });
                if uniform {
                    uniform_branches.push(i);
                } else {
                    varying_branches.push(i);
                }
            }
        }
        // Divergent sites: reachable from a varying branch it does not
        // post-dominate. Monotonically growing across outer rounds
        // (forcing loads opaque only makes more values varying), so
        // the iteration terminates.
        let mut grew = false;
        for &v in &varying_branches {
            let reach = reachable_from(cfg, v);
            for (s, d) in divergent.iter_mut().enumerate().take(n) {
                if !*d && reach.contains(s) && !pdom[v].contains(s) {
                    *d = true;
                    grew = true;
                }
            }
        }
        if !grew {
            return Solution {
                input,
                divergent,
                uniform_branches,
            };
        }
    }
}

/// Nodes reachable from `from` along CFG edges (excluding the trivial
/// empty path).
fn reachable_from(cfg: &Cfg, from: usize) -> BitSet {
    let mut seen = BitSet::new(cfg.len + 1);
    let mut stack: Vec<usize> = cfg.succs[from].clone();
    while let Some(i) = stack.pop() {
        if seen.contains(i) {
            continue;
        }
        seen.insert(i);
        stack.extend(cfg.succs[i].iter().copied());
    }
    seen
}

/// One worklist run of the dataflow under a fixed divergent-site set.
fn fixpoint(
    program: &[Inst],
    cfg: &Cfg,
    ctx: &AnalysisCtx,
    divergent: &[bool],
) -> Vec<Option<Box<[AbsVal]>>> {
    let n = cfg.len;
    let mut input: Vec<Option<Box<[AbsVal]>>> = vec![None; n + 1];
    let entry: Box<[AbsVal]> = (0..usize::from(Reg::COUNT))
        .map(|_| AbsVal::constant(0)) // the register file is zeroed
        .collect();
    input[0] = Some(entry);

    // Widen points: targets of edges that do not advance the program
    // order; every CFG cycle crosses one.
    let mut widen_point = vec![false; n + 1];
    for (i, succs) in cfg.succs.iter().enumerate() {
        for &s in succs {
            if s <= i {
                widen_point[s] = true;
            }
        }
    }
    let mut joins = vec![0u32; n + 1];
    let mut inwork = vec![false; n + 1];
    let mut work = vec![0usize];
    inwork[0] = true;

    while let Some(i) = work.pop() {
        inwork[i] = false;
        if i >= n {
            continue; // exit node
        }
        let Some(st) = input[i].clone() else { continue };
        let out = transfer(i, &program[i], st, ctx, divergent);
        // Lane-mixing merges: when the predecessor runs under
        // divergent control, the lanes arriving from it are a *subset*
        // of the wavefront — at the merge, each lane holds the value
        // of its own path. Joining two different path values as one
        // lane-affine shape would claim all lanes agree on a single
        // `a·tid + b`, which is unsound (caught by the trace oracle:
        // a "broadcast" store after an `if` touched two cache lines).
        // Unless the two values are provably identical per lane, the
        // merged lane shape must be `Varying`.
        let lane_mixing = divergent.get(i).copied().unwrap_or(false);
        for &s in &cfg.succs[i] {
            let next = match &input[s] {
                None => Some(out.clone()),
                Some(prev) => {
                    let mut joined: Box<[AbsVal]> = prev
                        .iter()
                        .zip(out.iter())
                        .map(|(p, o)| {
                            let mut j = p.join(o);
                            if lane_mixing
                                && !per_lane_identical(p, o, divergent)
                                && j.lane != Lane::Varying
                            {
                                j.lane = Lane::Varying;
                            }
                            j
                        })
                        .collect();
                    if joined[..] != prev[..] {
                        if widen_point[s] {
                            joins[s] += 1;
                            if joins[s] > WIDEN_DELAY {
                                joined = prev
                                    .iter()
                                    .zip(joined.iter())
                                    .map(|(p, j)| p.widen(j))
                                    .collect();
                            }
                        }
                        (joined[..] != prev[..]).then_some(joined)
                    } else {
                        None
                    }
                }
            };
            if let Some(state) = next {
                input[s] = Some(state);
                if !inwork[s] {
                    inwork[s] = true;
                    work.push(s);
                }
            }
        }
    }
    input
}

/// `true` when two abstract values are provably the *same* concrete
/// value in every lane, so a lane-mixing merge of them cannot create
/// lane variation: equal singletons, or equal symbolic expressions
/// whose loads all sit at convergent sites (a divergent-site load can
/// observe different memory at different partial issues, so the same
/// expression does not pin the same value).
fn per_lane_identical(a: &AbsVal, b: &AbsVal, divergent: &[bool]) -> bool {
    if let (Some(ca), Some(cb)) = (a.rng.as_singleton(), b.rng.as_singleton()) {
        return ca == cb;
    }
    match (&a.sym, &b.sym) {
        (Some(x), Some(y)) => expr_eq(x, y) && loads_convergent(x, divergent),
        _ => false,
    }
}

/// `true` when every `Load` node in `e` sits at a lane-convergent site.
fn loads_convergent(e: &Expr, divergent: &[bool]) -> bool {
    match &e.kind {
        ExprKind::Load(site, a) => {
            !divergent.get(*site).copied().unwrap_or(true) && loads_convergent(a, divergent)
        }
        ExprKind::Op(_, x, y) => loads_convergent(x, divergent) && loads_convergent(y, divergent),
        ExprKind::OpImm(_, x, _) => loads_convergent(x, divergent),
        _ => true,
    }
}

/// Product transfer of one ALU operation (symbolic part left to the
/// caller, which knows the operand expressions).
fn eval_alu(op: AluOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    AbsVal {
        rng: Interval::apply(op, a.rng, b.rng),
        align: Align::apply(op, a.align, b.align, b.rng),
        lane: Lane::apply(op, a.lane, b.lane, a.rng, b.rng),
        sym: None,
    }
}

/// Reduction step of the product: a pinned value refines the other
/// components.
fn refine(v: &mut AbsVal) {
    if let Some(c) = v.rng.as_singleton() {
        v.align = Align::constant(c);
        v.lane = Lane::UNIFORM;
    }
}

/// Abstract effect of one instruction on the register state.
fn transfer(
    i: usize,
    inst: &Inst,
    mut st: Box<[AbsVal]>,
    ctx: &AnalysisCtx,
    divergent: &[bool],
) -> Box<[AbsVal]> {
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let a = &st[rs1.index()];
            let b = &st[rs2.index()];
            let mut v = eval_alu(op, a, b);
            v.sym = match (&a.sym, &b.sym) {
                (Some(x), Some(y)) => Expr::op(op, x, y),
                _ => None,
            };
            refine(&mut v);
            st[rd.index()] = v;
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let imm = imm as i32 as u32;
            let b = AbsVal::constant(imm);
            let a = &st[rs1.index()];
            let mut v = eval_alu(op, a, &b);
            v.sym = a.sym.as_ref().and_then(|x| Expr::op_imm(op, x, imm));
            refine(&mut v);
            st[rd.index()] = v;
        }
        Inst::Lui { rd, imm } => {
            st[rd.index()] = AbsVal::constant(u32::from(imm) << 16);
        }
        Inst::ReadId { rd, src } => {
            st[rd.index()] = read_id(src, ctx);
        }
        Inst::Param { rd, idx } => {
            st[rd.index()] = match &ctx.params {
                // The launch zero-pads unset slots.
                Some(p) => AbsVal::constant(p.get(usize::from(idx)).copied().unwrap_or(0)),
                None => AbsVal {
                    rng: Interval::TOP,
                    // Calling convention: pointer/size parameters are
                    // word-aligned (documented heuristic; exact when
                    // the context carries concrete parameters).
                    align: Align { m: 4, r: 0 },
                    lane: Lane::UNIFORM,
                    sym: Some(Expr::param(idx)),
                },
            };
        }
        Inst::Lw { rd, rs1, imm } => {
            let addr = address_of(&st[rs1.index()], imm);
            st[rd.index()] = load_result(i, &addr, true, divergent);
        }
        Inst::Lwl { rd, rs1, imm } => {
            let addr = address_of(&st[rs1.index()], imm);
            st[rd.index()] = load_result(i, &addr, false, divergent);
        }
        // No register effects.
        Inst::Sw { .. }
        | Inst::Swl { .. }
        | Inst::Branch { .. }
        | Inst::Jmp { .. }
        | Inst::Bar
        | Inst::Ret => {}
    }
    st
}

/// Abstract value produced by a load at site `i`.
///
/// The uniform-load rule: at a lane-convergent site, every lane of a
/// wavefront issues the load together, so a lane-uniform address
/// yields a lane-uniform value. Only *global* loads keep a symbolic
/// `Load` node (the race check's determined-by-address argument needs
/// it; local memory is the racy resource itself, so its loads stay
/// opaque).
fn load_result(i: usize, addr: &AbsVal, global: bool, divergent: &[bool]) -> AbsVal {
    let convergent = !divergent[i];
    let lane = if convergent && addr.lane.is_uniform() {
        Lane::UNIFORM
    } else {
        Lane::Varying
    };
    let sym = if global && convergent {
        addr.sym.as_ref().and_then(|a| Expr::load(i, a))
    } else {
        None
    };
    AbsVal {
        rng: Interval::TOP,
        align: Align::UNKNOWN,
        lane,
        sym,
    }
}

/// Abstract value of an id-source read under the launch context.
fn read_id(src: IdSource, ctx: &AnalysisCtx) -> AbsVal {
    match src {
        IdSource::LocalId => AbsVal {
            rng: Interval {
                lo: 0,
                hi: ctx
                    .workgroup_size
                    .unwrap_or(ctx.max_workgroup)
                    .saturating_sub(1),
            },
            align: Align::UNKNOWN,
            lane: Lane::ID,
            sym: Some(Expr::id_leaf(ExprKind::Lid)),
        },
        IdSource::GlobalId => AbsVal {
            rng: Interval {
                lo: 0,
                hi: ctx.global_size.map_or(u32::MAX, |g| g.saturating_sub(1)),
            },
            align: Align::UNKNOWN,
            lane: Lane::ID,
            sym: Some(Expr::id_leaf(ExprKind::Gid)),
        },
        IdSource::GroupId => AbsVal {
            rng: Interval {
                lo: 0,
                hi: match (ctx.global_size, ctx.workgroup_size) {
                    (Some(g), Some(w)) if w > 0 => g.div_ceil(w).saturating_sub(1),
                    _ => u32::MAX,
                },
            },
            align: Align::UNKNOWN,
            lane: Lane::UNIFORM,
            sym: Some(Expr::id_leaf(ExprKind::GroupId)),
        },
        IdSource::GroupSize => match ctx.workgroup_size {
            Some(w) => AbsVal::constant(w),
            None => AbsVal {
                rng: Interval {
                    lo: 1,
                    hi: ctx.max_workgroup,
                },
                align: Align::UNKNOWN,
                lane: Lane::UNIFORM,
                sym: Some(Expr::id_leaf(ExprKind::GroupSize)),
            },
        },
        IdSource::GlobalSize => match ctx.global_size {
            Some(g) => AbsVal::constant(g),
            None => AbsVal {
                rng: Interval {
                    lo: 1,
                    hi: u32::MAX,
                },
                align: Align::UNKNOWN,
                lane: Lane::UNIFORM,
                sym: Some(Expr::id_leaf(ExprKind::GlobalSize)),
            },
        },
    }
}
