//! Abstract interpretation of SIMT kernels.
//!
//! A monotone-framework fixpoint ([`solver`]) over composable
//! per-register domains ([`domain`]): interval value-range,
//! power-of-two stride/alignment, a lane-affine shape (`a·tid + c`
//! with interval coefficients — subsuming the old uniform/varying
//! taint bit), and a depth-capped symbolic expression. On top of the
//! fixpoint this module derives:
//!
//! * **K010** — out-of-bounds memory access: *proven* (every possible
//!   address faults) at deny strength, *possible* (the range reaches
//!   past the limit but a bounded part stays inside) capped at warn.
//!   Ranges widened to the unbounded sentinel stay silent — a loop
//!   whose bound the solver cannot see is not evidence.
//! * **K011** — misaligned word access: *proven* when the congruence
//!   excludes word alignment entirely, *possible* (capped at warn)
//!   when alignment is simply unknown.
//! * **K012** — flow-sensitive LRAM race, replacing K007's syntactic
//!   check: an `swl` is clean when the stored value is lane-uniform,
//!   when the address is provably lane-distinct per work-item
//!   (nonzero word-multiple affine coefficient small enough not to
//!   wrap), or when the value is *determined by the address* (a pure
//!   function of the address expression and launch invariants through
//!   convergent loads — colliding lanes then write identical bytes).
//!   A proven-uniform address with an unsafe value denies; everything
//!   else unproven caps at warn. Scope: intra-issue collisions within
//!   one workgroup, the same granularity the `crates/simt` trace
//!   oracle observes.
//! * [`MemAccessSummary`] — the static cost model per memory
//!   instruction: coalescing class (broadcast / unit-stride /
//!   strided-k / scattered), a cache-line bound per wavefront issue,
//!   and the LRAM bank-conflict degree — exported through
//!   `gpuplanner::cycles` next to the simulated numbers.
//!
//! Soundness is *gated, not asserted*: `crates/simt` records concrete
//! per-access addresses and branch uniformity on both backends, and a
//! randomized property suite checks every prediction here
//! over-approximates the observed trace.

pub mod domain;
mod solver;

use crate::cfg::Cfg;
use crate::diag::{Code, LintConfig, Report, Severity};
use domain::{expr_eq, AbsVal, Expr, ExprKind, Lane};
use ggpu_isa::inst::{Inst, Reg};
use std::rc::Rc;

pub(crate) use solver::Solution;

/// Launch-context facts the analysis may assume. Everything is
/// optional: `None` means "analyze for any launch" (the default
/// pre-flight gate), `Some` pins the fact (the property suite builds
/// an exact context from the concrete launch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisCtx {
    /// Concrete kernel parameters, when known. Unknown parameters are
    /// assumed word-aligned (the documented calling convention for
    /// pointer/size arguments).
    pub params: Option<Vec<u32>>,
    /// Total work-items, when known.
    pub global_size: Option<u32>,
    /// Work-items per workgroup, when known.
    pub workgroup_size: Option<u32>,
    /// Global memory size in words, when known; global bounds checks
    /// are skipped otherwise.
    pub memory_words: Option<u32>,
    /// LRAM scratchpad words per CU (always known: a hardware
    /// constant).
    pub lram_words: u32,
    /// Largest launchable workgroup (wavefront × max wavefronts/CU).
    pub max_workgroup: u32,
    /// Wavefront width (lanes issuing together).
    pub wavefront: u32,
    /// Cache line size in bytes (coalescing bound).
    pub line_bytes: u32,
    /// LRAM banks (bank-conflict degree).
    pub lram_banks: u32,
    /// Processing elements served per LRAM beat.
    pub pes: u32,
}

impl Default for AnalysisCtx {
    fn default() -> Self {
        Self {
            params: None,
            global_size: None,
            workgroup_size: None,
            memory_words: None,
            lram_words: 4096,
            max_workgroup: 512,
            wavefront: 64,
            line_bytes: 64,
            lram_banks: 8,
            pes: 8,
        }
    }
}

impl AnalysisCtx {
    /// The largest work-item-index distance inside one workgroup.
    fn max_wg_span(&self) -> u64 {
        u64::from(self.workgroup_size.unwrap_or(self.max_workgroup).max(1)) - 1
    }
}

/// Which memory an access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// Cached global memory.
    Global,
    /// Per-CU LRAM scratchpad.
    Local,
}

/// Static coalescing class of one memory instruction, ordered from
/// cheapest to most expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalescingClass {
    /// Every lane touches one address.
    Broadcast,
    /// Consecutive lanes touch consecutive words (either direction).
    UnitStride,
    /// Constant word stride `k` between consecutive lanes.
    Strided(u32),
    /// No provable pattern.
    Scattered,
}

impl CoalescingClass {
    /// Cost rank: a prediction is sound iff its rank is at least the
    /// observed rank.
    pub fn rank(self) -> u8 {
        match self {
            CoalescingClass::Broadcast => 0,
            CoalescingClass::UnitStride => 1,
            CoalescingClass::Strided(_) => 2,
            CoalescingClass::Scattered => 3,
        }
    }
}

/// Static cost prediction for one reachable memory instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccessSummary {
    /// Instruction index.
    pub inst: usize,
    /// Address space.
    pub space: MemSpace,
    /// `true` for stores.
    pub is_store: bool,
    /// Lowest possible byte address.
    pub addr_lo: u32,
    /// Highest possible byte address (`u32::MAX` = unbounded).
    pub addr_hi: u32,
    /// Coalescing class (never more optimistic than any observable
    /// issue).
    pub class: CoalescingClass,
    /// Upper bound on distinct cache lines one full-wavefront issue
    /// touches (global space; `1` for LRAM, which has no cache).
    pub max_lines_per_issue: u32,
    /// Upper bound on the LRAM bank-conflict degree per beat (local
    /// space; `1` for global).
    pub bank_conflict_degree: u32,
}

/// Everything the abstract interpreter proves about one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAnalysis {
    /// One summary per reachable memory instruction, in program order.
    pub summaries: Vec<MemAccessSummary>,
    /// Reachable branch sites proven lane-uniform (the wavefront
    /// cannot split there).
    pub uniform_branches: Vec<usize>,
}

impl KernelAnalysis {
    /// The summary for instruction `i`, if it is a reachable memory
    /// access.
    pub fn summary_at(&self, i: usize) -> Option<&MemAccessSummary> {
        self.summaries.iter().find(|s| s.inst == i)
    }
}

/// Runs the abstract interpreter standalone (builds its own CFG) and
/// returns the memory-access summaries and branch-uniformity facts.
pub fn analyze(program: &[Inst], ctx: &AnalysisCtx) -> KernelAnalysis {
    if program.is_empty() {
        return KernelAnalysis {
            summaries: Vec::new(),
            uniform_branches: Vec::new(),
        };
    }
    let cfg = Cfg::build(program);
    let reachable = cfg.reachable();
    let sol = solver::solve(program, &cfg, &reachable, ctx);
    let mut summaries = Vec::new();
    for (i, inst) in program.iter().enumerate() {
        if !reachable.contains(i) {
            continue;
        }
        let Some((space, is_store, base, imm)) = mem_access(inst) else {
            continue;
        };
        let Some(addr) = sol.address_at(i, base, imm) else {
            continue;
        };
        summaries.push(summarize(i, space, is_store, &addr, ctx));
    }
    KernelAnalysis {
        summaries,
        uniform_branches: sol.uniform_branches.clone(),
    }
}

/// Decodes a memory instruction into (space, is_store, base register,
/// immediate offset).
fn mem_access(inst: &Inst) -> Option<(MemSpace, bool, Reg, i16)> {
    match *inst {
        Inst::Lw { rs1, imm, .. } => Some((MemSpace::Global, false, rs1, imm)),
        Inst::Sw { rs1, imm, .. } => Some((MemSpace::Global, true, rs1, imm)),
        Inst::Lwl { rs1, imm, .. } => Some((MemSpace::Local, false, rs1, imm)),
        Inst::Swl { rs1, imm, .. } => Some((MemSpace::Local, true, rs1, imm)),
        _ => None,
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Builds the static cost summary of one access from its abstract
/// address.
fn summarize(
    i: usize,
    space: MemSpace,
    is_store: bool,
    addr: &AbsVal,
    ctx: &AnalysisCtx,
) -> MemAccessSummary {
    // Coalescing class from the lane-affine shape of the address.
    let class = match addr.lane {
        _ if addr.lane.is_uniform() => CoalescingClass::Broadcast,
        Lane::Affine { .. } => match addr.lane.singleton_coeff() {
            Some(0) => CoalescingClass::Broadcast,
            Some(a) if a.unsigned_abs() == 4 => CoalescingClass::UnitStride,
            Some(a) if a.unsigned_abs() % 4 == 0 && a.unsigned_abs() / 4 <= u64::from(u32::MAX) => {
                CoalescingClass::Strided((a.unsigned_abs() / 4) as u32)
            }
            _ => CoalescingClass::Scattered,
        },
        Lane::Varying => CoalescingClass::Scattered,
    };
    let w = ctx.wavefront.max(1);
    let byte_stride: Option<u64> = match class {
        CoalescingClass::Broadcast => Some(0),
        CoalescingClass::UnitStride => Some(4),
        CoalescingClass::Strided(k) => Some(u64::from(k) * 4),
        CoalescingClass::Scattered => None,
    };
    let max_lines = match (space, byte_stride) {
        (MemSpace::Local, _) => 1,
        (MemSpace::Global, Some(0)) => 1,
        (MemSpace::Global, Some(s)) => {
            let span_lines = s * u64::from(w - 1) / u64::from(ctx.line_bytes.max(1)) + 2;
            span_lines.min(u64::from(w)) as u32
        }
        (MemSpace::Global, None) => w,
    };
    let bank_degree = match (space, byte_stride) {
        (MemSpace::Global, _) => 1,
        (MemSpace::Local, Some(0)) => 1,
        (MemSpace::Local, Some(s)) => {
            let words = ((s / 4) % u64::from(ctx.lram_banks.max(1))) as u32;
            let g = gcd(words, ctx.lram_banks.max(1)).max(1);
            let distinct_banks = ctx.lram_banks.max(1) / g;
            ctx.pes.max(1).div_ceil(distinct_banks).min(ctx.pes.max(1))
        }
        (MemSpace::Local, None) => ctx.pes.max(1),
    };
    MemAccessSummary {
        inst: i,
        space,
        is_store,
        addr_lo: addr.rng.lo,
        addr_hi: addr.rng.hi,
        class,
        max_lines_per_issue: max_lines,
        bank_conflict_degree: bank_degree,
    }
}

/// Runs the absint checks (K010/K011/K012) for `verify_program`,
/// reusing the caller's CFG and reachability.
pub(crate) fn check_kernel(
    program: &[Inst],
    cfg: &Cfg,
    reachable: &crate::cfg::BitSet,
    ctx: &AnalysisCtx,
    config: &LintConfig,
    report: &mut Report,
) {
    let sol = solver::solve(program, cfg, reachable, ctx);
    for (i, inst) in program.iter().enumerate() {
        if !reachable.contains(i) {
            continue;
        }
        let Some((space, is_store, base, imm)) = mem_access(inst) else {
            continue;
        };
        let Some(addr) = sol.address_at(i, base, imm) else {
            continue;
        };
        check_bounds(i, space, &addr, ctx, config, report);
        check_alignment(i, &addr, config, report);
        if space == MemSpace::Local && is_store {
            if let Inst::Swl { rs1, rs2, .. } = inst {
                check_race(i, &sol, *rs1, *rs2, &addr, ctx, config, report);
            }
        }
    }
}

/// K010: out-of-bounds access, proven vs. possible.
fn check_bounds(
    i: usize,
    space: MemSpace,
    addr: &AbsVal,
    ctx: &AnalysisCtx,
    config: &LintConfig,
    report: &mut Report,
) {
    let (name, limit) = match space {
        MemSpace::Local => ("local", Some(u64::from(ctx.lram_words) * 4)),
        MemSpace::Global => ("global", ctx.memory_words.map(|w| u64::from(w) * 4)),
    };
    let Some(limit) = limit else { return };
    if u64::from(addr.rng.lo) >= limit {
        report.push(
            config,
            Code::K010,
            format!(
                "proven out-of-bounds {name} access: every address in \
                 [{}, {}] is past the {limit}-byte limit",
                addr.rng.lo, addr.rng.hi
            ),
            Some(i),
            None,
        );
    } else if u64::from(addr.rng.hi) >= limit && !addr.rng.is_unbounded() {
        // An unbounded hi is the widening sentinel, not evidence.
        report.push_at_most(
            config,
            Code::K010,
            Severity::Warn,
            format!(
                "possible out-of-bounds {name} access: address range \
                 [{}, {}] crosses the {limit}-byte limit",
                addr.rng.lo, addr.rng.hi
            ),
            Some(i),
            None,
        );
    }
}

/// K011: misaligned word access, proven vs. possible.
fn check_alignment(i: usize, addr: &AbsVal, config: &LintConfig, report: &mut Report) {
    let m = addr.align.m.min(4);
    let r = addr.align.r & (m - 1);
    if m == 4 {
        if r != 0 {
            report.push(
                config,
                Code::K011,
                format!("proven misaligned word access: address ≡ {r} (mod 4)"),
                Some(i),
                None,
            );
        }
        // r == 0: provably word-aligned, clean.
    } else if m == 2 && r == 1 {
        report.push(
            config,
            Code::K011,
            "proven misaligned word access: address is always odd".to_string(),
            Some(i),
            None,
        );
    } else {
        report.push_at_most(
            config,
            Code::K011,
            Severity::Warn,
            format!(
                "possible misaligned word access: alignment only known \
                 modulo {m}"
            ),
            Some(i),
            None,
        );
    }
}

/// `true` when the affine address provably gives every work-item of a
/// workgroup its own word: exact nonzero word-multiple coefficient
/// whose largest in-group distance cannot wrap.
fn lane_distinct(lane: Lane, ctx: &AnalysisCtx) -> bool {
    match lane.singleton_coeff() {
        Some(a) => {
            a != 0 && a.unsigned_abs() % 4 == 0 && a.unsigned_abs() * ctx.max_wg_span() < 1 << 32
        }
        None => false,
    }
}

/// `true` when `e` is a pure function of the colliding address and
/// launch invariants: lanes that collide on a word then store
/// identical values, making the collision benign.
fn determined_by(e: &Rc<Expr>, anchor: &Rc<Expr>, divergent: &[bool]) -> bool {
    if expr_eq(e, anchor) {
        return true;
    }
    match &e.kind {
        ExprKind::Const(_)
        | ExprKind::Param(_)
        | ExprKind::GroupId
        | ExprKind::GroupSize
        | ExprKind::GlobalSize => true,
        ExprKind::Lid | ExprKind::Gid => false,
        ExprKind::Op(_, a, b) => {
            determined_by(a, anchor, divergent) && determined_by(b, anchor, divergent)
        }
        ExprKind::OpImm(_, a, _) => determined_by(a, anchor, divergent),
        ExprKind::Load(site, a) => !divergent[*site] && determined_by(a, anchor, divergent),
    }
}

/// K012: flow-sensitive LRAM race on one `swl`.
#[allow(clippy::too_many_arguments)]
fn check_race(
    i: usize,
    sol: &Solution,
    rs1: Reg,
    rs2: Reg,
    addr: &AbsVal,
    ctx: &AnalysisCtx,
    config: &LintConfig,
    report: &mut Report,
) {
    let Some(value) = sol.reg_at(i, rs2) else {
        return;
    };
    if value.lane.is_uniform() {
        return; // identical stores collide benignly
    }
    if lane_distinct(addr.lane, ctx) {
        return; // provably per-work-item words
    }
    // Determined-by-address: colliding lanes (equal word, both
    // aligned ⇒ equal base register) write equal values.
    let anchor = sol.reg_at(i, rs1).and_then(|b| b.sym.clone());
    if let (Some(v), Some(anchor)) = (&value.sym, &anchor) {
        if determined_by(v, anchor, &sol.divergent) {
            return;
        }
    }
    if addr.lane.is_uniform() {
        report.push(
            config,
            Code::K012,
            format!(
                "local-memory race: lane-uniform address in {rs1} stored \
                 with the lane-varying value in {rs2} — work-items of one \
                 issue clobber the same LRAM word"
            ),
            Some(i),
            None,
        );
    } else {
        report.push_at_most(
            config,
            Code::K012,
            Severity::Warn,
            format!(
                "possible local-memory race: address in {rs1} is not \
                 provably lane-distinct and the value in {rs2} is not \
                 provably collision-safe"
            ),
            Some(i),
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::asm::assemble;

    fn run(src: &str, ctx: &AnalysisCtx) -> Report {
        let program = assemble(src).unwrap();
        let cfg = Cfg::build(&program);
        let reachable = cfg.reachable();
        let mut report = Report::new("t");
        check_kernel(
            &program,
            &cfg,
            &reachable,
            ctx,
            &LintConfig::new(),
            &mut report,
        );
        report
    }

    #[test]
    fn proven_local_oob_is_denied() {
        let r = run("lui r1, 1\nswl r1, r0, 0\nret", &AnalysisCtx::default());
        assert!(r.has(Code::K010), "{r}");
        assert_eq!(r.denial_count(), 1, "{r}");
    }

    #[test]
    fn possible_local_oob_is_a_warning() {
        // lid << 6 reaches 32704 under the 512-item workgroup bound:
        // past 16384 but bounded, so possible-tier only.
        let r = run(
            "lid r1\nslli r2, r1, 6\nswl r2, r1, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(r.has(Code::K010), "{r}");
        assert_eq!(r.denial_count(), 0, "{r}");
    }

    #[test]
    fn widened_loop_address_stays_silent() {
        // Loop-carried pointer widens to the unbounded sentinel: no
        // K010 (silence, not a warning).
        let r = run(
            "
            addi r1, r0, 0
            addi r2, r0, 10
            loop:
            lwl  r3, r1, 0
            addi r1, r1, 16
            addi r4, r4, 1
            blt  r4, r2, loop
            swl  r0, r3, 0
            ret
            ",
            &AnalysisCtx::default(),
        );
        assert!(!r.has(Code::K010), "{r}");
    }

    #[test]
    fn exact_context_pins_global_bounds() {
        let ctx = AnalysisCtx {
            global_size: Some(64),
            workgroup_size: Some(64),
            memory_words: Some(64),
            ..AnalysisCtx::default()
        };
        // gid << 2 stays in [0, 252] < 256 bytes: clean.
        let r = run(
            "gid r1\nslli r2, r1, 2\nlw r3, r2, 0\nsw r2, r3, 0\nret",
            &ctx,
        );
        assert!(r.is_clean(), "{r}");
        // With an offset pushing past the end: possible OOB.
        let r = run(
            "gid r1\nslli r2, r1, 2\nlw r3, r2, 128\nsw r2, r3, 0\nret",
            &ctx,
        );
        assert!(r.has(Code::K010), "{r}");
    }

    #[test]
    fn tid_affine_store_is_not_a_race() {
        let r = run(
            "lid r1\nslli r2, r1, 2\nswl r2, r1, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(!r.has(Code::K012), "{r}");
    }

    #[test]
    fn uniform_addr_varying_value_is_a_proven_race() {
        let r = run(
            "lid r1\naddi r2, r0, 64\nswl r2, r1, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(r.has(Code::K012), "{r}");
        assert_eq!(r.denial_count(), 1, "{r}");
    }

    #[test]
    fn loaded_uniform_address_race_is_flow_sensitive() {
        // The address is uniform only through a load — the old
        // syntactic check could not see this.
        let r = run(
            "param r1, 0\nlw r2, r1, 0\nslli r2, r2, 2\nlid r3\nswl r2, r3, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(r.has(Code::K012), "{r}");
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.code == Code::K012 && d.severity == Severity::Deny)
                .count(),
            1,
            "{r}"
        );
    }

    #[test]
    fn masked_staging_store_is_determined_by_address() {
        // The mat_mul_local staging idiom: address = masked lid,
        // value = global load at address + uniform base. Colliding
        // lanes write identical values: benign.
        let r = run(
            "
            lid   r1
            param r2, 4
            param r3, 2
            addi  r4, r2, -1
            and   r5, r1, r4
            slli  r5, r5, 2
            add   r6, r5, r3
            lw    r7, r6, 0
            swl   r5, r7, 0
            ret
            ",
            &AnalysisCtx::default(),
        );
        assert!(!r.has(Code::K012), "{r}");
    }

    #[test]
    fn misalignment_proven_and_possible() {
        let r = run(
            "addi r1, r0, 2\nlwl r2, r1, 0\nswl r1, r2, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(r.has(Code::K011), "{r}");
        assert!(r.denial_count() >= 1, "{r}");
        // Loaded base: alignment unknown, warn only.
        let r = run(
            "param r1, 0\nlw r2, r1, 0\nlw r3, r2, 0\nsw r1, r3, 0\nret",
            &AnalysisCtx::default(),
        );
        assert!(r.has(Code::K011), "{r}");
        assert_eq!(r.denial_count(), 0, "{r}");
    }

    #[test]
    fn summaries_classify_coalescing() {
        let program = assemble(
            "
            gid   r1
            param r2, 0
            slli  r3, r1, 2
            add   r3, r3, r2
            lw    r4, r3, 0      ; unit stride
            lw    r5, r2, 0      ; broadcast
            slli  r6, r1, 5
            add   r6, r6, r2
            lw    r7, r6, 0      ; strided 8
            swl   r3, r4, 0
            sw    r3, r7, 0
            ret
            ",
        )
        .unwrap();
        let a = analyze(&program, &AnalysisCtx::default());
        assert_eq!(a.summary_at(4).unwrap().class, CoalescingClass::UnitStride);
        assert_eq!(a.summary_at(5).unwrap().class, CoalescingClass::Broadcast);
        assert_eq!(a.summary_at(5).unwrap().max_lines_per_issue, 1);
        assert_eq!(a.summary_at(8).unwrap().class, CoalescingClass::Strided(8));
        // Strided-8 words with 8 banks: every lane of a beat hits one
        // bank.
        let local = a.summary_at(9).unwrap();
        assert_eq!(local.space, MemSpace::Local);
        assert_eq!(local.class, CoalescingClass::UnitStride);
        assert_eq!(local.bank_conflict_degree, 1);
        assert!(a.summary_at(0).is_none());
    }

    #[test]
    fn uniform_branches_are_separated_from_varying() {
        let program = assemble(
            "
            lid  r1
            param r2, 0
            beq  r2, r0, skip
            beq  r1, r0, skip
            skip:
            ret
            ",
        )
        .unwrap();
        let a = analyze(&program, &AnalysisCtx::default());
        assert_eq!(a.uniform_branches, vec![2]);
    }
}
