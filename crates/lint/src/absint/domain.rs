//! Abstract domains of the kernel abstract interpreter.
//!
//! One abstract value ([`AbsVal`]) is a reduced product of four
//! component domains, each sound for the ISA's wrapping 32-bit
//! arithmetic:
//!
//! * [`Interval`] — unsigned value range `[lo, hi]`. Wrapping ops are
//!   computed in `i64` and re-normalized; a result that cannot be
//!   shifted back into one unsigned window collapses to TOP.
//!   `hi == u32::MAX` doubles as the "no real upper bound" sentinel
//!   the bounds check treats as *unbounded* rather than *possibly
//!   out of bounds*.
//! * [`Align`] — congruence `value ≡ r (mod m)` for a power of two
//!   `m ≤ 4096`. Because `m` divides `2^32`, the congruence survives
//!   wrapping add/sub/mul exactly.
//! * [`Lane`] — lane-affine form: the value of lane `l` is
//!   `a·idx(l) + c (mod 2^32)` where `idx` is the work-item index,
//!   `c` is lane-invariant and the coefficient `a` lies in a small
//!   signed interval. `Affine(0,0)` is "uniform" (every lane equal),
//!   subsuming the old uniform/varying bit; `Varying` is TOP.
//! * symbolic expression ([`Expr`]) — a depth-capped expression DAG
//!   over launch-invariant leaves and convergent loads, used by the
//!   race check's determined-by-address argument.

use ggpu_isa::inst::AluOp;
use std::rc::Rc;

/// Modulus cap of the alignment domain (`m ≤ 4096`, one LRAM page).
pub const ALIGN_CAP: u32 = 4096;

/// Lane-affine coefficients beyond this magnitude collapse to
/// [`Lane::Varying`] (keeps coefficient arithmetic far from `i64`
/// overflow).
const COEFF_CAP: i64 = 1 << 40;

/// Maximum symbolic-expression depth; deeper trees become opaque.
/// Kept small so structural comparison stays cheap even without
/// sharing.
const SYM_DEPTH_CAP: u32 = 12;

// ---------------------------------------------------------------------
// Interval

/// Unsigned value-range domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value.
    pub hi: u32,
}

impl Interval {
    /// The full range (no information).
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    /// The exact value `v`.
    pub const fn singleton(v: u32) -> Self {
        Self { lo: v, hi: v }
    }

    /// `Some(v)` if the interval pins one value.
    pub fn as_singleton(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// `true` when the upper bound is the sentinel "no real bound".
    pub fn is_unbounded(self) -> bool {
        self.hi == u32::MAX
    }

    /// `true` if `v` lies in the range.
    pub fn contains(self, v: u32) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, o: Self) -> Self {
        Self {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Classic interval widening: any bound that grew jumps to its
    /// extreme. `next` must already include `self` (it is the join).
    pub fn widen(self, next: Self) -> Self {
        Self {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { u32::MAX } else { self.hi },
        }
    }

    /// Renormalizes an `i64` pre-wrap range into the unsigned window.
    /// The whole range is shifted by one common multiple of `2^32`
    /// (wrapping moves every value the same way when the range does
    /// not straddle a wrap boundary); a straddling range is TOP.
    fn norm(lo: i64, hi: i64) -> Self {
        const M: i64 = 1 << 32;
        if hi - lo >= M {
            return Self::TOP;
        }
        let k = lo.div_euclid(M);
        let (lo, hi) = (lo - k * M, hi - k * M);
        if hi < M {
            Self {
                lo: lo as u32,
                hi: hi as u32,
            }
        } else {
            Self::TOP
        }
    }

    /// Smallest all-ones mask covering `h` (`0b111…1 ≥ h`).
    fn mask_cover(h: u32) -> u32 {
        if h == 0 {
            0
        } else {
            u32::MAX >> h.leading_zeros()
        }
    }

    /// Transfer function of one ALU op.
    pub fn apply(op: AluOp, x: Self, y: Self) -> Self {
        let (xl, xh) = (i64::from(x.lo), i64::from(x.hi));
        let (yl, yh) = (i64::from(y.lo), i64::from(y.hi));
        match op {
            AluOp::Add => Self::norm(xl + yl, xh + yh),
            AluOp::Sub => Self::norm(xl - yh, xh - yl),
            AluOp::Mul => {
                let max = u64::from(x.hi) * u64::from(y.hi);
                if max <= u64::from(u32::MAX) {
                    Self {
                        lo: x.lo * y.lo,
                        hi: max as u32,
                    }
                } else {
                    Self::TOP
                }
            }
            AluOp::Divu => {
                // x/0 is all-ones (RISC-V M convention): the range
                // must cover MAX as soon as zero is possible.
                match (x.lo.checked_div(y.hi), x.hi.checked_div(y.lo)) {
                    (Some(lo), Some(hi)) => Self { lo, hi },
                    (Some(_), None) => Self::TOP,
                    (None, _) => Self::singleton(u32::MAX),
                }
            }
            AluOp::Remu => {
                if y.lo >= 1 && x.hi < y.lo {
                    x // remainder is a no-op: x < y everywhere
                } else if y.lo >= 1 {
                    Self {
                        lo: 0,
                        hi: x.hi.min(y.hi - 1),
                    }
                } else {
                    // y may be zero, where x % 0 = x.
                    Self { lo: 0, hi: x.hi }
                }
            }
            AluOp::And => Self {
                lo: 0,
                hi: x.hi.min(y.hi),
            },
            AluOp::Or => Self {
                lo: x.lo.max(y.lo),
                hi: Self::mask_cover(x.hi.max(y.hi)),
            },
            AluOp::Xor => Self {
                lo: 0,
                hi: Self::mask_cover(x.hi.max(y.hi)),
            },
            AluOp::Sll => {
                // The machine masks the shift amount to 5 bits.
                if let Some(c) = y.as_singleton() {
                    let c = c & 31;
                    if (u64::from(x.hi)) << c <= u64::from(u32::MAX) {
                        Self {
                            lo: x.lo << c,
                            hi: x.hi << c,
                        }
                    } else {
                        Self::TOP
                    }
                } else if y.hi <= 31 && (u64::from(x.hi)) << y.hi <= u64::from(u32::MAX) {
                    // Unmasked range of shifts: x << c is monotone in c.
                    Self {
                        lo: x.lo << y.lo,
                        hi: x.hi << y.hi,
                    }
                } else if x.hi == 0 {
                    Self::singleton(0)
                } else {
                    Self::TOP
                }
            }
            AluOp::Srl => {
                if let Some(c) = y.as_singleton() {
                    let c = c & 31;
                    Self {
                        lo: x.lo >> c,
                        hi: x.hi >> c,
                    }
                } else {
                    Self { lo: 0, hi: x.hi }
                }
            }
            AluOp::Sra => {
                // Only meaningful on sign-free ranges; a possible sign
                // bit smears ones from the top.
                if x.hi < 1 << 31 {
                    if let Some(c) = y.as_singleton() {
                        let c = c & 31;
                        Self {
                            lo: x.lo >> c,
                            hi: x.hi >> c,
                        }
                    } else {
                        Self { lo: 0, hi: x.hi }
                    }
                } else {
                    Self::TOP
                }
            }
            AluOp::Slt => {
                if x.hi < 1 << 31 && y.hi < 1 << 31 {
                    // Both operands non-negative as signed: the signed
                    // compare coincides with the unsigned one.
                    Self::compare(x, y)
                } else {
                    Self { lo: 0, hi: 1 }
                }
            }
            AluOp::Sltu => Self::compare(x, y),
        }
    }

    /// Range of `x < y` when the order of the ranges decides it.
    fn compare(x: Self, y: Self) -> Self {
        if x.hi < y.lo {
            Self::singleton(1)
        } else if x.lo >= y.hi {
            Self::singleton(0)
        } else {
            Self { lo: 0, hi: 1 }
        }
    }
}

// ---------------------------------------------------------------------
// Align

/// Congruence domain: `value ≡ r (mod m)`, `m` a power of two.
///
/// Soundness under wrapping: `m` divides `2^32`, so reduction mod
/// `2^32` preserves every congruence mod `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Align {
    /// Power-of-two modulus, `1 ≤ m ≤ 4096`. `m == 1` is TOP.
    pub m: u32,
    /// Residue, `r < m`.
    pub r: u32,
}

impl Align {
    /// No alignment information.
    pub const UNKNOWN: Align = Align { m: 1, r: 0 };

    /// Exact constant `v` (full congruence up to the modulus cap).
    pub fn constant(v: u32) -> Self {
        Self {
            m: ALIGN_CAP,
            r: v % ALIGN_CAP,
        }
    }

    /// Least upper bound: the residues must agree modulo the result,
    /// so the joined modulus is the largest power of two dividing both
    /// moduli and the residue difference.
    pub fn join(self, o: Self) -> Self {
        let m = self.m.min(o.m);
        let (r1, r2) = (self.r & (m - 1), o.r & (m - 1));
        if r1 == r2 {
            return Self { m, r: r1 };
        }
        let d = r1.abs_diff(r2);
        let g = m.min(1 << d.trailing_zeros().min(31));
        Self {
            m: g,
            r: r1 & (g - 1),
        }
    }

    /// Transfer function. `y_rng` supplies the value range of the
    /// second operand (shift amounts need a known constant).
    pub fn apply(op: AluOp, x: Self, y: Self, y_rng: Interval) -> Self {
        match op {
            AluOp::Add => {
                let m = x.m.min(y.m);
                Self {
                    m,
                    r: (x.r + y.r) & (m - 1),
                }
            }
            AluOp::Sub => {
                let m = x.m.min(y.m);
                Self {
                    m,
                    r: x.r.wrapping_sub(y.r) & (m - 1),
                }
            }
            AluOp::Mul => {
                if x.r == 0 && y.r == 0 {
                    Self {
                        m: (x.m * y.m).min(ALIGN_CAP),
                        r: 0,
                    }
                } else if x.r == 0 {
                    Self { m: x.m, r: 0 }
                } else if y.r == 0 {
                    Self { m: y.m, r: 0 }
                } else {
                    let m = x.m.min(y.m);
                    Self {
                        m,
                        r: (x.r * y.r) & (m - 1),
                    }
                }
            }
            AluOp::And => {
                // A zero residue means the low log2(m) bits are zero,
                // which AND preserves from either side.
                if x.r == 0 && y.r == 0 {
                    Self {
                        m: x.m.max(y.m),
                        r: 0,
                    }
                } else if x.r == 0 {
                    Self { m: x.m, r: 0 }
                } else if y.r == 0 {
                    Self { m: y.m, r: 0 }
                } else {
                    Self::UNKNOWN
                }
            }
            AluOp::Or | AluOp::Xor => {
                // Power-of-two modulus: the residue is literally the
                // low bits, which OR/XOR combine bitwise.
                let m = x.m.min(y.m);
                let (r1, r2) = (x.r & (m - 1), y.r & (m - 1));
                let r = if op == AluOp::Or { r1 | r2 } else { r1 ^ r2 };
                Self { m, r }
            }
            AluOp::Sll => {
                if let Some(c) = y_rng.as_singleton() {
                    let c = c & 31;
                    let m = ((u64::from(x.m)) << c).min(u64::from(ALIGN_CAP)) as u32;
                    let r = ((u64::from(x.r)) << c) as u32 & (m - 1);
                    Self { m, r }
                } else if x.r == 0 {
                    // Left shifts keep multiples of m multiples of m.
                    Self { m: x.m, r: 0 }
                } else {
                    Self::UNKNOWN
                }
            }
            _ => Self::UNKNOWN,
        }
    }
}

// ---------------------------------------------------------------------
// Lane

/// Lane-affine domain: per-lane value is `a·idx + c (mod 2^32)` with
/// the coefficient `a` in a signed interval shared by all lanes and
/// the offset `c` lane-invariant (the offset's *value* lives in the
/// other domains). `Affine(0, 0)` means lane-uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Coefficient interval `[lo, hi]` on the work-item index.
    Affine {
        /// Smallest possible coefficient.
        lo: i64,
        /// Largest possible coefficient.
        hi: i64,
    },
    /// Not (provably) affine in the work-item index.
    Varying,
}

impl Lane {
    /// Every lane holds the same value.
    pub const UNIFORM: Lane = Lane::Affine { lo: 0, hi: 0 };

    /// The work-item index itself (`lid`/`gid`: coefficient one).
    pub const ID: Lane = Lane::Affine { lo: 1, hi: 1 };

    /// `true` when provably lane-uniform.
    pub fn is_uniform(self) -> bool {
        self == Self::UNIFORM
    }

    /// The exact coefficient, if the interval pins one.
    pub fn singleton_coeff(self) -> Option<i64> {
        match self {
            Lane::Affine { lo, hi } if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// Builds an affine value, collapsing oversized coefficients.
    fn affine(lo: i64, hi: i64) -> Self {
        if lo.abs() > COEFF_CAP || hi.abs() > COEFF_CAP {
            Lane::Varying
        } else {
            Lane::Affine { lo, hi }
        }
    }

    /// Least upper bound.
    pub fn join(self, o: Self) -> Self {
        match (self, o) {
            (Lane::Affine { lo: a, hi: b }, Lane::Affine { lo: c, hi: d }) => {
                Self::affine(a.min(c), b.max(d))
            }
            _ => Lane::Varying,
        }
    }

    /// Widening: a coefficient interval that keeps growing goes
    /// straight to `Varying`.
    pub fn widen(self, next: Self) -> Self {
        if self == next {
            self
        } else {
            Lane::Varying
        }
    }

    /// Scales a coefficient interval by a non-negative unsigned value
    /// range (multiplication by a lane-uniform operand).
    fn scale(lo: i64, hi: i64, by: Interval) -> Self {
        let (bl, bh) = (i128::from(by.lo), i128::from(by.hi));
        let corners = [
            i128::from(lo) * bl,
            i128::from(lo) * bh,
            i128::from(hi) * bl,
            i128::from(hi) * bh,
        ];
        let (mut min, mut max) = (corners[0], corners[0]);
        for c in corners {
            min = min.min(c);
            max = max.max(c);
        }
        if min.abs() > i128::from(COEFF_CAP) || max.abs() > i128::from(COEFF_CAP) {
            Lane::Varying
        } else {
            Lane::Affine {
                lo: min as i64,
                hi: max as i64,
            }
        }
    }

    /// Transfer function; value ranges of the operands feed the
    /// coefficient scaling of `Mul`/`Sll`.
    pub fn apply(op: AluOp, x: Self, y: Self, x_rng: Interval, y_rng: Interval) -> Self {
        if x.is_uniform() && y.is_uniform() {
            // The same function of the same inputs on every lane.
            return Self::UNIFORM;
        }
        match (op, x, y) {
            (AluOp::Add, Lane::Affine { lo: a, hi: b }, Lane::Affine { lo: c, hi: d }) => {
                Self::affine(a + c, b + d)
            }
            (AluOp::Sub, Lane::Affine { lo: a, hi: b }, Lane::Affine { lo: c, hi: d }) => {
                Self::affine(a - d, b - c)
            }
            (AluOp::Mul, Lane::Affine { lo, hi }, u) if u.is_uniform() => {
                Self::scale(lo, hi, y_rng)
            }
            (AluOp::Mul, u, Lane::Affine { lo, hi }) if u.is_uniform() => {
                Self::scale(lo, hi, x_rng)
            }
            (AluOp::Sll, Lane::Affine { lo, hi }, u) if u.is_uniform() => {
                match y_rng.as_singleton() {
                    Some(c) => Self::scale(lo, hi, Interval::singleton(1 << (c & 31))),
                    None => Lane::Varying,
                }
            }
            _ => Lane::Varying,
        }
    }
}

// ---------------------------------------------------------------------
// Symbolic expressions

/// Expression node kind; children are shared subtrees. Compared with
/// [`expr_eq`], which short-circuits on shared subtrees — `ExprKind`
/// deliberately does not implement `PartialEq`.
#[derive(Debug)]
pub enum ExprKind {
    /// Literal constant.
    Const(u32),
    /// Kernel parameter slot (launch-invariant).
    Param(u8),
    /// Local work-item id.
    Lid,
    /// Global work-item id.
    Gid,
    /// Workgroup id (lane-invariant).
    GroupId,
    /// Workgroup size (launch-invariant).
    GroupSize,
    /// Global size (launch-invariant).
    GlobalSize,
    /// ALU op over two subexpressions.
    Op(AluOp, Rc<Expr>, Rc<Expr>),
    /// ALU op with an immediate second operand.
    OpImm(AluOp, Rc<Expr>, u32),
    /// Global load at instruction `site` from the given address
    /// expression. Only built for loads at lane-convergent sites, so
    /// within one wavefront every lane's value comes from the *same*
    /// issue: equal addresses imply equal loaded values.
    Load(usize, Rc<Expr>),
}

/// A depth-capped symbolic expression.
#[derive(Debug)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    depth: u32,
}

impl Expr {
    fn leaf(kind: ExprKind) -> Rc<Expr> {
        Rc::new(Expr { kind, depth: 1 })
    }

    /// Constant leaf.
    pub fn constant(v: u32) -> Rc<Expr> {
        Self::leaf(ExprKind::Const(v))
    }

    /// Parameter leaf.
    pub fn param(idx: u8) -> Rc<Expr> {
        Self::leaf(ExprKind::Param(idx))
    }

    /// Id-source leaf.
    pub fn id_leaf(kind: ExprKind) -> Rc<Expr> {
        Self::leaf(kind)
    }

    /// ALU node; `None` past the depth cap.
    pub fn op(op: AluOp, a: &Rc<Expr>, b: &Rc<Expr>) -> Option<Rc<Expr>> {
        let depth = a.depth.max(b.depth) + 1;
        (depth <= SYM_DEPTH_CAP).then(|| {
            Rc::new(Expr {
                kind: ExprKind::Op(op, Rc::clone(a), Rc::clone(b)),
                depth,
            })
        })
    }

    /// ALU-immediate node; `None` past the depth cap.
    pub fn op_imm(op: AluOp, a: &Rc<Expr>, imm: u32) -> Option<Rc<Expr>> {
        let depth = a.depth + 1;
        (depth <= SYM_DEPTH_CAP).then(|| {
            Rc::new(Expr {
                kind: ExprKind::OpImm(op, Rc::clone(a), imm),
                depth,
            })
        })
    }

    /// Convergent-load node; `None` past the depth cap.
    pub fn load(site: usize, addr: &Rc<Expr>) -> Option<Rc<Expr>> {
        let depth = addr.depth + 1;
        (depth <= SYM_DEPTH_CAP).then(|| {
            Rc::new(Expr {
                kind: ExprKind::Load(site, Rc::clone(addr)),
                depth,
            })
        })
    }
}

/// Structural equality with a pointer-identity fast path (joins keep
/// the shared subtree, so most comparisons short-circuit).
pub fn expr_eq(a: &Rc<Expr>, b: &Rc<Expr>) -> bool {
    if Rc::ptr_eq(a, b) {
        return true;
    }
    if a.depth != b.depth {
        return false;
    }
    match (&a.kind, &b.kind) {
        (ExprKind::Const(x), ExprKind::Const(y)) => x == y,
        (ExprKind::Param(x), ExprKind::Param(y)) => x == y,
        (ExprKind::Lid, ExprKind::Lid)
        | (ExprKind::Gid, ExprKind::Gid)
        | (ExprKind::GroupId, ExprKind::GroupId)
        | (ExprKind::GroupSize, ExprKind::GroupSize)
        | (ExprKind::GlobalSize, ExprKind::GlobalSize) => true,
        (ExprKind::Op(o1, a1, b1), ExprKind::Op(o2, a2, b2)) => {
            o1 == o2 && expr_eq(a1, a2) && expr_eq(b1, b2)
        }
        (ExprKind::OpImm(o1, a1, i1), ExprKind::OpImm(o2, a2, i2)) => {
            o1 == o2 && i1 == i2 && expr_eq(a1, a2)
        }
        (ExprKind::Load(s1, a1), ExprKind::Load(s2, a2)) => s1 == s2 && expr_eq(a1, a2),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Product value

/// The reduced product of all four domains: one abstract register.
#[derive(Debug, Clone)]
pub struct AbsVal {
    /// Value range.
    pub rng: Interval,
    /// Power-of-two congruence.
    pub align: Align,
    /// Lane-affine shape.
    pub lane: Lane,
    /// Symbolic expression, if still exact along every path.
    pub sym: Option<Rc<Expr>>,
}

impl PartialEq for AbsVal {
    fn eq(&self, o: &Self) -> bool {
        self.rng == o.rng
            && self.align == o.align
            && self.lane == o.lane
            && match (&self.sym, &o.sym) {
                (None, None) => true,
                (Some(a), Some(b)) => expr_eq(a, b),
                _ => false,
            }
    }
}

impl AbsVal {
    /// The exact constant `v`.
    pub fn constant(v: u32) -> Self {
        Self {
            rng: Interval::singleton(v),
            align: Align::constant(v),
            lane: Lane::UNIFORM,
            sym: Some(Expr::constant(v)),
        }
    }

    /// Least upper bound; symbolic parts survive only when equal.
    pub fn join(&self, o: &Self) -> Self {
        let sym = match (&self.sym, &o.sym) {
            (Some(a), Some(b)) if expr_eq(a, b) => Some(Rc::clone(a)),
            _ => None,
        };
        Self {
            rng: self.rng.join(o.rng),
            align: self.align.join(o.align),
            lane: self.lane.join(o.lane),
            sym,
        }
    }

    /// Widening (applied at back-edge targets after a short delay).
    /// `next` must be the join of `self` with the incoming state.
    pub fn widen(&self, next: &Self) -> Self {
        let sym = match (&self.sym, &next.sym) {
            (Some(a), Some(b)) if expr_eq(a, b) => Some(Rc::clone(a)),
            _ => None,
        };
        Self {
            rng: self.rng.widen(next.rng),
            align: next.align, // finite lattice: join suffices
            lane: self.lane.widen(next.lane),
            sym,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_wrapping_add_sub() {
        let a = Interval { lo: 10, hi: 20 };
        let b = Interval::singleton(5);
        assert_eq!(
            Interval::apply(AluOp::Add, a, b),
            Interval { lo: 15, hi: 25 }
        );
        // 0 - 1 wraps to MAX on every value: still a singleton.
        let z = Interval::singleton(0);
        let one = Interval::singleton(1);
        assert_eq!(
            Interval::apply(AluOp::Sub, z, one),
            Interval::singleton(u32::MAX)
        );
        // Both endpoints wrap by the same 2^32 multiple: still exact.
        let near = Interval {
            lo: u32::MAX - 1,
            hi: u32::MAX,
        };
        let two = Interval::singleton(2);
        assert_eq!(
            Interval::apply(AluOp::Add, near, two),
            Interval { lo: 0, hi: 1 }
        );
        // A sum whose endpoints wrap by different multiples is TOP.
        let wide = Interval {
            lo: 0,
            hi: u32::MAX,
        };
        assert_eq!(Interval::apply(AluOp::Add, wide, two), Interval::TOP);
    }

    #[test]
    fn interval_masking_and_shifts() {
        let x = Interval { lo: 0, hi: 511 };
        let m = Interval::TOP;
        assert_eq!(
            Interval::apply(AluOp::And, x, m),
            Interval { lo: 0, hi: 511 }
        );
        let c = Interval::singleton(2);
        assert_eq!(
            Interval::apply(AluOp::Sll, x, c),
            Interval { lo: 0, hi: 2044 }
        );
        // Shift that can overflow goes to TOP.
        let big = Interval { lo: 0, hi: 1 << 30 };
        let s4 = Interval::singleton(4);
        assert_eq!(Interval::apply(AluOp::Sll, big, s4), Interval::TOP);
    }

    #[test]
    fn interval_div_rem_conventions() {
        let x = Interval { lo: 8, hi: 64 };
        let maybe_zero = Interval { lo: 0, hi: 4 };
        assert_eq!(Interval::apply(AluOp::Divu, x, maybe_zero), Interval::TOP);
        let zero = Interval::singleton(0);
        assert_eq!(
            Interval::apply(AluOp::Divu, x, zero),
            Interval::singleton(u32::MAX)
        );
        let y = Interval { lo: 4, hi: 8 };
        assert_eq!(
            Interval::apply(AluOp::Remu, x, y),
            Interval { lo: 0, hi: 7 }
        );
    }

    #[test]
    fn align_tracks_word_alignment_through_arith() {
        let lid = Align::UNKNOWN;
        let shifted = Align::apply(AluOp::Sll, lid, Align::constant(2), Interval::singleton(2));
        assert_eq!(shifted.m, 4);
        assert_eq!(shifted.r, 0);
        let base = Align { m: 4, r: 0 };
        let sum = Align::apply(AluOp::Add, shifted, base, Interval::TOP);
        assert_eq!(sum.m, 4);
        assert_eq!(sum.r, 0);
        let odd = Align::constant(2);
        let bad = Align::apply(AluOp::Add, sum, odd, Interval::singleton(2));
        assert_eq!(bad.m, 4);
        assert_eq!(bad.r, 2);
    }

    #[test]
    fn align_join_keeps_common_congruence() {
        let a = Align::constant(8);
        let b = Align::constant(12);
        let j = a.join(b);
        assert_eq!(j.m, 4, "8 and 12 agree mod 4");
        assert_eq!(j.r, 0);
        let c = Align::constant(9);
        let j2 = a.join(c);
        assert_eq!(j2.m, 1, "8 and 9 agree only mod 1");
    }

    #[test]
    fn lane_affine_composition() {
        let id = Lane::ID;
        let four = Lane::UNIFORM;
        let scaled = Lane::apply(AluOp::Sll, id, four, Interval::TOP, Interval::singleton(2));
        assert_eq!(scaled.singleton_coeff(), Some(4));
        let sum = Lane::apply(
            AluOp::Add,
            scaled,
            Lane::UNIFORM,
            Interval::TOP,
            Interval::TOP,
        );
        assert_eq!(sum.singleton_coeff(), Some(4));
        let masked = Lane::apply(AluOp::And, id, Lane::UNIFORM, Interval::TOP, Interval::TOP);
        assert_eq!(masked, Lane::Varying);
        assert!(Lane::apply(
            AluOp::Xor,
            Lane::UNIFORM,
            Lane::UNIFORM,
            Interval::TOP,
            Interval::TOP
        )
        .is_uniform());
    }

    #[test]
    fn expr_depth_cap_and_equality() {
        let a = Expr::id_leaf(ExprKind::Lid);
        let b = Expr::id_leaf(ExprKind::Lid);
        assert!(expr_eq(&a, &b));
        let mut e = a;
        for i in 0..SYM_DEPTH_CAP + 2 {
            match Expr::op_imm(AluOp::Add, &e, i) {
                Some(next) => e = next,
                None => return, // hit the cap as intended
            }
        }
        panic!("depth cap never engaged");
    }
}
