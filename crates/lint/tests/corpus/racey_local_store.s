; Seeded bug: every work-item of the wavefront stores its own
; lane-varying value through the same lane-uniform local address —
; an unordered race on one LRAM word.
; Expect: K012 (proven: the address is a compile-time constant)
    lid  r1
    addi r2, r0, 64
    swl  r2, r1, 0
    ret
