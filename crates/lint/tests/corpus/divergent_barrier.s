; Seeded bug: the barrier sits on one arm of a lane-varying branch,
; so the lanes of a wavefront can arrive split (the simulator faults
; with DivergentBarrier).
; Expect: K008
    lid  r1
    beq  r1, r0, skip
    bar
skip:
    ret
