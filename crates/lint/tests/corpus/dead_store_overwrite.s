; Seeded bug: the first write to r2 is overwritten before any read.
; Expect: K002
    gid  r1
    addi r2, r0, 1
    slli r2, r1, 2
    sw   r2, r1, 0
    ret
