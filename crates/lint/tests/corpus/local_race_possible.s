; Seeded smell: the store address is lid masked by a runtime
; parameter — lane-varying but not provably lane-distinct (a mask
; like 0x3 folds many lids onto one word while the stored lid still
; differs). Not provable either way: warn at the default policy,
; denial under --deny warn.
; Expect: K012 (warn)
    lid   r1
    param r2, 0
    and   r3, r1, r2
    slli  r3, r3, 2
    swl   r3, r1, 0
    ret
