; Seeded bug: r1 is read on every path before any instruction
; assigns it.
; Expect: K001
    add r2, r1, r1
    sw  r2, r2, 0
    ret
