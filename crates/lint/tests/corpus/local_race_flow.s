; Seeded bug: the store address is loaded from memory at a
; lane-convergent site and scaled — lane-uniform through the load,
; which the old syntactic taint bit could not see. Every work-item
; then stores its own lid through that shared address: a proven
; flow-sensitive race.
; Expect: K012 (deny)
    param r1, 0
    lw    r2, r1, 0
    slli  r2, r2, 2
    lid   r3
    swl   r2, r3, 0
    ret
