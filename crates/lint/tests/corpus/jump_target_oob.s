; Seeded bug: the jump targets a label placed after the last
; instruction, i.e. one past the end of the program.
; Expect: K005
    gid  r1
    slli r2, r1, 2
    sw   r2, r1, 0
    jmp  past
past:
