; Seeded bug: the kernel forgot its `ret`; execution falls off the
; end of the program and the fetch faults.
; Expect: K004
    gid  r1
    slli r2, r1, 2
    sw   r2, r1, 0
