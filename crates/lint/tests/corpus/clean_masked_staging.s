; Clean twin of local_race_possible.s — the mat_mul_local staging
; idiom. The address is lid masked to a tile and scaled; colliding
; work-items (same masked lid) load the *same* global word at a
; convergent site and store the same value, so the collision is
; benign: the value is determined by the address.
; Expect: clean under --deny warn
    lid   r1
    param r2, 4
    param r3, 2
    addi  r4, r2, -1
    and   r5, r1, r4
    slli  r5, r5, 2
    add   r6, r5, r3
    lw    r7, r6, 0
    swl   r5, r7, 0
    ret
