; Seeded bug: the loop's backward branch is the last instruction, so
; the not-taken path falls off the end of the program.
; Expect: K004
top:
    gid  r1
    slli r2, r1, 2
    sw   r2, r1, 0
    bne  r1, r0, top
