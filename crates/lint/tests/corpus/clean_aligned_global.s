; Clean twin of misaligned_possible.s: the address is gid*4 plus a
; word-aligned parameter — the alignment domain tracks the congruence
; through the shift and the add, so no K011 fires even though the
; exact addresses are launch-dependent.
; Expect: clean under --deny warn
    gid   r1
    param r2, 1
    slli  r3, r1, 2
    add   r3, r3, r2
    lw    r4, r3, 0
    sw    r3, r4, 4
    ret
