; Clean twin of local_race_flow.s, pinning the retired K007's other
; false-positive class: the stored value is loaded at a lane-convergent
; site from a uniform address, so every lane writes the *same* word
; with the *same* value — a benign broadcast the taint bit (which
; marks every load lane-varying) used to flag.
; Expect: clean under --deny warn
    param r1, 0
    lw    r2, r1, 0
    addi  r3, r0, 64
    swl   r3, r2, 0
    ret
