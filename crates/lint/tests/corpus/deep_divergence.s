; Seeded smell: nine nested lane-varying branches, one over the
; verifier's divergence-depth estimate limit of eight.
; Expect: K006
    gid r1
    blt r1, r1, out0
    blt r1, r1, out1
    blt r1, r1, out2
    blt r1, r1, out3
    blt r1, r1, out4
    blt r1, r1, out5
    blt r1, r1, out6
    blt r1, r1, out7
    blt r1, r1, out8
out0:
out1:
out2:
out3:
out4:
out5:
out6:
out7:
out8:
    ret
