; Seeded bug: the store address is the constant 65536, past the
; 16384-byte LRAM scratchpad on every lane — a proven out-of-bounds
; access, denied at the default policy.
; Expect: K010 (deny)
    lui  r1, 1
    swl  r1, r0, 0
    ret
