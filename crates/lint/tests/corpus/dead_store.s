; Seeded bug: r5 is computed and never read on any path.
; Expect: K002
    gid  r1
    addi r5, r1, 1
    slli r2, r1, 2
    sw   r2, r1, 0
    ret
