; Seeded bug: the instruction after the unconditional jump can never
; execute.
; Expect: K003
    jmp end
    addi r1, r1, 1
end:
    ret
