; Seeded bug: every access goes through the constant address 2 — a
; proven misaligned word access, denied at the default policy.
; Expect: K011 (deny)
    addi r1, r0, 2
    lwl  r2, r1, 0
    swl  r1, r2, 0
    ret
