; Clean twin of racey_local_store.s: the address lid*4 gives every
; work-item of a workgroup its own LRAM word, so the lane-varying
; value is safe. The old syntactic K007 never flagged this; the
; lane-affine domain proves it.
; Expect: clean under --deny warn
    lid  r1
    slli r2, r1, 2
    swl  r2, r1, 0
    ret
