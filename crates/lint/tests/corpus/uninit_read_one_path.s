; Seeded bug: r2 is assigned only on the branch-not-taken path, so
; the read after the join may see an uninitialized register.
; Expect: K001
    gid  r1
    beq  r1, r0, skip
    addi r2, r0, 7
skip:
    add  r3, r2, r1
    slli r4, r1, 2
    sw   r4, r3, 0
    ret
