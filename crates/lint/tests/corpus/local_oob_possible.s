; Seeded bug: the address lid*64 stays inside the 16384-byte LRAM
; only for local ids below 256; larger workgroups fault. The range is
; bounded but crosses the limit, so this is a *possible* out-of-bounds
; access: a warning at the default policy, a denial under --deny warn.
; Expect: K010 (warn)
    lid  r1
    slli r2, r1, 6
    lwl  r3, r2, 0
    swl  r2, r3, 0
    ret
