; Seeded smell: the second load's address comes out of memory, so its
; alignment is unknown — a *possible* misaligned word access: warn at
; the default policy, denial under --deny warn. (Parameters follow the
; word-aligned calling convention; loaded values promise nothing.)
; Expect: K011 (warn)
    param r1, 0
    lw    r2, r1, 0
    lw    r3, r2, 0
    sw    r1, r3, 0
    ret
