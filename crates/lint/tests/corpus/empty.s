; Seeded bug: comments only — the program assembles to zero
; instructions and the very first fetch faults.
; Expect: K009
