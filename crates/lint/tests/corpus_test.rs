//! Seeded-bug corpus: every kernel under `tests/corpus/` carries one
//! planted defect and must be flagged with exactly the lint code the
//! file header documents — no more, no less. This pins both the
//! detection power (the bug is found) and the precision (nothing else
//! fires) of the verifier.

use ggpu_lint::{verify_asm, verify_shipped, Code, LintConfig, Severity};

/// `(file, source, expected code)` for every corpus kernel.
const CORPUS: [(&str, &str, Code); 12] = [
    (
        "uninit_read.s",
        include_str!("corpus/uninit_read.s"),
        Code::K001,
    ),
    (
        "uninit_read_one_path.s",
        include_str!("corpus/uninit_read_one_path.s"),
        Code::K001,
    ),
    (
        "dead_store.s",
        include_str!("corpus/dead_store.s"),
        Code::K002,
    ),
    (
        "dead_store_overwrite.s",
        include_str!("corpus/dead_store_overwrite.s"),
        Code::K002,
    ),
    (
        "unreachable_after_jmp.s",
        include_str!("corpus/unreachable_after_jmp.s"),
        Code::K003,
    ),
    (
        "fallthrough_off_end.s",
        include_str!("corpus/fallthrough_off_end.s"),
        Code::K004,
    ),
    (
        "branch_fallthrough_off_end.s",
        include_str!("corpus/branch_fallthrough_off_end.s"),
        Code::K004,
    ),
    (
        "jump_target_oob.s",
        include_str!("corpus/jump_target_oob.s"),
        Code::K005,
    ),
    (
        "deep_divergence.s",
        include_str!("corpus/deep_divergence.s"),
        Code::K006,
    ),
    (
        "racey_local_store.s",
        include_str!("corpus/racey_local_store.s"),
        Code::K007,
    ),
    (
        "divergent_barrier.s",
        include_str!("corpus/divergent_barrier.s"),
        Code::K008,
    ),
    ("empty.s", include_str!("corpus/empty.s"), Code::K009),
];

#[test]
fn every_corpus_kernel_is_flagged_with_its_exact_code() {
    for (file, source, expected) in CORPUS {
        let (_, report) = verify_asm(file, source, &LintConfig::new())
            .unwrap_or_else(|e| panic!("{file} must assemble: {e}"));
        assert_eq!(
            report.codes(),
            vec![expected],
            "{file}: expected exactly {expected:?}, got:\n{report}"
        );
    }
}

#[test]
fn corpus_denials_match_default_severities() {
    // Deny-class bugs must gate at the default policy; warn-class
    // smells must not (they gate only under `--deny warn`).
    for (file, source, expected) in CORPUS {
        let (_, report) = verify_asm(file, source, &LintConfig::new()).unwrap();
        let expect_denial = expected.default_severity() == Severity::Deny;
        assert_eq!(
            report.denial_count() > 0,
            expect_denial,
            "{file}: denial gating disagrees with {expected:?}'s default severity"
        );
        // Under the strict policy every corpus kernel gates.
        let (_, strict) = verify_asm(file, source, &LintConfig::strict()).unwrap();
        assert!(strict.denial_count() > 0, "{file} must gate under strict");
    }
}

#[test]
fn corpus_covers_every_kernel_code() {
    let covered: Vec<Code> = {
        let mut v: Vec<Code> = CORPUS.iter().map(|(_, _, c)| *c).collect();
        v.sort();
        v.dedup();
        v
    };
    let kernel_codes: Vec<Code> = Code::ALL
        .into_iter()
        .filter(|c| c.as_str().starts_with('K'))
        .collect();
    assert_eq!(covered, kernel_codes, "corpus must exercise every K-code");
}

#[test]
fn shipped_kernels_stay_clean_at_default_severity() {
    for report in verify_shipped(&LintConfig::new()) {
        assert!(report.is_clean(), "shipped kernel not clean:\n{report}");
    }
}

#[test]
fn overriding_a_code_to_allow_suppresses_it() {
    let config = LintConfig::new().with_override(Code::K002, Severity::Allow);
    let (file, source, _) = CORPUS[2]; // dead_store.s
    let (_, report) = verify_asm(file, source, &config).unwrap();
    assert!(report.is_clean(), "{file} should be silenced:\n{report}");
}
