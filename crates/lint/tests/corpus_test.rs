//! Seeded-bug corpus: every kernel under `tests/corpus/` carries one
//! planted defect and must be flagged with exactly the lint code the
//! file header documents — no more, no less. This pins both the
//! detection power (the bug is found) and the precision (nothing else
//! fires) of the verifier. Clean twins of the absint corpus pin the
//! other side: idioms near each defect that must pass `--deny warn`.

use ggpu_lint::{verify_asm, verify_shipped, Code, LintConfig, Severity};

/// `(file, source, expected code, denies at the default policy)` for
/// every corpus kernel. The last field is explicit because the absint
/// codes are deny-by-default yet emit *possible*-tier findings capped
/// at warn — the code alone no longer implies the gate.
const CORPUS: [(&str, &str, Code, bool); 18] = [
    (
        "uninit_read.s",
        include_str!("corpus/uninit_read.s"),
        Code::K001,
        false,
    ),
    (
        "uninit_read_one_path.s",
        include_str!("corpus/uninit_read_one_path.s"),
        Code::K001,
        false,
    ),
    (
        "dead_store.s",
        include_str!("corpus/dead_store.s"),
        Code::K002,
        false,
    ),
    (
        "dead_store_overwrite.s",
        include_str!("corpus/dead_store_overwrite.s"),
        Code::K002,
        false,
    ),
    (
        "unreachable_after_jmp.s",
        include_str!("corpus/unreachable_after_jmp.s"),
        Code::K003,
        false,
    ),
    (
        "fallthrough_off_end.s",
        include_str!("corpus/fallthrough_off_end.s"),
        Code::K004,
        true,
    ),
    (
        "branch_fallthrough_off_end.s",
        include_str!("corpus/branch_fallthrough_off_end.s"),
        Code::K004,
        true,
    ),
    (
        "jump_target_oob.s",
        include_str!("corpus/jump_target_oob.s"),
        Code::K005,
        true,
    ),
    (
        "deep_divergence.s",
        include_str!("corpus/deep_divergence.s"),
        Code::K006,
        false,
    ),
    (
        "racey_local_store.s",
        include_str!("corpus/racey_local_store.s"),
        Code::K012,
        true,
    ),
    (
        "divergent_barrier.s",
        include_str!("corpus/divergent_barrier.s"),
        Code::K008,
        true,
    ),
    ("empty.s", include_str!("corpus/empty.s"), Code::K009, true),
    (
        "local_oob_proven.s",
        include_str!("corpus/local_oob_proven.s"),
        Code::K010,
        true,
    ),
    (
        "local_oob_possible.s",
        include_str!("corpus/local_oob_possible.s"),
        Code::K010,
        false,
    ),
    (
        "misaligned_proven.s",
        include_str!("corpus/misaligned_proven.s"),
        Code::K011,
        true,
    ),
    (
        "misaligned_possible.s",
        include_str!("corpus/misaligned_possible.s"),
        Code::K011,
        false,
    ),
    (
        "local_race_flow.s",
        include_str!("corpus/local_race_flow.s"),
        Code::K012,
        true,
    ),
    (
        "local_race_possible.s",
        include_str!("corpus/local_race_possible.s"),
        Code::K012,
        false,
    ),
];

/// Clean twins: `(file, source)` pairs sitting right next to a seeded
/// defect that the verifier must prove safe, even under `--deny warn`.
const CLEAN_TWINS: [(&str, &str); 4] = [
    (
        "clean_lane_distinct_store.s",
        include_str!("corpus/clean_lane_distinct_store.s"),
    ),
    (
        "clean_uniform_broadcast_store.s",
        include_str!("corpus/clean_uniform_broadcast_store.s"),
    ),
    (
        "clean_masked_staging.s",
        include_str!("corpus/clean_masked_staging.s"),
    ),
    (
        "clean_aligned_global.s",
        include_str!("corpus/clean_aligned_global.s"),
    ),
];

#[test]
fn every_corpus_kernel_is_flagged_with_its_exact_code() {
    for (file, source, expected, _) in CORPUS {
        let (_, report) = verify_asm(file, source, &LintConfig::new())
            .unwrap_or_else(|e| panic!("{file} must assemble: {e}"));
        assert_eq!(
            report.codes(),
            vec![expected],
            "{file}: expected exactly {expected:?}, got:\n{report}"
        );
    }
}

#[test]
fn corpus_denials_match_documented_tiers() {
    for (file, source, expected, expect_denial) in CORPUS {
        let (_, report) = verify_asm(file, source, &LintConfig::new()).unwrap();
        assert_eq!(
            report.denial_count() > 0,
            expect_denial,
            "{file}: denial gating disagrees with the documented tier of {expected:?}:\n{report}"
        );
        // Under the strict policy every corpus kernel gates.
        let (_, strict) = verify_asm(file, source, &LintConfig::strict()).unwrap();
        assert!(strict.denial_count() > 0, "{file} must gate under strict");
    }
}

#[test]
fn clean_twins_pass_even_under_strict_policy() {
    for (file, source) in CLEAN_TWINS {
        let (_, report) = verify_asm(file, source, &LintConfig::strict())
            .unwrap_or_else(|e| panic!("{file} must assemble: {e}"));
        assert!(report.is_clean(), "{file} must stay clean:\n{report}");
    }
}

#[test]
fn corpus_covers_every_live_kernel_code() {
    let covered: Vec<Code> = {
        let mut v: Vec<Code> = CORPUS.iter().map(|(_, _, c, _)| *c).collect();
        v.sort();
        v.dedup();
        v
    };
    let kernel_codes: Vec<Code> = Code::ALL
        .into_iter()
        .filter(|c| c.as_str().starts_with('K') && !c.retired())
        .collect();
    assert_eq!(
        covered, kernel_codes,
        "corpus must exercise every live K-code"
    );
}

#[test]
fn shipped_kernels_stay_clean_at_default_severity() {
    for report in verify_shipped(&LintConfig::new()) {
        assert!(report.is_clean(), "shipped kernel not clean:\n{report}");
    }
}

#[test]
fn overriding_a_code_to_allow_suppresses_it() {
    let config = LintConfig::new().with_override(Code::K002, Severity::Allow);
    let (file, source, _, _) = CORPUS[2]; // dead_store.s
    let (_, report) = verify_asm(file, source, &config).unwrap();
    assert!(report.is_clean(), "{file} should be silenced:\n{report}");
}
