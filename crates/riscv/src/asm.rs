//! Two-pass RV32IM assembler with standard mnemonics, ABI register
//! names, labels and the common pseudo-instructions.
//!
//! ```
//! use ggpu_riscv::asm::assemble;
//!
//! # fn main() -> Result<(), ggpu_riscv::asm::AssembleRvError> {
//! let words = assemble(
//!     "
//!     li   a0, 10
//!     li   a1, 0
//!     loop:
//!     add  a1, a1, a0
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     ecall
//!     ",
//! )?;
//! assert!(!words.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::inst::{encode, BranchFunc, LoadFunc, OpFunc, OpImmFunc, RvInst, StoreFunc};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleRvError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AssembleRvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AssembleRvError {}

fn err(line: usize, message: impl Into<String>) -> AssembleRvError {
    AssembleRvError {
        line,
        message: message.into(),
    }
}

/// Parses a register: `x0`–`x31` or an ABI name.
fn parse_reg(tok: &str, line: usize) -> Result<u8, AssembleRvError> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    if let Some(rest) = tok.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u8>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    if tok == "fp" {
        return Ok(8);
    }
    ABI.iter()
        .position(|&name| name == tok)
        .map(|p| p as u8)
        .ok_or_else(|| err(line, format!("unknown register `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AssembleRvError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Parses `offset(base)` memory-operand syntax.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, u8), AssembleRvError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off_text = tok[..open].trim();
    let offset = if off_text.is_empty() {
        0
    } else {
        parse_imm(off_text, line)?
    };
    let base = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((offset, base))
}

enum Item {
    Inst(RvInst),
    BranchTo {
        func: BranchFunc,
        rs1: u8,
        rs2: u8,
        label: String,
        line: usize,
    },
    JalTo {
        rd: u8,
        label: String,
        line: usize,
    },
}

fn check_imm12(v: i64, line: usize) -> Result<i32, AssembleRvError> {
    if !(-2048..=2047).contains(&v) {
        return Err(err(line, format!("immediate {v} exceeds 12-bit range")));
    }
    Ok(v as i32)
}

/// Assembles RV32IM source into machine-code words (program base
/// address 0).
///
/// # Errors
///
/// Returns [`AssembleRvError`] with the offending line on any syntax,
/// range or label problem.
pub fn assemble(source: &str) -> Result<Vec<u32>, AssembleRvError> {
    let mut items: Vec<Item> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();

    for (line_idx, raw) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        if let Some(pos) = text.find("//") {
            text = &text[..pos];
        }
        let mut text = text.trim();
        while let Some(pos) = text.find(':') {
            let label = text[..pos].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            if labels
                .insert(label.to_string(), (items.len() as u32) * 4)
                .is_some()
            {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            text = text[pos + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let mnemonic = parts.next().expect("nonempty").to_ascii_lowercase();
        let ops: Vec<String> = parts
            .collect::<Vec<_>>()
            .join(" ")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let want = |n: usize| -> Result<(), AssembleRvError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };
        let reg = |i: usize| parse_reg(&ops[i], line_no);

        let op_func = |name: &str| -> Option<OpFunc> {
            Some(match name {
                "add" => OpFunc::Add,
                "sub" => OpFunc::Sub,
                "sll" => OpFunc::Sll,
                "slt" => OpFunc::Slt,
                "sltu" => OpFunc::Sltu,
                "xor" => OpFunc::Xor,
                "srl" => OpFunc::Srl,
                "sra" => OpFunc::Sra,
                "or" => OpFunc::Or,
                "and" => OpFunc::And,
                "mul" => OpFunc::Mul,
                "mulh" => OpFunc::Mulh,
                "mulhsu" => OpFunc::Mulhsu,
                "mulhu" => OpFunc::Mulhu,
                "div" => OpFunc::Div,
                "divu" => OpFunc::Divu,
                "rem" => OpFunc::Rem,
                "remu" => OpFunc::Remu,
                _ => return None,
            })
        };
        let opimm_func = |name: &str| -> Option<OpImmFunc> {
            Some(match name {
                "addi" => OpImmFunc::Addi,
                "slti" => OpImmFunc::Slti,
                "sltiu" => OpImmFunc::Sltiu,
                "xori" => OpImmFunc::Xori,
                "ori" => OpImmFunc::Ori,
                "andi" => OpImmFunc::Andi,
                "slli" => OpImmFunc::Slli,
                "srli" => OpImmFunc::Srli,
                "srai" => OpImmFunc::Srai,
                _ => return None,
            })
        };
        let branch_func = |name: &str| -> Option<BranchFunc> {
            Some(match name {
                "beq" => BranchFunc::Beq,
                "bne" => BranchFunc::Bne,
                "blt" => BranchFunc::Blt,
                "bge" => BranchFunc::Bge,
                "bltu" => BranchFunc::Bltu,
                "bgeu" => BranchFunc::Bgeu,
                _ => return None,
            })
        };
        let load_func = |name: &str| -> Option<LoadFunc> {
            Some(match name {
                "lb" => LoadFunc::Lb,
                "lh" => LoadFunc::Lh,
                "lw" => LoadFunc::Lw,
                "lbu" => LoadFunc::Lbu,
                "lhu" => LoadFunc::Lhu,
                _ => return None,
            })
        };
        let store_func = |name: &str| -> Option<StoreFunc> {
            Some(match name {
                "sb" => StoreFunc::Sb,
                "sh" => StoreFunc::Sh,
                "sw" => StoreFunc::Sw,
                _ => return None,
            })
        };

        if let Some(func) = op_func(&mnemonic) {
            want(3)?;
            items.push(Item::Inst(RvInst::Op {
                func,
                rd: reg(0)?,
                rs1: reg(1)?,
                rs2: reg(2)?,
            }));
        } else if let Some(func) = opimm_func(&mnemonic) {
            want(3)?;
            let imm = parse_imm(&ops[2], line_no)?;
            let imm = match func {
                OpImmFunc::Slli | OpImmFunc::Srli | OpImmFunc::Srai => {
                    if !(0..32).contains(&imm) {
                        return Err(err(line_no, "shift amount out of range"));
                    }
                    imm as i32
                }
                _ => check_imm12(imm, line_no)?,
            };
            items.push(Item::Inst(RvInst::OpImm {
                func,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm,
            }));
        } else if let Some(func) = branch_func(&mnemonic) {
            want(3)?;
            items.push(Item::BranchTo {
                func,
                rs1: reg(0)?,
                rs2: reg(1)?,
                label: ops[2].clone(),
                line: line_no,
            });
        } else if let Some(func) = load_func(&mnemonic) {
            want(2)?;
            let (offset, base) = parse_mem_operand(&ops[1], line_no)?;
            items.push(Item::Inst(RvInst::Load {
                func,
                rd: reg(0)?,
                rs1: base,
                offset: check_imm12(offset, line_no)?,
            }));
        } else if let Some(func) = store_func(&mnemonic) {
            want(2)?;
            let (offset, base) = parse_mem_operand(&ops[1], line_no)?;
            items.push(Item::Inst(RvInst::Store {
                func,
                rs1: base,
                rs2: reg(0)?,
                offset: check_imm12(offset, line_no)?,
            }));
        } else {
            match mnemonic.as_str() {
                "lui" => {
                    want(2)?;
                    let imm = parse_imm(&ops[1], line_no)?;
                    items.push(Item::Inst(RvInst::Lui {
                        rd: reg(0)?,
                        imm: ((imm as u32) << 12) as i32,
                    }));
                }
                "li" => {
                    // li rd, imm32: expands to lui+addi when needed.
                    want(2)?;
                    let rd = reg(0)?;
                    let value = parse_imm(&ops[1], line_no)?;
                    if !(-(1i64 << 31)..(1i64 << 32)).contains(&value) {
                        return Err(err(line_no, "li immediate exceeds 32 bits"));
                    }
                    let value = value as i32;
                    if (-2048..=2047).contains(&value) {
                        items.push(Item::Inst(RvInst::OpImm {
                            func: OpImmFunc::Addi,
                            rd,
                            rs1: 0,
                            imm: value,
                        }));
                    } else {
                        let low = (value << 20) >> 20; // sign-extended low 12
                        let high = value.wrapping_sub(low) as u32 & 0xFFFF_F000;
                        items.push(Item::Inst(RvInst::Lui {
                            rd,
                            imm: high as i32,
                        }));
                        if low != 0 {
                            items.push(Item::Inst(RvInst::OpImm {
                                func: OpImmFunc::Addi,
                                rd,
                                rs1: rd,
                                imm: low,
                            }));
                        }
                    }
                }
                "mv" => {
                    want(2)?;
                    items.push(Item::Inst(RvInst::OpImm {
                        func: OpImmFunc::Addi,
                        rd: reg(0)?,
                        rs1: reg(1)?,
                        imm: 0,
                    }));
                }
                "nop" => {
                    want(0)?;
                    items.push(Item::Inst(RvInst::OpImm {
                        func: OpImmFunc::Addi,
                        rd: 0,
                        rs1: 0,
                        imm: 0,
                    }));
                }
                "beqz" | "bnez" => {
                    want(2)?;
                    let func = if mnemonic == "beqz" {
                        BranchFunc::Beq
                    } else {
                        BranchFunc::Bne
                    };
                    items.push(Item::BranchTo {
                        func,
                        rs1: reg(0)?,
                        rs2: 0,
                        label: ops[1].clone(),
                        line: line_no,
                    });
                }
                "j" => {
                    want(1)?;
                    items.push(Item::JalTo {
                        rd: 0,
                        label: ops[0].clone(),
                        line: line_no,
                    });
                }
                "jal" => {
                    if ops.len() == 1 {
                        items.push(Item::JalTo {
                            rd: 1,
                            label: ops[0].clone(),
                            line: line_no,
                        });
                    } else {
                        want(2)?;
                        items.push(Item::JalTo {
                            rd: reg(0)?,
                            label: ops[1].clone(),
                            line: line_no,
                        });
                    }
                }
                "jalr" => {
                    want(3)?;
                    items.push(Item::Inst(RvInst::Jalr {
                        rd: reg(0)?,
                        rs1: reg(1)?,
                        offset: check_imm12(parse_imm(&ops[2], line_no)?, line_no)?,
                    }));
                }
                "ret" => {
                    want(0)?;
                    items.push(Item::Inst(RvInst::Jalr {
                        rd: 0,
                        rs1: 1,
                        offset: 0,
                    }));
                }
                "ecall" => {
                    want(0)?;
                    items.push(Item::Inst(RvInst::Ecall));
                }
                _ => return Err(err(line_no, format!("unknown mnemonic `{mnemonic}`"))),
            }
        }
    }

    let resolve = |label: &str, line: usize, from: u32| -> Result<i32, AssembleRvError> {
        let target = labels
            .get(label)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label `{label}`")))?;
        Ok(target as i32 - from as i32)
    };
    items
        .into_iter()
        .enumerate()
        .map(|(idx, item)| {
            let pc = (idx as u32) * 4;
            let inst = match item {
                Item::Inst(i) => i,
                Item::BranchTo {
                    func,
                    rs1,
                    rs2,
                    label,
                    line,
                } => {
                    let offset = resolve(&label, line, pc)?;
                    if !(-4096..=4095).contains(&offset) {
                        return Err(err(line, "branch target out of range"));
                    }
                    RvInst::Branch {
                        func,
                        rs1,
                        rs2,
                        offset,
                    }
                }
                Item::JalTo { rd, label, line } => RvInst::Jal {
                    rd,
                    offset: resolve(&label, line, pc)?,
                },
            };
            Ok(encode(inst))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;

    #[test]
    fn assembles_and_decodes() {
        let words = assemble(
            "
            li   a0, 100
            li   a1, 0
            loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ecall
            ",
        )
        .unwrap();
        for w in &words {
            decode(*w).unwrap();
        }
        assert_eq!(words.len(), 6);
    }

    #[test]
    fn li_expands_large_values() {
        let small = assemble("li a0, 5").unwrap();
        assert_eq!(small.len(), 1);
        let large = assemble("li a0, 0x12345678").unwrap();
        assert_eq!(large.len(), 2);
        // High bit of low half set: lui value must compensate.
        let tricky = assemble("li a0, 0x00000FFF").unwrap();
        assert_eq!(tricky.len(), 2);
    }

    #[test]
    fn mem_operand_syntax() {
        let words = assemble("lw a0, 8(sp)\nsw a1, -4(s0)").unwrap();
        match decode(words[0]).unwrap() {
            RvInst::Load { offset, rs1, .. } => {
                assert_eq!(offset, 8);
                assert_eq!(rs1, 2);
            }
            other => panic!("{other:?}"),
        }
        match decode(words[1]).unwrap() {
            RvInst::Store { offset, rs1, .. } => {
                assert_eq!(offset, -4);
                assert_eq!(rs1, 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abi_and_numeric_registers_agree() {
        let a = assemble("add x10, x11, x12").unwrap();
        let b = assemble("add a0, a1, a2").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_report_lines() {
        let e = assemble("nop\nfoo a0, a1").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("addi a0, a1, 5000").unwrap_err();
        assert!(e.message.contains("12-bit"));
        let e = assemble("beq a0, a1, nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn forward_branches() {
        let words = assemble("beqz a0, end\nnop\nend: ecall").unwrap();
        match decode(words[0]).unwrap() {
            RvInst::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("{other:?}"),
        }
    }
}
