//! RV32IM executor with a CV32E40P-class cycle model.
//!
//! In-order 4-stage pipeline accounting: one cycle per instruction,
//! one extra cycle for loads, two flush cycles for taken branches and
//! jumps, single-cycle multiply, 34-cycle iterative divide — matching
//! the published CV32E40P characteristics.

use crate::inst::{
    decode, BranchFunc, DecodeRvError, LoadFunc, OpFunc, OpImmFunc, RvInst, StoreFunc,
};
use std::error::Error;
use std::fmt;

/// Cycle costs of the core model.
pub mod cost {
    /// Base cycles per instruction.
    pub const BASE: u64 = 1;
    /// Extra cycles for a load (data-memory stage).
    pub const LOAD_EXTRA: u64 = 1;
    /// Flush penalty of a taken branch.
    pub const BRANCH_TAKEN_EXTRA: u64 = 2;
    /// Flush penalty of a jump.
    pub const JUMP_EXTRA: u64 = 2;
    /// Extra cycles of the iterative divider.
    pub const DIV_EXTRA: u64 = 34;
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// A word failed to decode.
    Decode(DecodeRvError),
    /// PC left the loaded program.
    PcOutOfRange {
        /// The offending program counter.
        pc: u32,
    },
    /// A data access fell outside memory.
    MemFault {
        /// The offending byte address.
        addr: u32,
    },
    /// A load/store was not aligned to its width.
    Unaligned {
        /// The offending byte address.
        addr: u32,
    },
    /// The instruction budget was exhausted (runaway program).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Decode(e) => write!(f, "{e}"),
            CpuError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside program"),
            CpuError::MemFault { addr } => write!(f, "memory fault at {addr:#x}"),
            CpuError::Unaligned { addr } => write!(f, "unaligned access at {addr:#x}"),
            CpuError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeRvError> for CpuError {
    fn from(e: DecodeRvError) -> Self {
        CpuError::Decode(e)
    }
}

/// Counters of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuStats {
    /// Total cycles (per the CV32E40P-class model).
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// Multiply instructions.
    pub mul_ops: u64,
    /// Divide/remainder instructions.
    pub div_ops: u64,
}

/// The RISC-V core: registers, PC, and a flat byte-addressable memory
/// holding both program (at address 0) and data.
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    program_bytes: u32,
    memory: Vec<u8>,
    /// Instruction budget per [`Cpu::run`].
    pub step_limit: u64,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &self.pc)
            .field("memory_bytes", &self.memory.len())
            .finish()
    }
}

impl Cpu {
    /// Creates a core with `memory_bytes` of zeroed memory and loads
    /// `program` at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit in memory.
    pub fn new(program: &[u32], memory_bytes: usize) -> Self {
        assert!(
            program.len() * 4 <= memory_bytes,
            "program ({} bytes) exceeds memory ({memory_bytes} bytes)",
            program.len() * 4
        );
        let mut memory = vec![0u8; memory_bytes];
        for (i, w) in program.iter().enumerate() {
            memory[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Self {
            regs: [0; 32],
            pc: 0,
            program_bytes: (program.len() * 4) as u32,
            memory,
            step_limit: 2_000_000_000,
        }
    }

    /// Reads a register.
    pub fn reg(&self, index: u8) -> u32 {
        self.regs[index as usize]
    }

    /// Writes a register (writes to x0 are ignored).
    pub fn set_reg(&mut self, index: u8, value: u32) {
        if index != 0 {
            self.regs[index as usize] = value;
        }
    }

    /// Copies words into memory at a byte address.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds memory.
    pub fn write_words(&mut self, byte_addr: u32, data: &[u32]) -> Result<(), CpuError> {
        let start = byte_addr as usize;
        let end = start + data.len() * 4;
        if !byte_addr.is_multiple_of(4) {
            return Err(CpuError::Unaligned { addr: byte_addr });
        }
        if end > self.memory.len() {
            return Err(CpuError::MemFault { addr: end as u32 });
        }
        for (i, w) in data.iter().enumerate() {
            self.memory[start + i * 4..start + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Ok(())
    }

    /// Reads words from memory at a byte address.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds memory.
    pub fn read_words(&self, byte_addr: u32, len: usize) -> Result<Vec<u32>, CpuError> {
        if !byte_addr.is_multiple_of(4) {
            return Err(CpuError::Unaligned { addr: byte_addr });
        }
        let start = byte_addr as usize;
        let end = start + len * 4;
        if end > self.memory.len() {
            return Err(CpuError::MemFault { addr: end as u32 });
        }
        Ok((0..len)
            .map(|i| {
                u32::from_le_bytes(
                    self.memory[start + i * 4..start + i * 4 + 4]
                        .try_into()
                        .expect("4 bytes"),
                )
            })
            .collect())
    }

    fn load(&self, func: LoadFunc, addr: u32) -> Result<u32, CpuError> {
        let width = match func {
            LoadFunc::Lb | LoadFunc::Lbu => 1,
            LoadFunc::Lh | LoadFunc::Lhu => 2,
            LoadFunc::Lw => 4,
        };
        if !addr.is_multiple_of(width) {
            return Err(CpuError::Unaligned { addr });
        }
        let a = addr as usize;
        if a + width as usize > self.memory.len() {
            return Err(CpuError::MemFault { addr });
        }
        Ok(match func {
            LoadFunc::Lb => self.memory[a] as i8 as i32 as u32,
            LoadFunc::Lbu => u32::from(self.memory[a]),
            LoadFunc::Lh => i16::from_le_bytes([self.memory[a], self.memory[a + 1]]) as i32 as u32,
            LoadFunc::Lhu => u32::from(u16::from_le_bytes([self.memory[a], self.memory[a + 1]])),
            LoadFunc::Lw => u32::from_le_bytes(self.memory[a..a + 4].try_into().expect("4 bytes")),
        })
    }

    fn store(&mut self, func: StoreFunc, addr: u32, value: u32) -> Result<(), CpuError> {
        let width = match func {
            StoreFunc::Sb => 1,
            StoreFunc::Sh => 2,
            StoreFunc::Sw => 4,
        };
        if !addr.is_multiple_of(width) {
            return Err(CpuError::Unaligned { addr });
        }
        let a = addr as usize;
        if a + width as usize > self.memory.len() {
            return Err(CpuError::MemFault { addr });
        }
        let bytes = value.to_le_bytes();
        self.memory[a..a + width as usize].copy_from_slice(&bytes[..width as usize]);
        Ok(())
    }

    /// Runs until `ecall`, returning the cycle/instruction counters.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on decode failures, memory faults, PC
    /// escapes, or when `step_limit` instructions retire without a
    /// halt.
    pub fn run(&mut self) -> Result<CpuStats, CpuError> {
        let mut stats = CpuStats::default();
        loop {
            if stats.instructions >= self.step_limit {
                return Err(CpuError::StepLimit {
                    limit: self.step_limit,
                });
            }
            if !self.pc.is_multiple_of(4) || self.pc >= self.program_bytes {
                return Err(CpuError::PcOutOfRange { pc: self.pc });
            }
            let word = u32::from_le_bytes(
                self.memory[self.pc as usize..self.pc as usize + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            let inst = decode(word)?;
            stats.instructions += 1;
            stats.cycles += cost::BASE;
            let mut next_pc = self.pc.wrapping_add(4);

            match inst {
                RvInst::Lui { rd, imm } => self.set_reg(rd, imm as u32),
                RvInst::Auipc { rd, imm } => self.set_reg(rd, self.pc.wrapping_add(imm as u32)),
                RvInst::Jal { rd, offset } => {
                    self.set_reg(rd, self.pc.wrapping_add(4));
                    next_pc = self.pc.wrapping_add(offset as u32);
                    stats.cycles += cost::JUMP_EXTRA;
                }
                RvInst::Jalr { rd, rs1, offset } => {
                    let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                    self.set_reg(rd, self.pc.wrapping_add(4));
                    next_pc = target;
                    stats.cycles += cost::JUMP_EXTRA;
                }
                RvInst::Branch {
                    func,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let (a, b) = (self.reg(rs1), self.reg(rs2));
                    let taken = match func {
                        BranchFunc::Beq => a == b,
                        BranchFunc::Bne => a != b,
                        BranchFunc::Blt => (a as i32) < (b as i32),
                        BranchFunc::Bge => (a as i32) >= (b as i32),
                        BranchFunc::Bltu => a < b,
                        BranchFunc::Bgeu => a >= b,
                    };
                    if taken {
                        next_pc = self.pc.wrapping_add(offset as u32);
                        stats.cycles += cost::BRANCH_TAKEN_EXTRA;
                        stats.branches_taken += 1;
                    }
                }
                RvInst::Load {
                    func,
                    rd,
                    rs1,
                    offset,
                } => {
                    let addr = self.reg(rs1).wrapping_add(offset as u32);
                    let v = self.load(func, addr)?;
                    self.set_reg(rd, v);
                    stats.cycles += cost::LOAD_EXTRA;
                    stats.loads += 1;
                }
                RvInst::Store {
                    func,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let addr = self.reg(rs1).wrapping_add(offset as u32);
                    self.store(func, addr, self.reg(rs2))?;
                    stats.stores += 1;
                }
                RvInst::OpImm { func, rd, rs1, imm } => {
                    let a = self.reg(rs1);
                    let b = imm as u32;
                    let v = match func {
                        OpImmFunc::Addi => a.wrapping_add(b),
                        OpImmFunc::Slti => u32::from((a as i32) < imm),
                        OpImmFunc::Sltiu => u32::from(a < b),
                        OpImmFunc::Xori => a ^ b,
                        OpImmFunc::Ori => a | b,
                        OpImmFunc::Andi => a & b,
                        OpImmFunc::Slli => a.wrapping_shl(b & 31),
                        OpImmFunc::Srli => a.wrapping_shr(b & 31),
                        OpImmFunc::Srai => ((a as i32).wrapping_shr(b & 31)) as u32,
                    };
                    self.set_reg(rd, v);
                }
                #[allow(clippy::manual_checked_ops)] // RISC-V div-by-zero semantics
                RvInst::Op { func, rd, rs1, rs2 } => {
                    let a = self.reg(rs1);
                    let b = self.reg(rs2);
                    let v = match func {
                        OpFunc::Add => a.wrapping_add(b),
                        OpFunc::Sub => a.wrapping_sub(b),
                        OpFunc::Sll => a.wrapping_shl(b & 31),
                        OpFunc::Slt => u32::from((a as i32) < (b as i32)),
                        OpFunc::Sltu => u32::from(a < b),
                        OpFunc::Xor => a ^ b,
                        OpFunc::Srl => a.wrapping_shr(b & 31),
                        OpFunc::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
                        OpFunc::Or => a | b,
                        OpFunc::And => a & b,
                        OpFunc::Mul => a.wrapping_mul(b),
                        OpFunc::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
                        OpFunc::Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
                        OpFunc::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
                        OpFunc::Div => {
                            if b == 0 {
                                u32::MAX
                            } else if a == 0x8000_0000 && b == u32::MAX {
                                a
                            } else {
                                ((a as i32) / (b as i32)) as u32
                            }
                        }
                        OpFunc::Divu => {
                            if b == 0 {
                                u32::MAX
                            } else {
                                a / b
                            }
                        }
                        OpFunc::Rem => {
                            if b == 0 {
                                a
                            } else if a == 0x8000_0000 && b == u32::MAX {
                                0
                            } else {
                                ((a as i32) % (b as i32)) as u32
                            }
                        }
                        OpFunc::Remu => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        }
                    };
                    self.set_reg(rd, v);
                    if func.is_mul() {
                        stats.mul_ops += 1;
                    }
                    if func.is_div() {
                        stats.div_ops += 1;
                        stats.cycles += cost::DIV_EXTRA;
                    }
                }
                RvInst::Ecall => return Ok(stats),
            }
            self.pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> (Cpu, CpuStats) {
        let program = assemble(src).unwrap();
        let mut cpu = Cpu::new(&program, 1 << 20);
        let stats = cpu.run().unwrap();
        (cpu, stats)
    }

    #[test]
    fn sum_loop() {
        let (cpu, stats) = run("
            li   a0, 10
            li   a1, 0
            loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ecall
            ");
        assert_eq!(cpu.reg(11), 55);
        assert_eq!(stats.branches_taken, 9);
        assert!(stats.cycles > stats.instructions);
    }

    #[test]
    fn x0_is_hardwired() {
        let (cpu, _) = run("li x0, 42\necall");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let (cpu, stats) = run("
            li  a0, 0x1000
            li  a1, -7
            sw  a1, 0(a0)
            lw  a2, 0(a0)
            sb  a1, 8(a0)
            lbu a3, 8(a0)
            lb  a4, 8(a0)
            ecall
            ");
        assert_eq!(cpu.reg(12) as i32, -7);
        assert_eq!(cpu.reg(13), 0xF9);
        assert_eq!(cpu.reg(14) as i32, -7);
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.stores, 2);
    }

    #[test]
    fn m_extension_semantics() {
        let (cpu, stats) = run("
            li  a0, -6
            li  a1, 4
            mul a2, a0, a1
            div a3, a0, a1
            rem a4, a0, a1
            li  a5, 7
            li  a6, 0
            divu a7, a5, a6
            ecall
            ");
        assert_eq!(cpu.reg(12) as i32, -24);
        assert_eq!(cpu.reg(13) as i32, -1, "-6/4 truncates toward zero");
        assert_eq!(cpu.reg(14) as i32, -2);
        assert_eq!(cpu.reg(17), u32::MAX, "divide by zero");
        assert_eq!(stats.div_ops, 3);
        assert_eq!(stats.mul_ops, 1);
    }

    #[test]
    fn div_costs_more_cycles_than_mul() {
        let (_, s_mul) = run("li a0, 3\nli a1, 4\nmul a2, a0, a1\necall");
        let (_, s_div) = run("li a0, 3\nli a1, 4\ndiv a2, a0, a1\necall");
        assert!(s_div.cycles > s_mul.cycles + 30);
    }

    #[test]
    fn function_call_via_jal_ret() {
        let (cpu, _) = run("
            li   a0, 5
            jal  double
            ecall
            double:
            add  a0, a0, a0
            ret
            ");
        assert_eq!(cpu.reg(10), 10);
    }

    #[test]
    fn mem_fault_detected() {
        let program = assemble("li a0, 0x7fffff00\nlw a1, 0(a0)\necall").unwrap();
        let mut cpu = Cpu::new(&program, 4096);
        assert!(matches!(cpu.run(), Err(CpuError::MemFault { .. })));
    }

    #[test]
    fn runaway_hits_step_limit() {
        let program = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new(&program, 4096);
        cpu.step_limit = 1000;
        assert!(matches!(
            cpu.run(),
            Err(CpuError::StepLimit { limit: 1000 })
        ));
    }

    #[test]
    fn pc_escape_detected() {
        // Fall off the end of the program (no ecall).
        let program = assemble("nop").unwrap();
        let mut cpu = Cpu::new(&program, 4096);
        assert!(matches!(cpu.run(), Err(CpuError::PcOutOfRange { .. })));
    }
}
