//! RV32IM disassembler: renders machine-code words back to
//! assembler-compatible text with labelled branch/jump targets, so
//! `assemble(&disassemble(words)?) == words` for supported programs.

use crate::inst::{
    decode, BranchFunc, DecodeRvError, LoadFunc, OpFunc, OpImmFunc, RvInst, StoreFunc,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn reg(i: u8) -> String {
    format!("x{i}")
}

fn op_mnemonic(f: OpFunc) -> &'static str {
    match f {
        OpFunc::Add => "add",
        OpFunc::Sub => "sub",
        OpFunc::Sll => "sll",
        OpFunc::Slt => "slt",
        OpFunc::Sltu => "sltu",
        OpFunc::Xor => "xor",
        OpFunc::Srl => "srl",
        OpFunc::Sra => "sra",
        OpFunc::Or => "or",
        OpFunc::And => "and",
        OpFunc::Mul => "mul",
        OpFunc::Mulh => "mulh",
        OpFunc::Mulhsu => "mulhsu",
        OpFunc::Mulhu => "mulhu",
        OpFunc::Div => "div",
        OpFunc::Divu => "divu",
        OpFunc::Rem => "rem",
        OpFunc::Remu => "remu",
    }
}

fn opimm_mnemonic(f: OpImmFunc) -> &'static str {
    match f {
        OpImmFunc::Addi => "addi",
        OpImmFunc::Slti => "slti",
        OpImmFunc::Sltiu => "sltiu",
        OpImmFunc::Xori => "xori",
        OpImmFunc::Ori => "ori",
        OpImmFunc::Andi => "andi",
        OpImmFunc::Slli => "slli",
        OpImmFunc::Srli => "srli",
        OpImmFunc::Srai => "srai",
    }
}

fn branch_mnemonic(f: BranchFunc) -> &'static str {
    match f {
        BranchFunc::Beq => "beq",
        BranchFunc::Bne => "bne",
        BranchFunc::Blt => "blt",
        BranchFunc::Bge => "bge",
        BranchFunc::Bltu => "bltu",
        BranchFunc::Bgeu => "bgeu",
    }
}

fn load_mnemonic(f: LoadFunc) -> &'static str {
    match f {
        LoadFunc::Lb => "lb",
        LoadFunc::Lh => "lh",
        LoadFunc::Lw => "lw",
        LoadFunc::Lbu => "lbu",
        LoadFunc::Lhu => "lhu",
    }
}

fn store_mnemonic(f: StoreFunc) -> &'static str {
    match f {
        StoreFunc::Sb => "sb",
        StoreFunc::Sh => "sh",
        StoreFunc::Sw => "sw",
    }
}

/// Disassembles machine-code words (program base address 0).
///
/// # Errors
///
/// Returns [`DecodeRvError`] on the first word that is not a supported
/// RV32IM instruction.
pub fn disassemble(words: &[u32]) -> Result<String, DecodeRvError> {
    let decoded: Vec<RvInst> = words.iter().map(|&w| decode(w)).collect::<Result<_, _>>()?;
    // Label every pc-relative target.
    let mut labels: BTreeMap<i64, String> = BTreeMap::new();
    for (i, inst) in decoded.iter().enumerate() {
        let pc = (i as i64) * 4;
        let target = match inst {
            RvInst::Branch { offset, .. } => Some(pc + i64::from(*offset)),
            RvInst::Jal { offset, .. } => Some(pc + i64::from(*offset)),
            _ => None,
        };
        if let Some(t) = target {
            labels.entry(t).or_insert_with(|| format!("L{t}"));
        }
    }
    let mut out = String::new();
    for (i, inst) in decoded.iter().enumerate() {
        let pc = (i as i64) * 4;
        if let Some(label) = labels.get(&pc) {
            let _ = writeln!(out, "{label}:");
        }
        let _ = match inst {
            RvInst::Lui { rd, imm } => {
                writeln!(out, "    lui {}, {}", reg(*rd), (*imm as u32) >> 12)
            }
            RvInst::Auipc { rd, imm } => {
                // No assembler pseudo for auipc with label; emit raw.
                writeln!(
                    out,
                    "    # auipc {}, {:#x} (not reassemblable)",
                    reg(*rd),
                    imm
                )
            }
            RvInst::Jal { rd, offset } => {
                let target = pc + i64::from(*offset);
                writeln!(out, "    jal {}, {}", reg(*rd), labels[&target])
            }
            RvInst::Jalr { rd, rs1, offset } => {
                writeln!(out, "    jalr {}, {}, {offset}", reg(*rd), reg(*rs1))
            }
            RvInst::Branch {
                func,
                rs1,
                rs2,
                offset,
            } => {
                let target = pc + i64::from(*offset);
                writeln!(
                    out,
                    "    {} {}, {}, {}",
                    branch_mnemonic(*func),
                    reg(*rs1),
                    reg(*rs2),
                    labels[&target]
                )
            }
            RvInst::Load {
                func,
                rd,
                rs1,
                offset,
            } => writeln!(
                out,
                "    {} {}, {offset}({})",
                load_mnemonic(*func),
                reg(*rd),
                reg(*rs1)
            ),
            RvInst::Store {
                func,
                rs1,
                rs2,
                offset,
            } => writeln!(
                out,
                "    {} {}, {offset}({})",
                store_mnemonic(*func),
                reg(*rs2),
                reg(*rs1)
            ),
            RvInst::OpImm { func, rd, rs1, imm } => writeln!(
                out,
                "    {} {}, {}, {imm}",
                opimm_mnemonic(*func),
                reg(*rd),
                reg(*rs1)
            ),
            RvInst::Op { func, rd, rs1, rs2 } => writeln!(
                out,
                "    {} {}, {}, {}",
                op_mnemonic(*func),
                reg(*rd),
                reg(*rs1),
                reg(*rs2)
            ),
            RvInst::Ecall => writeln!(out, "    ecall"),
        };
    }
    if let Some(label) = labels.get(&((decoded.len() as i64) * 4)) {
        let _ = writeln!(out, "{label}:");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn roundtrip_through_text() {
        let words = assemble(
            "
            li   a0, 10
            li   a1, 0
            loop:
            add  a1, a1, a0
            lw   t0, 4(sp)
            sw   t0, -8(s0)
            addi a0, a0, -1
            bnez a0, loop
            jal  ra, helper
            ecall
            helper:
            srai t1, t2, 3
            mulh t3, t4, t5
            ret
            ",
        )
        .unwrap();
        let text = disassemble(&words).unwrap();
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reassembled, words);
    }

    #[test]
    fn lui_prints_the_page_number() {
        let words = assemble("lui a0, 0x12345").unwrap();
        let text = disassemble(&words).unwrap();
        assert!(text.contains("lui x10, 74565"), "{text}");
    }

    #[test]
    fn bad_word_is_an_error() {
        assert!(disassemble(&[0xFFFF_FFFF]).is_err());
    }
}
