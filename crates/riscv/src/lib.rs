//! RV32IM instruction-set simulator used as the paper's comparison
//! baseline (a CV32E40P-class in-order core with 32 KiB of memory).
//!
//! Real RISC-V binary encodings ([`inst`]), a two-pass assembler
//! ([`asm`]) and an executor with a published-core cycle model
//! ([`cpu`]).
//!
//! # Example
//!
//! ```
//! use ggpu_riscv::{assemble, Cpu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("li a0, 6\nli a1, 7\nmul a2, a0, a1\necall")?;
//! let mut cpu = Cpu::new(&program, 1 << 16);
//! let stats = cpu.run()?;
//! assert_eq!(cpu.reg(12), 42);
//! assert!(stats.cycles >= stats.instructions);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod inst;

pub use asm::{assemble, AssembleRvError};
pub use cpu::{Cpu, CpuError, CpuStats};
pub use disasm::disassemble;
pub use inst::{decode, encode, DecodeRvError, RvInst};
