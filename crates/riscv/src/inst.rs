//! RV32IM instruction definitions with real binary encode/decode.
//!
//! The baseline CPU of the paper's evaluation is a CV32E40P-class
//! RV32IM core; this module implements the relevant instruction
//! formats (R/I/S/B/U/J) with their standard RISC-V encodings.

use std::error::Error;
use std::fmt;

/// One decoded RV32IM instruction (fields hold register indices
/// 0–31 and sign-extended immediates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RvInst {
    Lui {
        rd: u8,
        imm: i32,
    },
    Auipc {
        rd: u8,
        imm: i32,
    },
    Jal {
        rd: u8,
        offset: i32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Branch {
        func: BranchFunc,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    Load {
        func: LoadFunc,
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Store {
        func: StoreFunc,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    OpImm {
        func: OpImmFunc,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Op {
        func: OpFunc,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Ecall,
}

/// Branch comparisons (funct3 of the BRANCH opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BranchFunc {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Load widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum LoadFunc {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum StoreFunc {
    Sb,
    Sh,
    Sw,
}

/// Immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum OpImmFunc {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// Register-register operations (RV32I plus the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum OpFunc {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl OpFunc {
    /// `true` for M-extension multiply ops.
    pub fn is_mul(self) -> bool {
        matches!(
            self,
            OpFunc::Mul | OpFunc::Mulh | OpFunc::Mulhsu | OpFunc::Mulhu
        )
    }

    /// `true` for M-extension divide/remainder ops.
    pub fn is_div(self) -> bool {
        matches!(
            self,
            OpFunc::Div | OpFunc::Divu | OpFunc::Rem | OpFunc::Remu
        )
    }
}

/// A word that is not a supported RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeRvError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeRvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid RV32IM instruction {:#010x}", self.word)
    }
}

impl Error for DecodeRvError {}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Encodes an instruction to its RV32IM word.
pub fn encode(inst: RvInst) -> u32 {
    let r = |v: u8| u32::from(v);
    match inst {
        RvInst::Lui { rd, imm } => ((imm as u32) & 0xFFFF_F000) | (r(rd) << 7) | 0x37,
        RvInst::Auipc { rd, imm } => ((imm as u32) & 0xFFFF_F000) | (r(rd) << 7) | 0x17,
        RvInst::Jal { rd, offset } => {
            let o = offset as u32;
            let imm20 = (o >> 20) & 1;
            let imm10_1 = (o >> 1) & 0x3FF;
            let imm11 = (o >> 11) & 1;
            let imm19_12 = (o >> 12) & 0xFF;
            (imm20 << 31) | (imm10_1 << 21) | (imm11 << 20) | (imm19_12 << 12) | (r(rd) << 7) | 0x6F
        }
        RvInst::Jalr { rd, rs1, offset } => {
            ((offset as u32 & 0xFFF) << 20) | (r(rs1) << 15) | (r(rd) << 7) | 0x67
        }
        RvInst::Branch {
            func,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match func {
                BranchFunc::Beq => 0,
                BranchFunc::Bne => 1,
                BranchFunc::Blt => 4,
                BranchFunc::Bge => 5,
                BranchFunc::Bltu => 6,
                BranchFunc::Bgeu => 7,
            };
            let o = offset as u32;
            let imm12 = (o >> 12) & 1;
            let imm10_5 = (o >> 5) & 0x3F;
            let imm4_1 = (o >> 1) & 0xF;
            let imm11 = (o >> 11) & 1;
            (imm12 << 31)
                | (imm10_5 << 25)
                | (r(rs2) << 20)
                | (r(rs1) << 15)
                | (f3 << 12)
                | (imm4_1 << 8)
                | (imm11 << 7)
                | 0x63
        }
        RvInst::Load {
            func,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match func {
                LoadFunc::Lb => 0,
                LoadFunc::Lh => 1,
                LoadFunc::Lw => 2,
                LoadFunc::Lbu => 4,
                LoadFunc::Lhu => 5,
            };
            ((offset as u32 & 0xFFF) << 20) | (r(rs1) << 15) | (f3 << 12) | (r(rd) << 7) | 0x03
        }
        RvInst::Store {
            func,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match func {
                StoreFunc::Sb => 0,
                StoreFunc::Sh => 1,
                StoreFunc::Sw => 2,
            };
            let o = offset as u32;
            ((o >> 5 & 0x7F) << 25)
                | (r(rs2) << 20)
                | (r(rs1) << 15)
                | (f3 << 12)
                | ((o & 0x1F) << 7)
                | 0x23
        }
        RvInst::OpImm { func, rd, rs1, imm } => {
            let (f3, imm12) = match func {
                OpImmFunc::Addi => (0, imm as u32 & 0xFFF),
                OpImmFunc::Slti => (2, imm as u32 & 0xFFF),
                OpImmFunc::Sltiu => (3, imm as u32 & 0xFFF),
                OpImmFunc::Xori => (4, imm as u32 & 0xFFF),
                OpImmFunc::Ori => (6, imm as u32 & 0xFFF),
                OpImmFunc::Andi => (7, imm as u32 & 0xFFF),
                OpImmFunc::Slli => (1, imm as u32 & 0x1F),
                OpImmFunc::Srli => (5, imm as u32 & 0x1F),
                OpImmFunc::Srai => (5, (imm as u32 & 0x1F) | 0x400),
            };
            (imm12 << 20) | (r(rs1) << 15) | (f3 << 12) | (r(rd) << 7) | 0x13
        }
        RvInst::Op { func, rd, rs1, rs2 } => {
            let (f7, f3) = match func {
                OpFunc::Add => (0x00, 0),
                OpFunc::Sub => (0x20, 0),
                OpFunc::Sll => (0x00, 1),
                OpFunc::Slt => (0x00, 2),
                OpFunc::Sltu => (0x00, 3),
                OpFunc::Xor => (0x00, 4),
                OpFunc::Srl => (0x00, 5),
                OpFunc::Sra => (0x20, 5),
                OpFunc::Or => (0x00, 6),
                OpFunc::And => (0x00, 7),
                OpFunc::Mul => (0x01, 0),
                OpFunc::Mulh => (0x01, 1),
                OpFunc::Mulhsu => (0x01, 2),
                OpFunc::Mulhu => (0x01, 3),
                OpFunc::Div => (0x01, 4),
                OpFunc::Divu => (0x01, 5),
                OpFunc::Rem => (0x01, 6),
                OpFunc::Remu => (0x01, 7),
            };
            (f7 << 25) | (r(rs2) << 20) | (r(rs1) << 15) | (f3 << 12) | (r(rd) << 7) | 0x33
        }
        RvInst::Ecall => 0x0000_0073,
    }
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes an RV32IM word.
///
/// # Errors
///
/// Returns [`DecodeRvError`] for unsupported encodings.
pub fn decode(word: u32) -> Result<RvInst, DecodeRvError> {
    let opcode = word & 0x7F;
    let rd = bits(word, 11, 7) as u8;
    let rs1 = bits(word, 19, 15) as u8;
    let rs2 = bits(word, 24, 20) as u8;
    let f3 = bits(word, 14, 12);
    let f7 = bits(word, 31, 25);
    let bad = Err(DecodeRvError { word });
    let inst = match opcode {
        0x37 => RvInst::Lui {
            rd,
            imm: (word & 0xFFFF_F000) as i32,
        },
        0x17 => RvInst::Auipc {
            rd,
            imm: (word & 0xFFFF_F000) as i32,
        },
        0x6F => {
            let imm = (bits(word, 31, 31) << 20)
                | (bits(word, 19, 12) << 12)
                | (bits(word, 20, 20) << 11)
                | (bits(word, 30, 21) << 1);
            RvInst::Jal {
                rd,
                offset: sign_extend(imm, 21),
            }
        }
        0x67 => {
            if f3 != 0 {
                return bad;
            }
            RvInst::Jalr {
                rd,
                rs1,
                offset: sign_extend(bits(word, 31, 20), 12),
            }
        }
        0x63 => {
            let func = match f3 {
                0 => BranchFunc::Beq,
                1 => BranchFunc::Bne,
                4 => BranchFunc::Blt,
                5 => BranchFunc::Bge,
                6 => BranchFunc::Bltu,
                7 => BranchFunc::Bgeu,
                _ => return bad,
            };
            let imm = (bits(word, 31, 31) << 12)
                | (bits(word, 7, 7) << 11)
                | (bits(word, 30, 25) << 5)
                | (bits(word, 11, 8) << 1);
            RvInst::Branch {
                func,
                rs1,
                rs2,
                offset: sign_extend(imm, 13),
            }
        }
        0x03 => {
            let func = match f3 {
                0 => LoadFunc::Lb,
                1 => LoadFunc::Lh,
                2 => LoadFunc::Lw,
                4 => LoadFunc::Lbu,
                5 => LoadFunc::Lhu,
                _ => return bad,
            };
            RvInst::Load {
                func,
                rd,
                rs1,
                offset: sign_extend(bits(word, 31, 20), 12),
            }
        }
        0x23 => {
            let func = match f3 {
                0 => StoreFunc::Sb,
                1 => StoreFunc::Sh,
                2 => StoreFunc::Sw,
                _ => return bad,
            };
            let imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7);
            RvInst::Store {
                func,
                rs1,
                rs2,
                offset: sign_extend(imm, 12),
            }
        }
        0x13 => {
            let func = match f3 {
                0 => OpImmFunc::Addi,
                2 => OpImmFunc::Slti,
                3 => OpImmFunc::Sltiu,
                4 => OpImmFunc::Xori,
                6 => OpImmFunc::Ori,
                7 => OpImmFunc::Andi,
                1 if f7 == 0 => OpImmFunc::Slli,
                5 if f7 == 0 => OpImmFunc::Srli,
                5 if f7 == 0x20 => OpImmFunc::Srai,
                _ => return bad,
            };
            let imm = match func {
                OpImmFunc::Slli | OpImmFunc::Srli | OpImmFunc::Srai => rs2 as i32,
                _ => sign_extend(bits(word, 31, 20), 12),
            };
            RvInst::OpImm { func, rd, rs1, imm }
        }
        0x33 => {
            let func = match (f7, f3) {
                (0x00, 0) => OpFunc::Add,
                (0x20, 0) => OpFunc::Sub,
                (0x00, 1) => OpFunc::Sll,
                (0x00, 2) => OpFunc::Slt,
                (0x00, 3) => OpFunc::Sltu,
                (0x00, 4) => OpFunc::Xor,
                (0x00, 5) => OpFunc::Srl,
                (0x20, 5) => OpFunc::Sra,
                (0x00, 6) => OpFunc::Or,
                (0x00, 7) => OpFunc::And,
                (0x01, 0) => OpFunc::Mul,
                (0x01, 1) => OpFunc::Mulh,
                (0x01, 2) => OpFunc::Mulhsu,
                (0x01, 3) => OpFunc::Mulhu,
                (0x01, 4) => OpFunc::Div,
                (0x01, 5) => OpFunc::Divu,
                (0x01, 6) => OpFunc::Rem,
                (0x01, 7) => OpFunc::Remu,
                _ => return bad,
            };
            RvInst::Op { func, rd, rs1, rs2 }
        }
        0x73 if word == 0x0000_0073 => RvInst::Ecall,
        _ => return bad,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // addi x1, x0, 5  =>  0x00500093
        assert_eq!(
            encode(RvInst::OpImm {
                func: OpImmFunc::Addi,
                rd: 1,
                rs1: 0,
                imm: 5
            }),
            0x0050_0093
        );
        // add x3, x1, x2  =>  0x002081b3
        assert_eq!(
            encode(RvInst::Op {
                func: OpFunc::Add,
                rd: 3,
                rs1: 1,
                rs2: 2
            }),
            0x0020_81B3
        );
        // lw x5, 8(x2)  =>  0x00812283
        assert_eq!(
            encode(RvInst::Load {
                func: LoadFunc::Lw,
                rd: 5,
                rs1: 2,
                offset: 8
            }),
            0x0081_2283
        );
        // ecall
        assert_eq!(encode(RvInst::Ecall), 0x0000_0073);
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let samples = vec![
            RvInst::Lui {
                rd: 7,
                imm: 0x12345 << 12,
            },
            RvInst::Auipc { rd: 1, imm: -4096 },
            RvInst::Jal {
                rd: 1,
                offset: -2048,
            },
            RvInst::Jal {
                rd: 0,
                offset: 4094,
            },
            RvInst::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            },
            RvInst::Branch {
                func: BranchFunc::Bge,
                rs1: 4,
                rs2: 5,
                offset: -64,
            },
            RvInst::Branch {
                func: BranchFunc::Bltu,
                rs1: 30,
                rs2: 31,
                offset: 250,
            },
            RvInst::Load {
                func: LoadFunc::Lbu,
                rd: 9,
                rs1: 10,
                offset: -1,
            },
            RvInst::Store {
                func: StoreFunc::Sw,
                rs1: 2,
                rs2: 3,
                offset: -12,
            },
            RvInst::OpImm {
                func: OpImmFunc::Srai,
                rd: 6,
                rs1: 6,
                imm: 31,
            },
            RvInst::Op {
                func: OpFunc::Remu,
                rd: 11,
                rs1: 12,
                rs2: 13,
            },
            RvInst::Ecall,
        ];
        for inst in samples {
            assert_eq!(decode(encode(inst)).unwrap(), inst, "{inst:?}");
        }
    }

    #[test]
    fn invalid_words_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
        // fence is unsupported
        assert!(decode(0x0000_000F).is_err());
    }

    #[test]
    fn m_extension_classification() {
        assert!(OpFunc::Mul.is_mul());
        assert!(OpFunc::Div.is_div());
        assert!(!OpFunc::Add.is_mul());
        assert!(!OpFunc::Add.is_div());
    }
}
