//! Property tests of the RV32IM model: encode/decode round trips over
//! the instruction space, and executed arithmetic agrees with Rust's
//! reference semantics.

use ggpu_prop::{cases, Rng};
use ggpu_riscv::inst::{
    decode, encode, BranchFunc, LoadFunc, OpFunc, OpImmFunc, RvInst, StoreFunc,
};
use ggpu_riscv::{assemble, Cpu};

const OPS: [OpFunc; 18] = [
    OpFunc::Add,
    OpFunc::Sub,
    OpFunc::Sll,
    OpFunc::Slt,
    OpFunc::Sltu,
    OpFunc::Xor,
    OpFunc::Srl,
    OpFunc::Sra,
    OpFunc::Or,
    OpFunc::And,
    OpFunc::Mul,
    OpFunc::Mulh,
    OpFunc::Mulhsu,
    OpFunc::Mulhu,
    OpFunc::Div,
    OpFunc::Divu,
    OpFunc::Rem,
    OpFunc::Remu,
];

const BRANCHES: [BranchFunc; 6] = [
    BranchFunc::Beq,
    BranchFunc::Bne,
    BranchFunc::Blt,
    BranchFunc::Bge,
    BranchFunc::Bltu,
    BranchFunc::Bgeu,
];

const LOADS: [LoadFunc; 5] = [
    LoadFunc::Lb,
    LoadFunc::Lh,
    LoadFunc::Lw,
    LoadFunc::Lbu,
    LoadFunc::Lhu,
];

const STORES: [StoreFunc; 3] = [StoreFunc::Sb, StoreFunc::Sh, StoreFunc::Sw];

const OP_IMMS: [OpImmFunc; 6] = [
    OpImmFunc::Addi,
    OpImmFunc::Slti,
    OpImmFunc::Sltiu,
    OpImmFunc::Xori,
    OpImmFunc::Ori,
    OpImmFunc::Andi,
];

const SHIFT_IMMS: [OpImmFunc; 3] = [OpImmFunc::Slli, OpImmFunc::Srli, OpImmFunc::Srai];

fn arb_reg(rng: &mut Rng) -> u8 {
    rng.u32_in(0, 31) as u8
}

fn arb_inst(rng: &mut Rng) -> RvInst {
    match rng.u32_in(0, 10) {
        0 => RvInst::Lui {
            rd: arb_reg(rng),
            imm: rng.any_i32() & !0xFFF_i32,
        },
        1 => RvInst::Auipc {
            rd: arb_reg(rng),
            imm: rng.any_i32() & !0xFFF_i32,
        },
        2 => RvInst::Jal {
            rd: arb_reg(rng),
            offset: rng.i32_in(-1_048_576, 1_048_574) & !1,
        },
        3 => RvInst::Jalr {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            offset: rng.i32_in(-2048, 2047),
        },
        4 => RvInst::Branch {
            func: rng.pick_copy(&BRANCHES),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            offset: rng.i32_in(-4096, 4095) & !1,
        },
        5 => RvInst::Load {
            func: rng.pick_copy(&LOADS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            offset: rng.i32_in(-2048, 2047),
        },
        6 => RvInst::Store {
            func: rng.pick_copy(&STORES),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            offset: rng.i32_in(-2048, 2047),
        },
        7 => RvInst::OpImm {
            func: rng.pick_copy(&OP_IMMS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.i32_in(-2048, 2047),
        },
        8 => RvInst::OpImm {
            func: rng.pick_copy(&SHIFT_IMMS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.i32_in(0, 31),
        },
        9 => RvInst::Op {
            func: rng.pick_copy(&OPS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
        },
        _ => RvInst::Ecall,
    }
}

#[test]
fn encode_decode_roundtrip() {
    cases(512, |rng| {
        let inst = arb_inst(rng);
        assert_eq!(decode(encode(inst)).expect("encodable"), inst);
    });
}

#[test]
#[allow(clippy::manual_checked_ops)] // reference mirrors ISA div-by-zero semantics
fn executed_op_matches_reference() {
    cases(256, |rng| {
        let op = rng.pick_copy(&OPS);
        let a = rng.any_u32();
        let b = rng.any_u32();
        // Program: a in x5, b in x6, result in x7.
        let mnemonic = match op {
            OpFunc::Add => "add",
            OpFunc::Sub => "sub",
            OpFunc::Sll => "sll",
            OpFunc::Slt => "slt",
            OpFunc::Sltu => "sltu",
            OpFunc::Xor => "xor",
            OpFunc::Srl => "srl",
            OpFunc::Sra => "sra",
            OpFunc::Or => "or",
            OpFunc::And => "and",
            OpFunc::Mul => "mul",
            OpFunc::Mulh => "mulh",
            OpFunc::Mulhsu => "mulhsu",
            OpFunc::Mulhu => "mulhu",
            OpFunc::Div => "div",
            OpFunc::Divu => "divu",
            OpFunc::Rem => "rem",
            OpFunc::Remu => "remu",
        };
        let program = assemble(&format!("{mnemonic} t2, t0, t1\necall")).expect("valid");
        let mut cpu = Cpu::new(&program, 4096);
        cpu.set_reg(5, a);
        cpu.set_reg(6, b);
        cpu.run().expect("halts");
        let expect = match op {
            OpFunc::Add => a.wrapping_add(b),
            OpFunc::Sub => a.wrapping_sub(b),
            OpFunc::Sll => a << (b & 31),
            OpFunc::Slt => u32::from((a as i32) < (b as i32)),
            OpFunc::Sltu => u32::from(a < b),
            OpFunc::Xor => a ^ b,
            OpFunc::Srl => a >> (b & 31),
            OpFunc::Sra => ((a as i32) >> (b & 31)) as u32,
            OpFunc::Or => a | b,
            OpFunc::And => a & b,
            OpFunc::Mul => a.wrapping_mul(b),
            OpFunc::Mulh => ((i64::from(a as i32).wrapping_mul(i64::from(b as i32))) >> 32) as u32,
            OpFunc::Mulhsu => ((i64::from(a as i32).wrapping_mul(i64::from(b))) >> 32) as u32,
            OpFunc::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            OpFunc::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            OpFunc::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            OpFunc::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
            OpFunc::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        };
        assert_eq!(cpu.reg(7), expect);
    });
}

#[test]
fn memory_roundtrip_via_store_load() {
    cases(256, |rng| {
        let value = rng.any_u32();
        let slot = rng.u32_in(0, 63);
        let addr = 0x1000 + slot * 4;
        let program =
            assemble(&format!("li t0, {addr}\nsw t1, 0(t0)\nlw t2, 0(t0)\necall")).expect("valid");
        let mut cpu = Cpu::new(&program, 1 << 16);
        cpu.set_reg(6, value);
        cpu.run().expect("halts");
        assert_eq!(cpu.reg(7), value);
    });
}
