//! Property tests of the RV32IM model: encode/decode round trips over
//! the instruction space, and executed arithmetic agrees with Rust's
//! reference semantics.

use ggpu_riscv::inst::{
    decode, encode, BranchFunc, LoadFunc, OpFunc, OpImmFunc, RvInst, StoreFunc,
};
use ggpu_riscv::{assemble, Cpu};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn arb_op() -> impl Strategy<Value = OpFunc> {
    prop_oneof![
        Just(OpFunc::Add), Just(OpFunc::Sub), Just(OpFunc::Sll), Just(OpFunc::Slt),
        Just(OpFunc::Sltu), Just(OpFunc::Xor), Just(OpFunc::Srl), Just(OpFunc::Sra),
        Just(OpFunc::Or), Just(OpFunc::And), Just(OpFunc::Mul), Just(OpFunc::Mulh),
        Just(OpFunc::Mulhsu), Just(OpFunc::Mulhu), Just(OpFunc::Div), Just(OpFunc::Divu),
        Just(OpFunc::Rem), Just(OpFunc::Remu),
    ]
}

fn arb_inst() -> impl Strategy<Value = RvInst> {
    prop_oneof![
        (arb_reg(), any::<i32>()).prop_map(|(rd, v)| RvInst::Lui { rd, imm: v & !0xFFF_i32 }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, v)| RvInst::Auipc { rd, imm: v & !0xFFF_i32 }),
        (arb_reg(), -1_048_576i32..1_048_575)
            .prop_map(|(rd, o)| RvInst::Jal { rd, offset: o & !1 }),
        (arb_reg(), arb_reg(), -2048i32..=2047)
            .prop_map(|(rd, rs1, offset)| RvInst::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchFunc::Beq), Just(BranchFunc::Bne), Just(BranchFunc::Blt),
                Just(BranchFunc::Bge), Just(BranchFunc::Bltu), Just(BranchFunc::Bgeu)
            ],
            arb_reg(), arb_reg(), -4096i32..=4095
        )
            .prop_map(|(func, rs1, rs2, o)| RvInst::Branch { func, rs1, rs2, offset: o & !1 }),
        (
            prop_oneof![Just(LoadFunc::Lb), Just(LoadFunc::Lh), Just(LoadFunc::Lw),
                        Just(LoadFunc::Lbu), Just(LoadFunc::Lhu)],
            arb_reg(), arb_reg(), -2048i32..=2047
        )
            .prop_map(|(func, rd, rs1, offset)| RvInst::Load { func, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreFunc::Sb), Just(StoreFunc::Sh), Just(StoreFunc::Sw)],
            arb_reg(), arb_reg(), -2048i32..=2047
        )
            .prop_map(|(func, rs1, rs2, offset)| RvInst::Store { func, rs1, rs2, offset }),
        (
            prop_oneof![Just(OpImmFunc::Addi), Just(OpImmFunc::Slti), Just(OpImmFunc::Sltiu),
                        Just(OpImmFunc::Xori), Just(OpImmFunc::Ori), Just(OpImmFunc::Andi)],
            arb_reg(), arb_reg(), -2048i32..=2047
        )
            .prop_map(|(func, rd, rs1, imm)| RvInst::OpImm { func, rd, rs1, imm }),
        (
            prop_oneof![Just(OpImmFunc::Slli), Just(OpImmFunc::Srli), Just(OpImmFunc::Srai)],
            arb_reg(), arb_reg(), 0i32..32
        )
            .prop_map(|(func, rd, rs1, imm)| RvInst::OpImm { func, rd, rs1, imm }),
        (arb_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(func, rd, rs1, rs2)| RvInst::Op { func, rd, rs1, rs2 }),
        Just(RvInst::Ecall),
    ]
}

#[allow(clippy::manual_checked_ops)] // reference mirrors ISA div-by-zero semantics
mod props {
use super::*;
proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        prop_assert_eq!(decode(encode(inst)).expect("encodable"), inst);
    }

    #[test]
    fn executed_op_matches_reference(op in arb_op(), a: u32, b: u32) {
        // Program: a in x5, b in x6, result in x7.
        let mnemonic = match op {
            OpFunc::Add => "add", OpFunc::Sub => "sub", OpFunc::Sll => "sll",
            OpFunc::Slt => "slt", OpFunc::Sltu => "sltu", OpFunc::Xor => "xor",
            OpFunc::Srl => "srl", OpFunc::Sra => "sra", OpFunc::Or => "or",
            OpFunc::And => "and", OpFunc::Mul => "mul", OpFunc::Mulh => "mulh",
            OpFunc::Mulhsu => "mulhsu", OpFunc::Mulhu => "mulhu", OpFunc::Div => "div",
            OpFunc::Divu => "divu", OpFunc::Rem => "rem", OpFunc::Remu => "remu",
        };
        let program = assemble(&format!("{mnemonic} t2, t0, t1\necall")).expect("valid");
        let mut cpu = Cpu::new(&program, 4096);
        cpu.set_reg(5, a);
        cpu.set_reg(6, b);
        cpu.run().expect("halts");
        let expect = match op {
            OpFunc::Add => a.wrapping_add(b),
            OpFunc::Sub => a.wrapping_sub(b),
            OpFunc::Sll => a << (b & 31),
            OpFunc::Slt => u32::from((a as i32) < (b as i32)),
            OpFunc::Sltu => u32::from(a < b),
            OpFunc::Xor => a ^ b,
            OpFunc::Srl => a >> (b & 31),
            OpFunc::Sra => ((a as i32) >> (b & 31)) as u32,
            OpFunc::Or => a | b,
            OpFunc::And => a & b,
            OpFunc::Mul => a.wrapping_mul(b),
            OpFunc::Mulh => ((i64::from(a as i32).wrapping_mul(i64::from(b as i32))) >> 32) as u32,
            OpFunc::Mulhsu => ((i64::from(a as i32).wrapping_mul(i64::from(b))) >> 32) as u32,
            OpFunc::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            OpFunc::Div => {
                if b == 0 { u32::MAX }
                else if a == 0x8000_0000 && b == u32::MAX { a }
                else { ((a as i32).wrapping_div(b as i32)) as u32 }
            }
            OpFunc::Divu => if b == 0 { u32::MAX } else { a / b },
            OpFunc::Rem => {
                if b == 0 { a }
                else if a == 0x8000_0000 && b == u32::MAX { 0 }
                else { ((a as i32).wrapping_rem(b as i32)) as u32 }
            }
            OpFunc::Remu => if b == 0 { a } else { a % b },
        };
        prop_assert_eq!(cpu.reg(7), expect);
    }

    #[test]
    fn memory_roundtrip_via_store_load(value: u32, slot in 0u32..64) {
        let addr = 0x1000 + slot * 4;
        let program = assemble(&format!(
            "li t0, {addr}\nsw t1, 0(t0)\nlw t2, 0(t0)\necall"
        )).expect("valid");
        let mut cpu = Cpu::new(&program, 1 << 16);
        cpu.set_reg(6, value);
        cpu.run().expect("halts");
        prop_assert_eq!(cpu.reg(7), value);
    }
}

}
