//! Disassembler: renders a program back to assembler-compatible text,
//! labelling branch/jump targets so the output re-assembles to the
//! identical instruction stream.

use crate::inst::{AluOp, BranchCond, IdSource, Inst};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Divu => "divu",
        AluOp::Remu => "remu",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn cond_mnemonic(cond: BranchCond) -> &'static str {
    match cond {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

fn id_mnemonic(src: IdSource) -> &'static str {
    match src {
        IdSource::GlobalId => "gid",
        IdSource::LocalId => "lid",
        IdSource::GroupId => "wgid",
        IdSource::GroupSize => "wgsize",
        IdSource::GlobalSize => "gsize",
    }
}

/// Renders `program` as assembler-compatible text. Control-flow
/// targets become `L<index>:` labels, so
/// `assemble(&disassemble(p)) == p` for any valid program.
pub fn disassemble(program: &[Inst]) -> String {
    // Collect every referenced target.
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    for inst in program {
        let target = match inst {
            Inst::Branch { target, .. } | Inst::Jmp { target } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            labels.entry(t).or_insert_with(|| format!("L{t}"));
        }
    }
    let mut out = String::new();
    for (pc, inst) in program.iter().enumerate() {
        if let Some(label) = labels.get(&(pc as u32)) {
            let _ = writeln!(out, "{label}:");
        }
        let _ = match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                writeln!(out, "    {} {rd}, {rs1}, {rs2}", alu_mnemonic(*op))
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                writeln!(out, "    {}i {rd}, {rs1}, {imm}", alu_mnemonic(*op))
            }
            Inst::Lui { rd, imm } => writeln!(out, "    lui {rd}, {imm}"),
            Inst::ReadId { rd, src } => writeln!(out, "    {} {rd}", id_mnemonic(*src)),
            Inst::Param { rd, idx } => writeln!(out, "    param {rd}, {idx}"),
            Inst::Lw { rd, rs1, imm } => writeln!(out, "    lw {rd}, {rs1}, {imm}"),
            Inst::Sw { rs1, rs2, imm } => writeln!(out, "    sw {rs1}, {rs2}, {imm}"),
            Inst::Lwl { rd, rs1, imm } => writeln!(out, "    lwl {rd}, {rs1}, {imm}"),
            Inst::Swl { rs1, rs2, imm } => writeln!(out, "    swl {rs1}, {rs2}, {imm}"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => writeln!(
                out,
                "    {} {rs1}, {rs2}, {}",
                cond_mnemonic(*cond),
                labels[target]
            ),
            Inst::Jmp { target } => writeln!(out, "    jmp {}", labels[target]),
            Inst::Bar => writeln!(out, "    bar"),
            Inst::Ret => writeln!(out, "    ret"),
        };
    }
    // Targets pointing one past the end (loops that fall off) get a
    // trailing label.
    if let Some(label) = labels.get(&(program.len() as u32)) {
        let _ = writeln!(out, "{label}:");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn roundtrip_through_text() {
        let original = assemble(
            "
            gid r1
            param r2, 0
            addi r3, r0, 0
            loop:
            slli r4, r3, 2
            add r4, r4, r2
            lw r5, r4, 0
            add r6, r6, r5
            addi r3, r3, 1
            blt r3, r1, loop
            beq r6, r0, skip
            swl r1, r6, 0
            skip:
            ret
            ",
        )
        .unwrap();
        let text = disassemble(&original);
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reassembled, original);
    }

    #[test]
    fn negative_immediates_render() {
        let p = assemble("addi r1, r2, -42\nret").unwrap();
        let text = disassemble(&p);
        assert!(text.contains("addi r1, r2, -42"));
    }

    #[test]
    fn labels_are_emitted_once() {
        let p = assemble("top: beq r0, r0, top\njmp top\nret").unwrap();
        let text = disassemble(&p);
        assert_eq!(text.matches("L0:").count(), 1);
        assert_eq!(text.matches(", L0").count(), 1);
        assert_eq!(text.matches("jmp L0").count(), 1);
    }
}
