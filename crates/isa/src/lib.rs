//! FGPU-like SIMT instruction set: definitions, binary encoding and a
//! two-pass assembler.
//!
//! The G-GPU executes OpenCL-style kernels; this crate provides the
//! instruction set those kernels compile to in the reproduction
//! (the original FGPU ships an LLVM backend — here kernels are written
//! in assembly, see `ggpu-kernels`).
//!
//! # Example
//!
//! ```
//! use ggpu_isa::asm::assemble;
//! use ggpu_isa::encode::{decode, encode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("gid r1\nret")?;
//! let word = encode(program[0]);
//! assert_eq!(decode(word)?, program[0]);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod inst;

pub use asm::{assemble, AssembleError};
pub use disasm::disassemble;
pub use encode::{decode, encode, DecodeInstError};
pub use inst::{AluOp, BranchCond, IdSource, Inst, Reg};
