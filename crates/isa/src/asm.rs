//! Two-pass assembler for the SIMT ISA.
//!
//! Syntax: one instruction per line, `;` comments, `label:` defines an
//! instruction-index label usable as a branch/jump target.
//!
//! ```
//! use ggpu_isa::asm::assemble;
//!
//! # fn main() -> Result<(), ggpu_isa::asm::AssembleError> {
//! let program = assemble(
//!     "
//!     gid   r1          ; r1 = global id
//!     param r2, 0       ; r2 = first kernel argument
//!     slli  r3, r1, 2
//!     add   r3, r3, r2
//!     lw    r4, r3, 0
//!     sw    r3, r4, 4
//!     ret
//!     ",
//! )?;
//! assert_eq!(program.len(), 7);
//! # Ok(())
//! # }
//! ```

use crate::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AssembleError {}

fn err(line: usize, message: impl Into<String>) -> AssembleError {
    AssembleError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AssembleError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    // `try_new` (not `new`) so an out-of-range index can never panic
    // the assembler, whatever the caller feeds it.
    Reg::try_new(idx).ok_or_else(|| err(line, format!("register {tok} out of range")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i16, AssembleError> {
    let parse = |s: &str, radix| i32::from_str_radix(s, radix);
    let value = if let Some(hex) = tok.strip_prefix("0x") {
        parse(hex, 16)
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        parse(hex, 16).map(|v| -v)
    } else {
        tok.parse::<i32>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    i16::try_from(value).map_err(|_| err(line, format!("immediate `{tok}` out of 16-bit range")))
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::Divu,
        "remu" => AluOp::Remu,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(name: &str) -> Option<BranchCond> {
    Some(match name {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn id_source(name: &str) -> Option<IdSource> {
    Some(match name {
        "gid" => IdSource::GlobalId,
        "lid" => IdSource::LocalId,
        "wgid" => IdSource::GroupId,
        "wgsize" => IdSource::GroupSize,
        "gsize" => IdSource::GlobalSize,
        _ => return None,
    })
}

enum Pending {
    Done(Inst),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
        line: usize,
    },
    Jmp {
        label: String,
        line: usize,
    },
}

/// Assembles source text into a program.
///
/// # Errors
///
/// Returns [`AssembleError`] with the offending line for syntax
/// errors, bad operands or undefined labels.
pub fn assemble(source: &str) -> Result<Vec<Inst>, AssembleError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pending: Vec<Pending> = Vec::new();

    for (line_idx, raw) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Labels (possibly followed by an instruction on the same line).
        while let Some(pos) = text.find(':') {
            let label = text[..pos].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            if labels
                .insert(label.to_string(), pending.len() as u32)
                .is_some()
            {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            text = text[pos + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let mut parts = text.split_whitespace();
        // `text` is non-empty here, but stay panic-free on principle:
        // the assembler must return `AssembleError`, never abort.
        let Some(first) = parts.next() else { continue };
        let mnemonic = first.to_ascii_lowercase();
        let ops: Vec<String> = parts
            .collect::<Vec<_>>()
            .join(" ")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let want = |n: usize| -> Result<(), AssembleError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let inst = if let Some(op) = alu_op(&mnemonic) {
            want(3)?;
            Pending::Done(Inst::Alu {
                op,
                rd: parse_reg(&ops[0], line_no)?,
                rs1: parse_reg(&ops[1], line_no)?,
                rs2: parse_reg(&ops[2], line_no)?,
            })
        } else if let Some(op) = mnemonic
            .strip_suffix('i')
            .and_then(alu_op)
            .filter(|_| mnemonic != "lui")
        {
            want(3)?;
            Pending::Done(Inst::AluImm {
                op,
                rd: parse_reg(&ops[0], line_no)?,
                rs1: parse_reg(&ops[1], line_no)?,
                imm: parse_imm(&ops[2], line_no)?,
            })
        } else if let Some(cond) = branch_cond(&mnemonic) {
            want(3)?;
            Pending::Branch {
                cond,
                rs1: parse_reg(&ops[0], line_no)?,
                rs2: parse_reg(&ops[1], line_no)?,
                label: ops[2].clone(),
                line: line_no,
            }
        } else if let Some(src) = id_source(&mnemonic) {
            want(1)?;
            Pending::Done(Inst::ReadId {
                rd: parse_reg(&ops[0], line_no)?,
                src,
            })
        } else {
            match mnemonic.as_str() {
                "lui" => {
                    // The upper immediate is a raw 16-bit field:
                    // accept 0..=65535 (or a negative two's-complement
                    // spelling).
                    want(2)?;
                    let raw = if let Some(hex) = ops[1].strip_prefix("0x") {
                        i32::from_str_radix(hex, 16)
                    } else {
                        ops[1].parse::<i32>()
                    }
                    .map_err(|_| err(line_no, format!("bad immediate `{}`", ops[1])))?;
                    if !(-32768..=65535).contains(&raw) {
                        return Err(err(line_no, "lui immediate outside 16-bit range"));
                    }
                    Pending::Done(Inst::Lui {
                        rd: parse_reg(&ops[0], line_no)?,
                        imm: raw as u16,
                    })
                }
                "param" => {
                    want(2)?;
                    let idx = parse_imm(&ops[1], line_no)?;
                    if !(0..8).contains(&idx) {
                        return Err(err(line_no, "param index must be 0-7"));
                    }
                    Pending::Done(Inst::Param {
                        rd: parse_reg(&ops[0], line_no)?,
                        idx: idx as u8,
                    })
                }
                "lw" | "lwl" => {
                    want(3)?;
                    let rd = parse_reg(&ops[0], line_no)?;
                    let rs1 = parse_reg(&ops[1], line_no)?;
                    let imm = parse_imm(&ops[2], line_no)?;
                    Pending::Done(if mnemonic == "lw" {
                        Inst::Lw { rd, rs1, imm }
                    } else {
                        Inst::Lwl { rd, rs1, imm }
                    })
                }
                "sw" | "swl" => {
                    want(3)?;
                    let rs1 = parse_reg(&ops[0], line_no)?;
                    let rs2 = parse_reg(&ops[1], line_no)?;
                    let imm = parse_imm(&ops[2], line_no)?;
                    Pending::Done(if mnemonic == "sw" {
                        Inst::Sw { rs1, rs2, imm }
                    } else {
                        Inst::Swl { rs1, rs2, imm }
                    })
                }
                "jmp" => {
                    want(1)?;
                    Pending::Jmp {
                        label: ops[0].clone(),
                        line: line_no,
                    }
                }
                "ret" => {
                    want(0)?;
                    Pending::Done(Inst::Ret)
                }
                "bar" => {
                    want(0)?;
                    Pending::Done(Inst::Bar)
                }
                "nop" => {
                    want(0)?;
                    Pending::Done(Inst::AluImm {
                        op: AluOp::Add,
                        rd: Reg::new(0),
                        rs1: Reg::new(0),
                        imm: 0,
                    })
                }
                _ => return Err(err(line_no, format!("unknown mnemonic `{mnemonic}`"))),
            }
        };
        pending.push(inst);
    }

    let resolve = |label: &str, line: usize| -> Result<u32, AssembleError> {
        labels
            .get(label)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label `{label}`")))
    };
    pending
        .into_iter()
        .map(|p| match p {
            Pending::Done(i) => Ok(i),
            Pending::Branch {
                cond,
                rs1,
                rs2,
                label,
                line,
            } => Ok(Inst::Branch {
                cond,
                rs1,
                rs2,
                target: resolve(&label, line)?,
            }),
            Pending::Jmp { label, line } => Ok(Inst::Jmp {
                target: resolve(&label, line)?,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_with_labels() {
        let prog = assemble(
            "
            addi r1, r0, 0
            addi r2, r0, 10
            loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            ret
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert_eq!(
            prog[3],
            Inst::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                target: 2,
            }
        );
    }

    #[test]
    fn forward_references_resolve() {
        let prog = assemble("jmp end\n nop\n end: ret").unwrap();
        assert_eq!(prog[0], Inst::Jmp { target: 2 });
    }

    #[test]
    fn undefined_label_reports_line() {
        let e = assemble("nop\njmp ghost").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: ret").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn bad_register_reports_error() {
        assert!(assemble("add r1, r2, r99").is_err());
        assert!(assemble("add r1, r2, x3").is_err());
    }

    #[test]
    fn register_32_is_the_exact_boundary() {
        // r31 is the last architectural register; r32 must be a clean
        // error (not a panic) in every operand position.
        assert!(assemble("add r31, r31, r31").is_ok());
        let e = assemble("add r1, r2, r32").unwrap_err();
        assert!(e.message.contains("out of range"), "{}", e.message);
        assert!(assemble("add r32, r0, r0").is_err());
        assert!(assemble("lw r1, r32, 0").is_err());
        assert!(assemble("gid r32").is_err());
        // Huge index that overflows u8 parsing entirely.
        assert!(assemble("add r1, r2, r300").is_err());
    }

    #[test]
    fn oversized_immediates_rejected() {
        assert!(assemble("addi r1, r0, 32767").is_ok());
        assert!(assemble("addi r1, r0, -32768").is_ok());
        let e = assemble("addi r1, r0, 32768").unwrap_err();
        assert!(e.message.contains("16-bit"), "{}", e.message);
        assert!(assemble("addi r1, r0, -32769").is_err());
        assert!(assemble("lw r1, r2, 0x10000").is_err());
        // lui takes the raw 16-bit field: 65535 ok, 65536 not.
        assert!(assemble("lui r1, 65535").is_ok());
        assert!(assemble("lui r1, 65536").is_err());
        assert!(assemble("lui r1, -32769").is_err());
    }

    #[test]
    fn malformed_lines_error_cleanly() {
        // A grab-bag of malformed input: every case must produce an
        // `AssembleError`, never a panic.
        for src in [
            ":",
            "a b: nop",
            "addi r1, r0,",
            "addi , ,",
            "param r1, -1",
            "param r1, banana",
            "lui r1",
            "jmp",
            "ret r1",
            "bar r0",
            "\u{0}",
            "add r1, r2, r3, r4",
        ] {
            assert!(assemble(src).is_err(), "accepted malformed `{src}`");
        }
    }

    #[test]
    fn assemble_never_panics_on_garbage() {
        // Fuzz the assembler with random token soup; any outcome is
        // fine as long as it is a `Result`, not an abort.
        let tokens = [
            "add",
            "addi",
            "lui",
            "beq",
            "jmp",
            "ret",
            "bar",
            "nop",
            "param",
            "lw",
            "swl",
            "gid",
            "r0",
            "r1",
            "r31",
            "r32",
            "r255",
            "r999999999999",
            "x7",
            "0",
            "-1",
            "32768",
            "-32769",
            "0x",
            "0xzz",
            "65536",
            ",",
            ",,",
            ":",
            "::",
            "loop:",
            "loop",
            ";",
            "; comment",
            "\t",
        ];
        ggpu_prop::cases(256, |rng| {
            let lines = rng.usize_in(0, 6);
            let mut src = String::new();
            for _ in 0..lines {
                let toks = rng.usize_in(0, 5);
                for t in 0..toks {
                    if t > 0 {
                        src.push(if rng.chance(0.5) { ' ' } else { ',' });
                    }
                    src.push_str(rng.pick_copy(&tokens));
                }
                src.push('\n');
            }
            let _ = assemble(&src);
        });
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn immediates_parse_in_hex_and_decimal() {
        let prog = assemble("addi r1, r0, 0x10\naddi r2, r0, -5").unwrap();
        assert_eq!(
            prog[0],
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(0),
                imm: 16
            }
        );
        assert_eq!(
            prog[1],
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(2),
                rs1: Reg::new(0),
                imm: -5
            }
        );
    }

    #[test]
    fn id_reads_and_params() {
        let prog = assemble("gid r1\nlid r2\nwgid r3\nwgsize r4\ngsize r5\nparam r6, 7").unwrap();
        assert_eq!(prog.len(), 6);
        assert!(matches!(prog[5], Inst::Param { idx: 7, .. }));
        assert!(assemble("param r1, 8").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble("; top\n\n  ret ; done\n").unwrap();
        assert_eq!(prog, vec![Inst::Ret]);
    }

    #[test]
    fn roundtrip_through_encoding() {
        let prog = assemble(
            "
            gid r1
            param r2, 0
            slli r3, r1, 2
            add r3, r3, r2
            lw r4, r3, 0
            sw r3, r4, 4
            bne r4, r0, skip
            addi r4, r4, 1
            skip: ret
            ",
        )
        .unwrap();
        for inst in &prog {
            let back = crate::encode::decode(crate::encode::encode(*inst)).unwrap();
            assert_eq!(back, *inst);
        }
    }
}
