//! Instruction set of the G-GPU's FGPU-like SIMT machine.
//!
//! A compact RISC-style ISA sufficient for the OpenCL micro-kernels of
//! the paper's evaluation: integer ALU ops, global/local memory
//! access, branches (full per-work-item divergence is handled by the
//! simulator's multi-PC lockstep scheme, so no reconvergence
//! instruction is needed), and the work-item identification reads the
//! OpenCL runtime provides (`get_local_id` etc.).

use std::fmt;

/// A register index (r0–r31). r0 is a normal register (not
/// hard-wired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers per work-item.
    pub const COUNT: u8 = 32;

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < Self::COUNT, "register index out of range");
        Self(index)
    }

    /// Creates a register index, returning `None` if `index >= 32` —
    /// the non-panicking form for untrusted input (the assembler and
    /// the instruction decoder go through this).
    pub const fn try_new(index: u8) -> Option<Self> {
        if index < Self::COUNT {
            Some(Self(index))
        } else {
            None
        }
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Two-source ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Unsigned division (x/0 = all-ones, like RISC-V M).
    Divu,
    /// Unsigned remainder (x%0 = x).
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (by low 5 bits).
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
}

impl AluOp {
    /// Applies the operation.
    // Divide-by-zero follows the RISC-V M convention, so the manual
    // zero check is the specification, not a missed `checked_div`.
    //
    // `#[inline]` so the simulator's per-op specialized lane loops can
    // constant-fold the `match` away and autovectorize across lanes
    // (the workspace builds without LTO, so cross-crate inlining needs
    // the hint).
    #[allow(clippy::manual_checked_ops)]
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        }
    }

    /// `true` for multi-cycle operations (multiplier/divider paths).
    pub fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Divu | AluOp::Remu)
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than, signed.
    Lt,
    /// Greater or equal, signed.
    Ge,
    /// Less than, unsigned.
    Ltu,
    /// Greater or equal, unsigned.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition.
    // `#[inline]` for the same cross-crate vectorization reason as
    // [`AluOp::apply`].
    #[inline]
    pub fn test(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Work-item identification sources (the OpenCL `get_*` built-ins the
/// FGPU exposes through its runtime memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdSource {
    /// Global work-item id.
    GlobalId,
    /// Local id within the workgroup.
    LocalId,
    /// Workgroup id.
    GroupId,
    /// Workgroup size.
    GroupSize,
    /// Total number of work-items.
    GlobalSize,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 op sign_extend(imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// 16-bit signed immediate.
        imm: i16,
    },
    /// `rd = imm << 16`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper immediate.
        imm: u16,
    },
    /// `rd = <id source>`.
    ReadId {
        /// Destination.
        rd: Reg,
        /// Which id to read.
        src: IdSource,
    },
    /// `rd = kernel_param[idx]` (the FGPU's runtime-memory parameter
    /// fetch).
    Param {
        /// Destination.
        rd: Reg,
        /// Parameter index (0–7).
        idx: u8,
    },
    /// Global-memory word load: `rd = mem[rs1 + imm]` (byte address,
    /// word aligned), through the shared data cache.
    Lw {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        imm: i16,
    },
    /// Global-memory word store: `mem[rs1 + imm] = rs2`.
    Sw {
        /// Base address register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
        /// Byte offset.
        imm: i16,
    },
    /// Local scratch (LRAM) word load, one cycle-class faster and not
    /// shared across CUs.
    Lwl {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        imm: i16,
    },
    /// Local scratch word store.
    Swl {
        /// Base address register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
        /// Byte offset.
        imm: i16,
    },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compare operand.
        rs1: Reg,
        /// Second compare operand.
        rs2: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump to instruction index `target`.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Workgroup barrier: no work-item of the workgroup proceeds past
    /// the barrier until every live wavefront of the workgroup has
    /// reached it. All active lanes of a wavefront must reach the
    /// barrier together (uniform control flow), as on real SIMT
    /// hardware.
    Bar,
    /// Work-item termination.
    Ret,
}

impl Inst {
    /// `true` if the instruction accesses global memory.
    pub fn is_global_mem(self) -> bool {
        matches!(self, Inst::Lw { .. } | Inst::Sw { .. })
    }

    /// `true` if the instruction can change control flow.
    pub fn is_control(self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jmp { .. } | Inst::Ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u32::MAX);
        assert_eq!(AluOp::Mul.apply(0x10000, 0x10000), 0);
        assert_eq!(AluOp::Divu.apply(7, 2), 3);
        assert_eq!(AluOp::Divu.apply(7, 0), u32::MAX);
        assert_eq!(AluOp::Remu.apply(7, 0), 7);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchCond::Eq.test(5, 5));
        assert!(BranchCond::Lt.test(u32::MAX, 0), "-1 < 0 signed");
        assert!(!BranchCond::Ltu.test(u32::MAX, 0));
        assert!(BranchCond::Geu.test(u32::MAX, 0));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_range_checked() {
        let _ = Reg::new(32);
    }

    #[test]
    fn classification() {
        let r = Reg::new(1);
        assert!(Inst::Lw {
            rd: r,
            rs1: r,
            imm: 0
        }
        .is_global_mem());
        assert!(!Inst::Lwl {
            rd: r,
            rs1: r,
            imm: 0
        }
        .is_global_mem());
        assert!(Inst::Ret.is_control());
        assert!(AluOp::Divu.is_long_latency());
        assert!(!AluOp::Add.is_long_latency());
    }
}
