//! Binary encoding of the SIMT ISA (32-bit words).
//!
//! Layout: `[31:26] opcode | [25:21] a | [20:16] b | [15:0] imm`.
//! Register-register ALU ops place `rs2` in the low immediate bits.

use crate::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use std::error::Error;
use std::fmt;

const ALU_BASE: u32 = 1; // 13 ops: 1..=13
const ALUI_BASE: u32 = 16; // 13 ops: 16..=28
const OP_LUI: u32 = 30;
const READID_BASE: u32 = 31; // 5 sources: 31..=35
const OP_PARAM: u32 = 36;
const OP_LW: u32 = 37;
const OP_SW: u32 = 38;
const OP_LWL: u32 = 39;
const OP_SWL: u32 = 40;
const BRANCH_BASE: u32 = 41; // 6 conds: 41..=46
const OP_JMP: u32 = 47;
const OP_BAR: u32 = 48;
const OP_RET: u32 = 0;

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const BRANCH_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const ID_SOURCES: [IdSource; 5] = [
    IdSource::GlobalId,
    IdSource::LocalId,
    IdSource::GroupId,
    IdSource::GroupSize,
    IdSource::GlobalSize,
];

fn alu_index(op: AluOp) -> u32 {
    ALU_OPS.iter().position(|&o| o == op).expect("known op") as u32
}

fn cond_index(c: BranchCond) -> u32 {
    BRANCH_CONDS
        .iter()
        .position(|&o| o == c)
        .expect("known cond") as u32
}

fn id_index(s: IdSource) -> u32 {
    ID_SOURCES
        .iter()
        .position(|&o| o == s)
        .expect("known source") as u32
}

fn pack(opcode: u32, a: u32, b: u32, imm: u32) -> u32 {
    debug_assert!(opcode < 64 && a < 32 && b < 32 && imm <= 0xFFFF);
    (opcode << 26) | (a << 21) | (b << 16) | imm
}

/// Encodes one instruction.
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => pack(
            ALU_BASE + alu_index(op),
            rd.index() as u32,
            rs1.index() as u32,
            rs2.index() as u32,
        ),
        Inst::AluImm { op, rd, rs1, imm } => pack(
            ALUI_BASE + alu_index(op),
            rd.index() as u32,
            rs1.index() as u32,
            imm as u16 as u32,
        ),
        Inst::Lui { rd, imm } => pack(OP_LUI, rd.index() as u32, 0, u32::from(imm)),
        Inst::ReadId { rd, src } => pack(READID_BASE + id_index(src), rd.index() as u32, 0, 0),
        Inst::Param { rd, idx } => pack(OP_PARAM, rd.index() as u32, 0, u32::from(idx)),
        Inst::Lw { rd, rs1, imm } => pack(
            OP_LW,
            rd.index() as u32,
            rs1.index() as u32,
            imm as u16 as u32,
        ),
        Inst::Sw { rs1, rs2, imm } => pack(
            OP_SW,
            rs1.index() as u32,
            rs2.index() as u32,
            imm as u16 as u32,
        ),
        Inst::Lwl { rd, rs1, imm } => pack(
            OP_LWL,
            rd.index() as u32,
            rs1.index() as u32,
            imm as u16 as u32,
        ),
        Inst::Swl { rs1, rs2, imm } => pack(
            OP_SWL,
            rs1.index() as u32,
            rs2.index() as u32,
            imm as u16 as u32,
        ),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => pack(
            BRANCH_BASE + cond_index(cond),
            rs1.index() as u32,
            rs2.index() as u32,
            target,
        ),
        Inst::Jmp { target } => pack(OP_JMP, 0, 0, target),
        Inst::Bar => pack(OP_BAR, 0, 0, 0),
        Inst::Ret => pack(OP_RET, 0, 0, 0),
    }
}

/// A word that does not decode to an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeInstError {}

/// Decodes one instruction word.
///
/// # Errors
///
/// Returns [`DecodeInstError`] for unknown opcodes.
pub fn decode(word: u32) -> Result<Inst, DecodeInstError> {
    let opcode = word >> 26;
    let a = ((word >> 21) & 31) as u8;
    let b = ((word >> 16) & 31) as u8;
    let imm = (word & 0xFFFF) as u16;
    let reg = Reg::new;
    let inst = match opcode {
        OP_RET => Inst::Ret,
        o if (ALU_BASE..ALU_BASE + 13).contains(&o) => Inst::Alu {
            op: ALU_OPS[(o - ALU_BASE) as usize],
            rd: reg(a),
            rs1: reg(b),
            rs2: reg((imm & 31) as u8),
        },
        o if (ALUI_BASE..ALUI_BASE + 13).contains(&o) => Inst::AluImm {
            op: ALU_OPS[(o - ALUI_BASE) as usize],
            rd: reg(a),
            rs1: reg(b),
            imm: imm as i16,
        },
        OP_LUI => Inst::Lui { rd: reg(a), imm },
        o if (READID_BASE..READID_BASE + 5).contains(&o) => Inst::ReadId {
            rd: reg(a),
            src: ID_SOURCES[(o - READID_BASE) as usize],
        },
        OP_PARAM => Inst::Param {
            rd: reg(a),
            idx: (imm & 7) as u8,
        },
        OP_LW => Inst::Lw {
            rd: reg(a),
            rs1: reg(b),
            imm: imm as i16,
        },
        OP_SW => Inst::Sw {
            rs1: reg(a),
            rs2: reg(b),
            imm: imm as i16,
        },
        OP_LWL => Inst::Lwl {
            rd: reg(a),
            rs1: reg(b),
            imm: imm as i16,
        },
        OP_SWL => Inst::Swl {
            rs1: reg(a),
            rs2: reg(b),
            imm: imm as i16,
        },
        o if (BRANCH_BASE..BRANCH_BASE + 6).contains(&o) => Inst::Branch {
            cond: BRANCH_CONDS[(o - BRANCH_BASE) as usize],
            rs1: reg(a),
            rs2: reg(b),
            target: u32::from(imm),
        },
        OP_JMP => Inst::Jmp {
            target: u32::from(imm),
        },
        OP_BAR => Inst::Bar,
        _ => return Err(DecodeInstError { word }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insts() -> Vec<Inst> {
        let r = Reg::new;
        let mut v = vec![
            Inst::Ret,
            Inst::Bar,
            Inst::Jmp { target: 123 },
            Inst::Lui {
                rd: r(5),
                imm: 0xABCD,
            },
            Inst::Param { rd: r(7), idx: 3 },
            Inst::Lw {
                rd: r(1),
                rs1: r(2),
                imm: -4,
            },
            Inst::Sw {
                rs1: r(3),
                rs2: r(4),
                imm: 8,
            },
            Inst::Lwl {
                rd: r(1),
                rs1: r(2),
                imm: 0,
            },
            Inst::Swl {
                rs1: r(3),
                rs2: r(4),
                imm: 12,
            },
        ];
        for op in super::ALU_OPS {
            v.push(Inst::Alu {
                op,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            });
            v.push(Inst::AluImm {
                op,
                rd: r(4),
                rs1: r(5),
                imm: -100,
            });
        }
        for cond in super::BRANCH_CONDS {
            v.push(Inst::Branch {
                cond,
                rs1: r(6),
                rs2: r(7),
                target: 42,
            });
        }
        for src in super::ID_SOURCES {
            v.push(Inst::ReadId { rd: r(8), src });
        }
        v
    }

    #[test]
    fn roundtrip_every_instruction() {
        for inst in all_sample_insts() {
            let word = encode(inst);
            let back = decode(word).unwrap();
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let words: Vec<u32> = all_sample_insts().iter().map(|&i| encode(i)).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len());
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(decode(63 << 26).is_err());
        assert!(decode(50 << 26).is_err());
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: -1,
        };
        match decode(encode(i)).unwrap() {
            Inst::AluImm { imm, .. } => assert_eq!(imm, -1),
            other => panic!("{other:?}"),
        }
    }
}
