//! Property tests: every representable SIMT instruction must survive
//! an encode/decode round trip, and the assembler must agree with the
//! constructed form.

use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_isa::{assemble, decode, encode};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::Mul), Just(AluOp::Divu),
        Just(AluOp::Remu), Just(AluOp::And), Just(AluOp::Or), Just(AluOp::Xor),
        Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra), Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq), Just(BranchCond::Ne), Just(BranchCond::Lt),
        Just(BranchCond::Ge), Just(BranchCond::Ltu), Just(BranchCond::Geu),
    ]
}

fn arb_id() -> impl Strategy<Value = IdSource> {
    prop_oneof![
        Just(IdSource::GlobalId), Just(IdSource::LocalId), Just(IdSource::GroupId),
        Just(IdSource::GroupSize), Just(IdSource::GlobalSize),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (arb_reg(), arb_id()).prop_map(|(rd, src)| Inst::ReadId { rd, src }),
        (arb_reg(), 0u8..8).prop_map(|(rd, idx)| Inst::Param { rd, idx }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::Lw { rd, rs1, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs1, rs2, imm)| Inst::Sw { rs1, rs2, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::Lwl { rd, rs1, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs1, rs2, imm)| Inst::Swl { rs1, rs2, imm }),
        (arb_cond(), arb_reg(), arb_reg(), 0u32..65_536)
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch { cond, rs1, rs2, target }),
        (0u32..65_536).prop_map(|target| Inst::Jmp { target }),
        Just(Inst::Ret),
    ]
}

#[allow(clippy::manual_checked_ops)] // reference mirrors ISA div-by-zero semantics
mod props {
use super::*;
proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        prop_assert_eq!(decode(encode(inst)).expect("encodable"), inst);
    }

    #[test]
    fn alu_ops_match_reference_semantics(op in arb_alu_op(), a: u32, b: u32) {
        let v = op.apply(a, b);
        let expect = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => if b == 0 { u32::MAX } else { a / b },
            AluOp::Remu => if b == 0 { a } else { a % b },
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 31),
            AluOp::Srl => a >> (b & 31),
            AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        };
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn assembler_and_encoder_agree_on_alu(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        let text = format!("add r{rd}, r{rs1}, r{rs2}");
        let prog = assemble(&text).expect("valid text");
        let expect = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
        };
        prop_assert_eq!(prog[0], expect);
    }
}

}

proptest! {
    /// Any random (label-free straight-line) program survives a full
    /// disassemble -> reassemble trip.
    #[test]
    fn disassembly_roundtrip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        // Clamp control-flow targets into the program so the
        // disassembler can label them.
        let len = insts.len() as u32;
        let prog: Vec<Inst> = insts
            .into_iter()
            .map(|i| match i {
                Inst::Branch { cond, rs1, rs2, target } =>
                    Inst::Branch { cond, rs1, rs2, target: target % (len + 1) },
                Inst::Jmp { target } => Inst::Jmp { target: target % (len + 1) },
                other => other,
            })
            .collect();
        let text = ggpu_isa::disassemble(&prog);
        let back = assemble(&text).expect("disassembly must reassemble");
        prop_assert_eq!(back, prog);
    }
}
