//! Property tests: every representable SIMT instruction must survive
//! an encode/decode round trip, and the assembler must agree with the
//! constructed form.

use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_isa::{assemble, decode, encode};
use ggpu_prop::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.u32_in(0, 31) as u8)
}

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const IDS: [IdSource; 5] = [
    IdSource::GlobalId,
    IdSource::LocalId,
    IdSource::GroupId,
    IdSource::GroupSize,
    IdSource::GlobalSize,
];

fn arb_inst(rng: &mut Rng) -> Inst {
    match rng.u32_in(0, 11) {
        0 => Inst::Alu {
            op: rng.pick_copy(&ALU_OPS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
        },
        1 => Inst::AluImm {
            op: rng.pick_copy(&ALU_OPS),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.any_i16(),
        },
        2 => Inst::Lui {
            rd: arb_reg(rng),
            imm: rng.any_u16(),
        },
        3 => Inst::ReadId {
            rd: arb_reg(rng),
            src: rng.pick_copy(&IDS),
        },
        4 => Inst::Param {
            rd: arb_reg(rng),
            idx: rng.u32_in(0, 7) as u8,
        },
        5 => Inst::Lw {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.any_i16(),
        },
        6 => Inst::Sw {
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            imm: rng.any_i16(),
        },
        7 => Inst::Lwl {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.any_i16(),
        },
        8 => Inst::Swl {
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            imm: rng.any_i16(),
        },
        9 => Inst::Branch {
            cond: rng.pick_copy(&CONDS),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            target: rng.u32_in(0, 65_535),
        },
        10 => Inst::Jmp {
            target: rng.u32_in(0, 65_535),
        },
        _ => Inst::Ret,
    }
}

#[test]
fn encode_decode_roundtrip() {
    cases(512, |rng| {
        let inst = arb_inst(rng);
        assert_eq!(decode(encode(inst)).expect("encodable"), inst);
    });
}

#[test]
#[allow(clippy::manual_checked_ops)] // reference mirrors ISA div-by-zero semantics
fn alu_ops_match_reference_semantics() {
    cases(512, |rng| {
        let op = rng.pick_copy(&ALU_OPS);
        let a = rng.any_u32();
        let b = rng.any_u32();
        let v = op.apply(a, b);
        let expect = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 31),
            AluOp::Srl => a >> (b & 31),
            AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        };
        assert_eq!(v, expect);
    });
}

#[test]
fn assembler_and_encoder_agree_on_alu() {
    cases(256, |rng| {
        let rd = rng.u32_in(0, 31) as u8;
        let rs1 = rng.u32_in(0, 31) as u8;
        let rs2 = rng.u32_in(0, 31) as u8;
        let text = format!("add r{rd}, r{rs1}, r{rs2}");
        let prog = assemble(&text).expect("valid text");
        let expect = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
        };
        assert_eq!(prog[0], expect);
    });
}

/// Any random (label-free straight-line) program survives a full
/// disassemble -> reassemble trip.
#[test]
fn disassembly_roundtrip() {
    cases(256, |rng| {
        let insts = rng.vec_of(1..=39, arb_inst);
        // Clamp control-flow targets into the program so the
        // disassembler can label them.
        let len = insts.len() as u32;
        let prog: Vec<Inst> = insts
            .into_iter()
            .map(|i| match i {
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: target % (len + 1),
                },
                Inst::Jmp { target } => Inst::Jmp {
                    target: target % (len + 1),
                },
                other => other,
            })
            .collect();
        let text = ggpu_isa::disassemble(&prog);
        let back = assemble(&text).expect("disassembly must reassemble");
        assert_eq!(back, prog);
    });
}
