//! Property tests for the text and binary round-trips:
//!
//! * `assemble(&disassemble(p)) == p` for random valid programs,
//! * `decode(encode(i)) == i` for every instruction of those programs.
//!
//! The generator draws control-flow targets from `0..=len` (a target
//! equal to the program length is legal — the disassembler emits a
//! trailing label for it), so the round-trip covers that edge case too.

use ggpu_isa::asm::assemble;
use ggpu_isa::disasm::disassemble;
use ggpu_isa::encode::{decode, encode};
use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_prop::Rng;

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const ID_SOURCES: [IdSource; 5] = [
    IdSource::GlobalId,
    IdSource::LocalId,
    IdSource::GroupId,
    IdSource::GroupSize,
    IdSource::GlobalSize,
];

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.usize_in(0, Reg::COUNT as usize - 1) as u8)
}

/// One random instruction; control-flow targets are drawn from
/// `0..=len` inclusive.
fn any_inst(rng: &mut Rng, len: usize) -> Inst {
    match rng.usize_in(0, 12) {
        0 => Inst::Alu {
            op: rng.pick_copy(&ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        1 => Inst::AluImm {
            op: rng.pick_copy(&ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.any_i16(),
        },
        2 => Inst::Lui {
            rd: any_reg(rng),
            imm: rng.any_u16(),
        },
        3 => Inst::ReadId {
            rd: any_reg(rng),
            src: rng.pick_copy(&ID_SOURCES),
        },
        4 => Inst::Param {
            rd: any_reg(rng),
            idx: rng.usize_in(0, 7) as u8,
        },
        5 => Inst::Lw {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.any_i16(),
        },
        6 => Inst::Sw {
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            imm: rng.any_i16(),
        },
        7 => Inst::Lwl {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.any_i16(),
        },
        8 => Inst::Swl {
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            imm: rng.any_i16(),
        },
        9 => Inst::Branch {
            cond: rng.pick_copy(&CONDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            target: rng.usize_in(0, len) as u32,
        },
        10 => Inst::Jmp {
            target: rng.usize_in(0, len) as u32,
        },
        11 => Inst::Bar,
        _ => Inst::Ret,
    }
}

fn any_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.usize_in(1, 24);
    (0..len).map(|_| any_inst(rng, len)).collect()
}

#[test]
fn asm_text_roundtrip() {
    ggpu_prop::cases(256, |rng| {
        let program = any_program(rng);
        let text = disassemble(&program);
        let back = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(back, program, "text round-trip diverged:\n{text}");
    });
}

#[test]
fn binary_encoding_roundtrip() {
    ggpu_prop::cases(256, |rng| {
        let program = any_program(rng);
        for inst in &program {
            let word = encode(*inst);
            let back = decode(word)
                .unwrap_or_else(|e| panic!("decode failed for {inst:?} (0x{word:08x}): {e}"));
            assert_eq!(back, *inst, "binary round-trip diverged at 0x{word:08x}");
        }
    });
}

#[test]
fn trailing_label_target_survives_roundtrip() {
    // A jump to `len` (one past the end) is representable in text via
    // the trailing label; make sure it survives specifically.
    let program = vec![Inst::Jmp { target: 2 }, Inst::Ret];
    let text = disassemble(&program);
    assert_eq!(assemble(&text).unwrap(), program);
}
