//! Micro-benchmarks of the logic-synthesis side of the flow: netlist
//! generation, STA, and the full Table-I planning step per version.
//! Criterion-free (`ggpu_bench::timer`) so the workspace builds with
//! no network access; run with `cargo bench -p ggpu-bench`.

use ggpu_bench::timer::Suite;
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_sta::max_frequency;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{GpuPlanner, Specification};
use std::hint::black_box;

fn main() {
    let mut suite = Suite::new("synthesis", 10);

    for cus in [1u32, 8] {
        let cfg = GgpuConfig::with_cus(cus).expect("valid");
        suite.bench(format!("generate/{cus}cu"), || {
            generate(black_box(&cfg)).expect("generates")
        });
    }

    let tech = Tech::l65();
    let design = generate(&GgpuConfig::with_cus(8).expect("valid")).expect("generates");
    suite.bench("sta/fmax_8cu", || {
        max_frequency(black_box(&design), &tech).expect("times")
    });

    let planner = GpuPlanner::new(Tech::l65());
    for (cus, mhz) in [(1u32, 500.0), (1, 667.0), (8, 667.0)] {
        let spec = Specification::new(cus, Mhz::new(mhz));
        suite.bench(format!("plan/{cus}cu@{mhz:.0}"), || {
            planner.plan(black_box(&spec)).expect("plans")
        });
    }

    suite.finish();
}
