//! Criterion benches of the logic-synthesis side of the flow: netlist
//! generation, STA, and the full Table-I planning step per version.

use criterion::{criterion_group, criterion_main, Criterion};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_sta::max_frequency;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{GpuPlanner, Specification};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    for cus in [1u32, 8] {
        group.bench_function(format!("{cus}cu"), |b| {
            let cfg = GgpuConfig::with_cus(cus).expect("valid");
            b.iter(|| generate(black_box(&cfg)).expect("generates"));
        });
    }
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let tech = Tech::l65();
    let design = generate(&GgpuConfig::with_cus(8).expect("valid")).expect("generates");
    c.bench_function("sta/fmax_8cu", |b| {
        b.iter(|| max_frequency(black_box(&design), &tech).expect("times"));
    });
}

fn bench_plan(c: &mut Criterion) {
    let planner = GpuPlanner::new(Tech::l65());
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for (cus, mhz) in [(1u32, 500.0), (1, 667.0), (8, 667.0)] {
        group.bench_function(format!("{cus}cu@{mhz:.0}"), |b| {
            let spec = Specification::new(cus, Mhz::new(mhz));
            b.iter(|| planner.plan(black_box(&spec)).expect("plans"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate, bench_sta, bench_plan);
criterion_main!(benches);
