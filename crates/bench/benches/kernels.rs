//! Micro-benchmarks of the Table III machinery: both simulators
//! running the evaluation kernels at reduced (CI-friendly) sizes,
//! plus the parallel multi-kernel sweep. Criterion-free
//! (`ggpu_bench::timer`) so the workspace builds with no network
//! access; run with `cargo bench -p ggpu-bench`.

use ggpu_bench::timer::Suite;
use ggpu_kernels::{all, run_gpu_suite};
use std::hint::black_box;

fn main() {
    let mut suite = Suite::new("kernels", 10);

    for bench in all() {
        // Quadratic kernels get smaller sizes to keep wall time sane.
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 256,
            _ => 2048,
        };
        suite.bench(format!("simt/{}/{n}/2cu", bench.name), || {
            bench.run_gpu(black_box(n), 2).expect("runs and verifies")
        });
    }

    for bench in all() {
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 128,
            _ => 512,
        };
        suite.bench(format!("riscv/{}/{n}", bench.name), || {
            bench.run_riscv(black_box(n)).expect("runs and verifies")
        });
    }

    // The threaded seven-kernel sweep (Fig. 6 machinery) end to end.
    suite.bench("simt/suite/7-kernels/2cu/threads", || {
        run_gpu_suite(&all(), 512, 2).expect("sweep runs")
    });

    suite.finish();
}
