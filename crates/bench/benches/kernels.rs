//! Criterion benches of the Table III machinery: both simulators
//! running the evaluation kernels at reduced (CI-friendly) sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use ggpu_kernels::all;
use std::hint::black_box;

fn bench_gpu_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simt");
    group.sample_size(10);
    for bench in all() {
        // Quadratic kernels get smaller sizes to keep wall time sane.
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 256,
            _ => 2048,
        };
        group.bench_function(format!("{}/{n}/2cu", bench.name), |b| {
            b.iter(|| bench.run_gpu(black_box(n), 2).expect("runs and verifies"));
        });
    }
    group.finish();
}

fn bench_riscv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("riscv");
    group.sample_size(10);
    for bench in all() {
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 128,
            _ => 512,
        };
        group.bench_function(format!("{}/{n}", bench.name), |b| {
            b.iter(|| bench.run_riscv(black_box(n)).expect("runs and verifies"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_kernels, bench_riscv_kernels);
criterion_main!(benches);
