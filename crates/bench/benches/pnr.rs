//! Criterion benches of the physical flow (Table II / Figs. 3-4
//! machinery): floorplan, placement, routing and post-route timing.

use criterion::{criterion_group, criterion_main, Criterion};
use ggpu_pnr::{build_floorplan, place_and_route, DensityTargets, PnrOptions};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::hint::black_box;

fn bench_floorplan(c: &mut Criterion) {
    let tech = Tech::l65();
    let design = generate(&GgpuConfig::with_cus(8).expect("valid")).expect("generates");
    c.bench_function("floorplan/8cu", |b| {
        b.iter(|| {
            build_floorplan(black_box(&design), &tech, DensityTargets::default())
                .expect("floorplans")
        });
    });
}

fn bench_place_and_route(c: &mut Criterion) {
    let tech = Tech::l65();
    let mut group = c.benchmark_group("place_and_route");
    group.sample_size(10);
    for cus in [1u32, 8] {
        let design = generate(&GgpuConfig::with_cus(cus).expect("valid")).expect("generates");
        group.bench_function(format!("{cus}cu@500"), |b| {
            b.iter(|| {
                place_and_route(
                    black_box(&design),
                    &tech,
                    Mhz::new(500.0),
                    PnrOptions::default(),
                )
                .expect("routes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_floorplan, bench_place_and_route);
criterion_main!(benches);
