//! Micro-benchmarks of the physical flow (Table II / Figs. 3-4
//! machinery): floorplan, placement, routing and post-route timing.
//! Criterion-free (`ggpu_bench::timer`) so the workspace builds with
//! no network access; run with `cargo bench -p ggpu-bench`.

use ggpu_bench::timer::Suite;
use ggpu_pnr::{build_floorplan, place_and_route, DensityTargets, PnrOptions};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::hint::black_box;

fn main() {
    let tech = Tech::l65();
    let mut suite = Suite::new("pnr", 10);

    let design8 = generate(&GgpuConfig::with_cus(8).expect("valid")).expect("generates");
    suite.bench("floorplan/8cu", || {
        build_floorplan(black_box(&design8), &tech, DensityTargets::default()).expect("floorplans")
    });

    for cus in [1u32, 8] {
        let design = generate(&GgpuConfig::with_cus(cus).expect("valid")).expect("generates");
        suite.bench(format!("place_and_route/{cus}cu@500"), || {
            place_and_route(
                black_box(&design),
                &tech,
                Mhz::new(500.0),
                PnrOptions::default(),
            )
            .expect("routes")
        });
    }

    suite.finish();
}
