//! Memory-geometry benchmark: what LRAM banking buys (and costs)
//! across the shipped kernel suite, plus the planner's banking
//! co-optimization outcome.
//!
//! Two sections, both asserted as CI gates while they measure:
//!
//! 1. **Per-kernel conflict profile** — every shipped kernel runs
//!    under the ideal LRAM model and under 4- and 8-bank conflict
//!    models. Banking may only add cycles, never change results (the
//!    kernel harness golden-checks every run), and the ideal model
//!    never charges conflict beats. `mat_mul_local` — the one kernel
//!    with LRAM traffic — must conflict on 4 banks and run
//!    conflict-free on 8, the asymmetry the `BankMemory` transform
//!    exploits.
//! 2. **Co-optimization** — [`gpuplanner::co_optimize_memory`] at
//!    1 CU / 500 MHz over bank factors {2, 4}: the winner must be a
//!    banked, timing-met plan with a strictly better `mat_mul_local`
//!    runtime than the unbanked frequency-map plan.
//!
//! Results go to `BENCH_mem.json` (override with `--out PATH`);
//! `--smoke` runs the CI-sized grid.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin mem_bench
//! cargo run --release -p ggpu-bench --bin mem_bench -- --smoke --out target/BENCH_mem_smoke.json
//! ```

use ggpu_kernels::bench::{self, Bench};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_simt::{LramModel, RunStats, SimtConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{co_optimize_memory, MemOptConfig, MemoryCoOptimized};
use std::fmt::Write as _;

struct Row {
    kernel: &'static str,
    n: u32,
    ideal_cycles: u64,
    banked4_cycles: u64,
    banked4_conflicts: u64,
    banked8_cycles: u64,
    banked8_conflicts: u64,
}

fn run_lram(bench: &Bench, n: u32, lram: LramModel) -> RunStats {
    let config = SimtConfig {
        lram,
        ..SimtConfig::default()
    };
    bench
        .run_gpu_with(n, config)
        .unwrap_or_else(|e| panic!("{} under {lram:?} failed: {e:?}", bench.name))
}

fn profile(bench: &Bench, n: u32) -> Row {
    let ideal = run_lram(bench, n, LramModel::Ideal);
    let b4 = run_lram(bench, n, LramModel::Banked { banks: 4 });
    let b8 = run_lram(bench, n, LramModel::Banked { banks: 8 });
    // Banking is a timing model: it may only add beats (results are
    // golden-checked inside run_gpu_with), and the ideal LRAM never
    // charges conflicts.
    assert_eq!(ideal.lram_conflict_cycles, 0, "{}", bench.name);
    assert!(b4.cycles >= ideal.cycles, "{}", bench.name);
    assert!(b8.cycles >= ideal.cycles, "{}", bench.name);
    assert!(
        b8.lram_conflict_cycles <= b4.lram_conflict_cycles,
        "{}: more banks must not conflict more",
        bench.name
    );
    Row {
        kernel: bench.name,
        n,
        ideal_cycles: ideal.cycles,
        banked4_cycles: b4.cycles,
        banked4_conflicts: b4.lram_conflict_cycles,
        banked8_cycles: b8.cycles,
        banked8_conflicts: b8.lram_conflict_cycles,
    }
}

fn render_json(rows: &[Row], co: &MemoryCoOptimized, target: Mhz, n: u32, smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"mem\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"kernels\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"ideal_cycles\": {}, \
             \"banked4\": {{\"cycles\": {}, \"conflict_cycles\": {}}}, \
             \"banked8\": {{\"cycles\": {}, \"conflict_cycles\": {}}}}}",
            r.kernel,
            r.n,
            r.ideal_cycles,
            r.banked4_cycles,
            r.banked4_conflicts,
            r.banked8_cycles,
            r.banked8_conflicts,
        );
        out.push_str(if idx + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"co_optimization\": {{");
    let _ = writeln!(out, "    \"kernel\": \"mat_mul_local\",");
    let _ = writeln!(out, "    \"n\": {n},");
    let _ = writeln!(out, "    \"target_mhz\": {:.0},", target.value());
    out.push_str("    \"candidates\": [\n");
    for (idx, c) in co.candidates.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"banks_per_macro\": {}, \"group_banks\": {}, \
             \"fmax_mhz\": {:.1}, \"meets_timing\": {}, \"cycles\": {}, \
             \"conflict_cycles\": {}, \"runtime_us\": {:.3}, \
             \"parity_check_bits\": {}}}",
            c.banks_per_macro,
            c.group_banks,
            c.fmax.value(),
            c.meets_timing,
            c.cycles,
            c.conflict_cycles,
            c.runtime_us,
            c.ecc_check_bits,
        );
        out.push_str(if idx + 1 < co.candidates.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ],\n");
    let winner = co.winner();
    let unbanked = &co.candidates[0];
    let _ = writeln!(
        out,
        "    \"winner_banks_per_macro\": {},",
        winner.banks_per_macro
    );
    let _ = writeln!(
        out,
        "    \"runtime_improvement_pct\": {:.2}",
        100.0 * (unbanked.runtime_us - winner.runtime_us) / unbanked.runtime_us
    );
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_mem.json".into());

    let mut kernels: Vec<Bench> = bench::all().to_vec();
    kernels.push(bench::mat_mul_local());

    let mut rows = Vec::new();
    for b in &kernels {
        // mat_mul_local needs full wavefronts; 256 satisfies both.
        let n = if smoke { 256 } else { b.gpu_n };
        eprintln!("profiling {} (n={n}) ...", b.name);
        let row = profile(b, n);
        eprintln!(
            "  ideal {} cyc; 4 banks +{} conflict cyc; 8 banks +{}",
            row.ideal_cycles, row.banked4_conflicts, row.banked8_conflicts
        );
        rows.push(row);
    }
    // The asymmetry the BankMemory transform exploits: the LRAM-tiled
    // kernel conflicts on the baseline 4-bank group and runs clean on 8.
    let local = rows
        .iter()
        .find(|r| r.kernel == "mat_mul_local")
        .expect("local kernel profiled");
    assert!(local.banked4_conflicts > 0, "4 banks must conflict");
    assert_eq!(local.banked8_conflicts, 0, "8 banks must be conflict-free");

    let target = Mhz::new(500.0);
    let n = 256;
    eprintln!("co-optimizing LRAM banking (1 CU @ {target:.0}, n={n}) ...");
    let base = generate(&GgpuConfig::with_cus(1).expect("1 CU")).expect("generates");
    let co = co_optimize_memory(&base, &Tech::l65(), target, &MemOptConfig::new(1, n))
        .expect("co-optimization succeeds");
    // The acceptance gate: the DSE must *choose* banking, and the
    // banked plan must beat the unbanked frequency-map plan on the
    // cycle objective while still meeting timing.
    let winner = co.winner();
    let unbanked = &co.candidates[0];
    assert!(winner.banks_per_macro > 1, "banking must win the objective");
    assert!(winner.meets_timing, "winner must still close timing");
    assert!(winner.cycles < unbanked.cycles, "winner must save cycles");
    assert!(winner.runtime_us < unbanked.runtime_us);
    assert!(!co.plan.bankings.is_empty(), "plan must carry the banking");
    eprintln!(
        "  winner: {} banks/macro ({} group banks), {:.3} us vs {:.3} us unbanked",
        winner.banks_per_macro, winner.group_banks, winner.runtime_us, unbanked.runtime_us
    );

    let json = render_json(&rows, &co, target, n, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
