//! Regenerates the paper's **Table III**: benchmark input sizes and
//! cycle counts on the RISC-V and on 1/2/4/8-CU G-GPUs. Every run is
//! verified against the golden reference before its cycles are
//! reported.

use ggpu_bench::{ascii_table, collect_table3, lint_preflight};

/// Paper Table III k-cycle counts:
/// (kernel, riscv, 1cu, 2cu, 4cu, 8cu).
const PAPER_KCYCLES: [(&str, u64, u64, u64, u64, u64); 7] = [
    ("mat_mul", 202, 48, 28, 18, 14),
    ("copy", 71, 73, 36, 24, 22),
    ("vec_mul", 78, 100, 49, 31, 26),
    ("fir", 542, 694, 358, 185, 169),
    ("div_int", 32, 209, 105, 57, 62),
    ("xcorr", 542, 5343, 2802, 1467, 2079),
    ("parallel_sel", 765, 5979, 3157, 1656, 1660),
];

fn main() {
    lint_preflight();
    let data = collect_table3();
    let header: Vec<String> = [
        "kernel", "n(rv)", "n(gpu)", "rv kcyc", "1cu", "2cu", "4cu", "8cu", "| paper:", "rv",
        "1cu", "2cu", "4cu", "8cu",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|kc| {
            let paper = PAPER_KCYCLES
                .iter()
                .find(|p| p.0 == kc.bench.name)
                .expect("kernel in paper table");
            let k = |c: u64| format!("{}", c / 1000);
            vec![
                kc.bench.name.to_string(),
                kc.bench.riscv_n.to_string(),
                kc.bench.gpu_n.to_string(),
                k(kc.riscv),
                k(kc.gpu[0]),
                k(kc.gpu[1]),
                k(kc.gpu[2]),
                k(kc.gpu[3]),
                "|".to_string(),
                paper.1.to_string(),
                paper.2.to_string(),
                paper.3.to_string(),
                paper.4.to_string(),
                paper.5.to_string(),
            ]
        })
        .collect();
    println!("Table III: benchmark input sizes and cycle counts, k-cycles (measured vs paper)\n");
    println!("{}", ascii_table(&header, &rows));
}
