//! Ablation (extension beyond the paper): LRAM-tiled mat_mul vs the
//! global-memory version. The tiled kernel stages the shared vector
//! into each CU's scratchpad — the classic GPU optimization — and the
//! harness reports whether it pays on this architecture.

use ggpu_bench::ascii_table;
use ggpu_kernels::bench::{all, mat_mul_local};

fn main() {
    let header: Vec<String> = [
        "cus",
        "global cyc",
        "lram cyc",
        "speedup",
        "cache accesses",
        "lram saved %",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for cus in [1u32, 2, 4, 8] {
        let g = all()[0].run_gpu(2048, cus).expect("verified");
        let l = mat_mul_local().run_gpu(2048, cus).expect("verified");
        rows.push(vec![
            cus.to_string(),
            g.cycles.to_string(),
            l.cycles.to_string(),
            format!("{:.3}x", g.cycles as f64 / l.cycles as f64),
            format!("{} -> {}", g.mem.accesses, l.mem.accesses),
            format!(
                "{:.1}",
                (1.0 - l.mem.accesses as f64 / g.mem.accesses as f64) * 100.0
            ),
        ]);
    }
    println!("Ablation: LRAM-tiled mat_mul (extension kernel)\n");
    println!("{}", ascii_table(&header, &rows));
    println!(
        "Finding: tiling removes ~18% of shared-cache traffic but the kernel\n\
         is issue-bound, so cycle counts barely move — the b vector was\n\
         cache-resident. Tiling would pay for cache-hostile shared data."
    );
}
