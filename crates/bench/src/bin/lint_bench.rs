//! Host-speed benchmark of the kernel static analyzer: the PR-2
//! syntactic linter (`verify_program_classic`) against the abstract
//! interpreter that now fronts it (`verify_program`, the monotone
//! interval × alignment × lane-affine fixpoint behind K010–K012),
//! over the 8 shipped kernels (the paper's Table III seven plus the
//! LRAM-tiled `mat_mul_local`).
//!
//! The absint pass is on every hot verification path — kernel load,
//! planner pre-flight, fault-campaign setup — so its cost relative to
//! the old syntactic walk is the number this binary pins. Each kernel
//! is assembled once outside the timed region; only the verification
//! passes are timed, best-of-`reps`. Both passes must agree that every
//! shipped kernel is clean, which doubles as a regression gate.
//!
//! Results go to `BENCH_lint.json` (override with `--out PATH`);
//! `--smoke` runs a single repetition, sized for CI.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin lint_bench
//! cargo run --release -p ggpu-bench --bin lint_bench -- --smoke --out target/BENCH_lint_smoke.json
//! ```

use ggpu_isa::Inst;
use ggpu_kernels::bench::{self, Bench};
use ggpu_lint::{verify_program, verify_program_classic, LintConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    kernel: &'static str,
    insts: usize,
    classic_ns: u128,
    absint_ns: u128,
    diagnostics: usize,
}

impl Row {
    /// Cost of the abstract interpreter relative to the syntactic
    /// baseline (> 1 means absint is slower, as expected).
    fn ratio(&self) -> f64 {
        self.absint_ns as f64 / self.classic_ns.max(1) as f64
    }
}

/// Best-of-`reps` wall time of one verification pass. The inner loop
/// runs the pass `batch` times per repetition so sub-microsecond
/// passes still get a stable clock reading.
fn time_pass(reps: u32, batch: u32, mut pass: impl FnMut()) -> u128 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..batch {
            pass();
        }
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    (best / batch).as_nanos()
}

fn assemble_kernel(b: &Bench) -> Vec<Inst> {
    ggpu_isa::assemble(b.gpu_asm())
        .unwrap_or_else(|e| panic!("{} failed to assemble: {e:?}", b.name))
}

fn render_json(reps: u32, batch: u32, rows: &[Row], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"lint\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"batch\": {batch},");
    out.push_str("  \"kernels\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"instructions\": {}, \
             \"wall_ns\": {{\"classic\": {}, \"absint\": {}}}, \
             \"absint_cost_ratio\": {:.2}, \"diagnostics\": {}}}",
            r.kernel,
            r.insts,
            r.classic_ns,
            r.absint_ns,
            r.ratio(),
            r.diagnostics,
        );
        out.push_str(if idx + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_lint.json".into());

    let reps: u32 = if smoke { 1 } else { 20 };
    let batch: u32 = if smoke { 10 } else { 100 };
    let config = LintConfig::new();

    let mut kernels: Vec<Bench> = bench::all().to_vec();
    kernels.push(bench::mat_mul_local());

    let mut rows = Vec::new();
    for b in &kernels {
        let program = assemble_kernel(b);
        eprintln!("linting {} ({} insts) ...", b.name, program.len());

        // Shipped-kernel cleanliness gate: both the baseline and the
        // absint pass must produce a deny-free report before either
        // is worth timing.
        let classic = verify_program_classic(b.name, &program, &config);
        let absint = verify_program(b.name, &program, &config);
        assert_eq!(
            classic.denial_count(),
            0,
            "{}: classic pass flagged a shipped kernel",
            b.name
        );
        assert_eq!(
            absint.denial_count(),
            0,
            "{}: absint pass flagged a shipped kernel",
            b.name
        );

        let classic_ns = time_pass(reps, batch, || {
            std::hint::black_box(verify_program_classic(b.name, &program, &config));
        });
        let absint_ns = time_pass(reps, batch, || {
            std::hint::black_box(verify_program(b.name, &program, &config));
        });
        eprintln!(
            "  classic {classic_ns} ns, absint {absint_ns} ns ({:.2}x)",
            absint_ns as f64 / classic_ns.max(1) as f64
        );
        rows.push(Row {
            kernel: b.name,
            insts: program.len(),
            classic_ns,
            absint_ns,
            diagnostics: absint.diagnostics.len(),
        });
    }

    let worst = rows.iter().map(|r| r.ratio()).fold(0.0_f64, f64::max);
    eprintln!(
        "all {} shipped kernels clean under both passes; worst absint cost ratio {worst:.2}x",
        rows.len()
    );

    let json = render_json(reps, batch, &rows, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
