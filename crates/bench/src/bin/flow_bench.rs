//! Tracked baseline for the flow supervisor: the cost of wrapping the
//! end-to-end pipeline (verify → plan → implement) in supervision —
//! panic isolation, degradation ladders, retry bookkeeping — measured
//! against the identical unsupervised stage sequence on the paper's
//! 12 Table-I specifications.
//!
//! Two gates are *asserted* as the numbers are taken:
//!
//! * **byte identity** — with no fault firing, every supervised
//!   datasheet must equal the plain flow's byte for byte, and every
//!   degradation report must be clean;
//! * **chaos zero-loss** — a seeded chaos sweep re-runs the flow under
//!   injected panics / delays / I/O errors; every campaign must either
//!   survive with a bit-identical result or die with a structured,
//!   retryable [`gpuplanner::FlowError`] after a full retry budget.
//!   Nothing is ever lost or silently corrupted.
//!
//! Results go to `BENCH_flow.json` (override with `--out PATH`);
//! `--smoke` runs 3 specs, fewer repetitions and a smaller chaos
//! sweep, sized for CI.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin flow_bench
//! cargo run --release -p ggpu-bench --bin flow_bench -- --smoke --out target/BENCH_flow_smoke.json
//! ```

use ggpu_simt::AccelBackend;
use ggpu_tech::Tech;
use gpuplanner::{
    datasheet, paper_versions, verify_kernels, FailurePlan, GpuPlanner, Specification, Supervisor,
    SupervisorConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock per spec for one full pass, plain vs supervised.
struct SpecTiming {
    name: String,
    plain_ms: f64,
    supervised_ms: f64,
}

struct ChaosStats {
    campaigns: u64,
    survived: u64,
    killed: u64,
    degraded_runs: u64,
    retried_runs: u64,
}

/// A supervision policy pinned against the host environment: no
/// deadline (stages run inline), deterministic retry budget, no chaos.
fn pinned_config() -> SupervisorConfig {
    SupervisorConfig {
        stage_timeout: None,
        max_retries: 2,
        backoff_base_ms: 0,
        ..SupervisorConfig::default()
    }
}

/// One unsupervised pass over `spec`: the exact stage bodies the
/// supervisor runs (verify → plan → implement), with none of the
/// supervision machinery around them.
fn plain_flow(
    planner: &GpuPlanner,
    spec: &Specification,
) -> Result<gpuplanner::ImplementedVersion, String> {
    verify_kernels(AccelBackend::Soa).map_err(|e| format!("verify: {e}"))?;
    let planned = planner.plan(spec).map_err(|e| format!("plan: {e}"))?;
    planner
        .implement(&planned)
        .map_err(|e| format!("implement: {e}"))
}

/// Seeded chaos sweep: `campaigns` supervised runs under fault
/// injection. Asserts the zero-loss contract while counting outcomes.
fn chaos_sweep(planner: &GpuPlanner, campaigns: u64) -> ChaosStats {
    let spec = Specification::new(1, ggpu_tech::units::Mhz::new(500.0));
    let baseline = plain_flow(planner, &spec).expect("plain flow runs");
    let mut stats = ChaosStats {
        campaigns,
        survived: 0,
        killed: 0,
        degraded_runs: 0,
        retried_runs: 0,
    };
    // The injected panics are caught by the supervisor; mute the
    // default hook so they don't spray backtraces over the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for seed in 0..campaigns {
        let mut cfg = pinned_config();
        cfg.seed = seed;
        cfg.chaos = FailurePlan::seeded(seed);
        match Supervisor::new(planner.clone())
            .with_config(cfg)
            .run_spec(&spec)
        {
            Ok(out) => {
                stats.survived += 1;
                assert_eq!(
                    out.version, baseline,
                    "chaos seed {seed} corrupted the result"
                );
                if !out.degradations.steps.is_empty() {
                    stats.degraded_runs += 1;
                }
                if out.degradations.retries > 0 {
                    stats.retried_runs += 1;
                }
            }
            Err(err) => {
                stats.killed += 1;
                assert!(
                    err.retryable(),
                    "chaos seed {seed}: transient injections must classify retryable: {err}"
                );
            }
        }
    }
    std::panic::set_hook(hook);
    assert_eq!(
        stats.survived + stats.killed,
        campaigns,
        "a campaign vanished"
    );
    assert!(stats.survived > 0, "no chaos campaign survived");
    stats
}

fn render_json(
    smoke: bool,
    reps: u32,
    timings: &[SpecTiming],
    plain_ms: f64,
    supervised_ms: f64,
    overhead_pct: f64,
    chaos: &ChaosStats,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"flow\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"specs\": {},", timings.len());
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"plain_ms\": {plain_ms:.2},");
    let _ = writeln!(out, "  \"supervised_ms\": {supervised_ms:.2},");
    let _ = writeln!(out, "  \"overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(out, "  \"datasheets_identical\": true,");
    let _ = writeln!(
        out,
        "  \"chaos\": {{\"campaigns\": {}, \"survived\": {}, \"killed\": {}, \
         \"degraded_runs\": {}, \"retried_runs\": {}, \"zero_loss\": true}},",
        chaos.campaigns, chaos.survived, chaos.killed, chaos.degraded_runs, chaos.retried_runs
    );
    out.push_str("  \"per_spec\": [\n");
    for (idx, t) in timings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"spec\": \"{}\", \"plain_ms\": {:.3}, \"supervised_ms\": {:.3}}}",
            t.name, t.plain_ms, t.supervised_ms
        );
        out.push_str(if idx + 1 < timings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_flow.json".into());

    let planner = GpuPlanner::new(Tech::l65());
    let specs: Vec<Specification> = if smoke {
        paper_versions().into_iter().take(3).collect()
    } else {
        paper_versions()
    };
    let reps: u32 = if smoke { 3 } else { 7 };
    let chaos_campaigns: u64 = if smoke { 40 } else { 200 };

    // Byte-identity gate: with no fault firing, supervision is
    // invisible — clean degradation reports, datasheets byte-identical
    // to the plain flow on every spec.
    let supervisor = Supervisor::new(planner.clone()).with_config(pinned_config());
    for spec in &specs {
        let plain = plain_flow(&planner, spec).expect("plain flow runs");
        let supervised = supervisor
            .run_spec(spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(
            supervised.degradations.is_clean(),
            "{spec}: clean run must not degrade"
        );
        assert_eq!(
            datasheet(&supervised.version),
            datasheet(&plain),
            "{spec}: supervision changed the datasheet"
        );
    }
    eprintln!(
        "byte-identity gate: {} supervised datasheets match the plain flow",
        specs.len()
    );

    // Overhead: best-of-`reps` full passes over the spec list, per
    // mode, timed per spec. Single-threaded in both modes so the
    // comparison isolates the supervision machinery.
    let mut timings: Vec<SpecTiming> = specs
        .iter()
        .map(|s| SpecTiming {
            name: s.version_name(),
            plain_ms: f64::INFINITY,
            supervised_ms: f64::INFINITY,
        })
        .collect();
    for _ in 0..reps {
        for (i, spec) in specs.iter().enumerate() {
            let t0 = Instant::now();
            let plain = plain_flow(&planner, spec).expect("plain flow runs");
            let plain_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let supervised = supervisor.run_spec(spec).expect("supervised flow runs");
            let supervised_ms = t1.elapsed().as_secs_f64() * 1e3;

            assert_eq!(supervised.version, plain, "{spec}: results diverged");
            timings[i].plain_ms = timings[i].plain_ms.min(plain_ms);
            timings[i].supervised_ms = timings[i].supervised_ms.min(supervised_ms);
        }
    }
    let plain_ms: f64 = timings.iter().map(|t| t.plain_ms).sum();
    let supervised_ms: f64 = timings.iter().map(|t| t.supervised_ms).sum();
    let overhead_pct = (supervised_ms - plain_ms) / plain_ms * 100.0;
    eprintln!(
        "overhead: plain {plain_ms:.2} ms, supervised {supervised_ms:.2} ms \
         ({overhead_pct:+.2} % over {} specs, best of {reps})",
        specs.len()
    );
    // The supervision machinery (inline catch_unwind, ladder and retry
    // bookkeeping) must stay under 2 % of the flow — with an absolute
    // 5 ms floor so sub-millisecond baselines don't turn scheduler
    // noise into failures.
    assert!(
        supervised_ms - plain_ms < (plain_ms * 0.02).max(5.0),
        "supervision overhead too high: plain {plain_ms:.2} ms vs supervised {supervised_ms:.2} ms"
    );

    // Chaos zero-loss gate.
    let chaos = chaos_sweep(&planner, chaos_campaigns);
    eprintln!(
        "chaos zero-loss gate: {} campaigns, {} survived bit-identical, {} killed with \
         structured retryable errors ({} degraded, {} retried)",
        chaos.campaigns, chaos.survived, chaos.killed, chaos.degraded_runs, chaos.retried_runs
    );

    let json = render_json(
        smoke,
        reps,
        &timings,
        plain_ms,
        supervised_ms,
        overhead_pct,
        &chaos,
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
