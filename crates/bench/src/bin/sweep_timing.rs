//! Wall-clock measurements backing `EXPERIMENTS.md`: the event-driven
//! SIMT core against the retained cycle-stepping reference, and the
//! memoized + threaded 24-point design-space sweep against the
//! seed-style cold-cache sequential search.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin sweep_timing
//! GGPU_THREADS=4 cargo run --release -p ggpu-bench --bin sweep_timing
//! ```

use ggpu_kernels::{all, run_gpu_suite_with_threads, suite_threads};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{worker_threads, GpuPlanner, PlanError, Specification};
use std::time::Instant;

fn kernel_size(name: &str) -> u32 {
    match name {
        "xcorr" | "parallel_sel" => 256,
        _ => 2048,
    }
}

fn main() {
    println!(
        "host parallelism: {} thread(s) available, GGPU_THREADS={}",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::env::var("GGPU_THREADS").unwrap_or_else(|_| "<unset>".into())
    );

    // ---- Tentpole A: scheduler core, 7-kernel sweep ----
    let benches = all();

    println!(
        "\n{:>14}  {:>10}  {:>10}  {:>8}  {:>10}",
        "kernel", "ref wall", "event wall", "wall x", "iters x"
    );
    let mut ref_wall = std::time::Duration::ZERO;
    let mut ev_wall = std::time::Duration::ZERO;
    let mut ref_iters = 0u64;
    let mut ev_iters = 0u64;
    for b in &benches {
        let n = kernel_size(b.name);
        let r = b.run_gpu_reference(n, 2).expect("reference runs");
        let e = b.run_gpu(n, 2).expect("event runs");
        assert_eq!(r.cycles, e.cycles, "{}: schedulers must agree", b.name);
        ref_wall += r.sim_wall;
        ev_wall += e.sim_wall;
        ref_iters += r.sched_iterations;
        ev_iters += e.sched_iterations;
        println!(
            "{:>14}  {:>10.1?}  {:>10.1?}  {:>7.2}x  {:>9.1}x",
            b.name,
            r.sim_wall,
            e.sim_wall,
            r.sim_wall.as_secs_f64() / e.sim_wall.as_secs_f64(),
            r.sched_iterations as f64 / e.sched_iterations as f64
        );
    }

    let threads = suite_threads(benches.len());
    let t = Instant::now();
    run_gpu_suite_with_threads(&benches, 2048, 2, threads).expect("threaded sweep");
    let suite_wall = t.elapsed();

    println!("\n== 7-kernel sweep (n=2048, quadratic kernels n=256, 2 CUs) ==");
    println!("reference (cycle-stepping): {ref_wall:>10.1?}  ({ref_iters} scheduler iterations)");
    println!("event-driven:               {ev_wall:>10.1?}  ({ev_iters} scheduler iterations)");
    println!(
        "speedup {:.2}x wall, {:.1}x fewer scheduler iterations",
        ref_wall.as_secs_f64() / ev_wall.as_secs_f64(),
        ref_iters as f64 / ev_iters as f64
    );
    println!("event-driven, {threads} worker thread(s), uniform n=2048: {suite_wall:.1?}");

    // ---- Tentpole B: 24-point best_within sweep ----
    let (area, power) = (100.0, 100.0); // generous: all 24 points plan fully

    // Seed-style baseline: no memoization shared between points (a
    // fresh planner per point) and strictly sequential.
    let t = Instant::now();
    let mut planned = 0u32;
    for (cus, mhz) in GpuPlanner::sweep_points() {
        let p = GpuPlanner::new(Tech::l65());
        let spec = Specification::new(cus, Mhz::new(mhz))
            .with_max_area_mm2(area)
            .with_max_power_w(power);
        match p.plan(&spec) {
            Ok(_) => planned += 1,
            Err(PlanError::Dse(_)) => {}
            Err(e) => panic!("structural failure: {e}"),
        }
    }
    let cold_wall = t.elapsed();

    // Memoized sequential: one shared StaCache, one thread.
    let p = GpuPlanner::new(Tech::l65());
    let t = Instant::now();
    let seq = p
        .best_within_with_threads(area, power, 1)
        .expect("sweeps")
        .expect("winner");
    let seq_wall = t.elapsed();
    let (seq_hits, seq_misses) = (p.sta_cache().hits(), p.sta_cache().misses());

    // Memoized parallel: fresh planner (cold cache again, so the
    // comparison is fair), worker_threads(24) threads.
    let threads = worker_threads(24);
    let p = GpuPlanner::new(Tech::l65());
    let t = Instant::now();
    let par = p
        .best_within_with_threads(area, power, threads)
        .expect("sweeps")
        .expect("winner");
    let par_wall = t.elapsed();
    assert_eq!(seq.spec, par.spec, "winner must not depend on threads");
    assert_eq!(
        seq.plan, par.plan,
        "winning plan must not depend on threads"
    );

    println!("\n== 24-point best_within sweep ({planned} reachable points) ==");
    println!("seed-style (cold cache, sequential): {cold_wall:>10.1?}");
    println!(
        "memoized, 1 thread:                  {seq_wall:>10.1?}  (STA cache: {seq_hits} hits / {seq_misses} misses)"
    );
    println!("memoized, {threads} thread(s):               {par_wall:>10.1?}");
    println!(
        "memoization speedup {:.2}x; end-to-end vs seed {:.2}x; winner {} CUs @ {:.0}",
        cold_wall.as_secs_f64() / seq_wall.as_secs_f64(),
        cold_wall.as_secs_f64() / par_wall.as_secs_f64().max(f64::MIN_POSITIVE),
        par.spec.compute_units,
        par.spec.frequency
    );
}
