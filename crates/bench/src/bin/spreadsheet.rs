//! Emits the paper's "dynamic spreadsheet" for a design and target
//! frequency: every memory structure with its access time, slack, and
//! the division factor needed to close the target (CSV on stdout).
//!
//! Usage: `spreadsheet [cus] [target_mhz]`

use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::render_map;

fn main() {
    let mut args = std::env::args().skip(1);
    let cus: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let target: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(667.0);
    let design = generate(&GgpuConfig::with_cus(cus).expect("1-8 CUs")).expect("generates");
    let map = render_map(&design, &Tech::l65(), Mhz::new(target)).expect("times");
    print!("{map}");
}
