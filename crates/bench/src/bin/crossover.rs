//! Crossover analysis: sweeps the input size per kernel and reports
//! the smallest n at which the 8-CU G-GPU beats the RISC-V outright
//! (same n on both, no scaling) — the "when is the accelerator worth
//! invoking" question the paper's intro motivates.

use ggpu_bench::ascii_table;
use ggpu_kernels::all;

fn main() {
    let header: Vec<String> = ["kernel", "crossover n", "speedup@crossover", "speedup@4096"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for bench in all() {
        let sizes: &[u32] = if matches!(bench.name, "xcorr" | "parallel_sel") {
            &[16, 32, 64, 128, 256, 512, 1024]
        } else {
            &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        };
        let mut crossover = None;
        let mut last = 0.0;
        for &n in sizes {
            let gpu = bench.run_gpu(n, 8).expect("verified run");
            let rv = bench.run_riscv(n).expect("verified run");
            last = rv.cycles as f64 / gpu.cycles as f64;
            if crossover.is_none() && last >= 1.0 {
                crossover = Some((n, last));
            }
        }
        rows.push(vec![
            bench.name.to_string(),
            crossover.map_or("> sweep".into(), |(n, _)| n.to_string()),
            crossover.map_or("-".into(), |(_, s)| format!("{s:.2}x")),
            format!("{last:.2}x"),
        ]);
    }
    println!("Crossover: smallest n where an 8-CU G-GPU beats the RISC-V at equal n\n");
    println!("{}", ascii_table(&header, &rows));
    println!("(dispatch and memory-system latency dominate small grids — the\n reason the paper calls G-GPU a *domain-specific* accelerator)");
}
