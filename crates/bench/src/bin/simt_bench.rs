//! Host-speed benchmark of the two SIMT execution backends: the
//! scalar reference engine and the data-oriented SoA fast path
//! (see [`ggpu_simt::Accelerator`]), over the 8 shipped kernels
//! (the paper's Table III seven plus the LRAM-tiled `mat_mul_local`).
//!
//! This binary is also the backend-agreement gate: every kernel is run
//! on *both* backends and the `RunStats` (cycles, instruction and
//! lane-op counts, stall/busy breakdown, full memory-system counters)
//! must be identical — on top of the golden-output check the kernel
//! harness already applies. Only then is host throughput reported, as
//! `simulated_cycles_per_second` per kernel per backend.
//!
//! Kernels run at `SimtConfig::default()` — the same configuration
//! the fault-injection campaigns and the planner's per-candidate
//! probes use, i.e. the throughput that actually bounds those loops.
//!
//! Results go to `BENCH_simt.json` (override with `--out PATH`);
//! `--smoke` runs small grids once, sized for CI.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin simt_bench
//! cargo run --release -p ggpu-bench --bin simt_bench -- --smoke --out target/BENCH_simt_smoke.json
//! ```

use ggpu_kernels::bench::{self, Bench};
use ggpu_simt::{AccelBackend, RunStats, SimtConfig};
use std::fmt::Write as _;

struct Row {
    kernel: &'static str,
    n: u32,
    cycles: u64,
    scalar_cps: f64,
    soa_cps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.soa_cps / self.scalar_cps
    }
}

fn run_once(bench: &Bench, n: u32, backend: AccelBackend) -> RunStats {
    let config = SimtConfig {
        backend,
        ..SimtConfig::default()
    };
    bench
        .run_gpu_with(n, config)
        .unwrap_or_else(|e| panic!("{} on {backend:?} backend failed: {e:?}", bench.name))
}

/// Best-of-`reps` run of *both* backends, repetitions interleaved so
/// transient host load hits the two backends alike instead of biasing
/// whichever block it lands on; returns the fastest repetition of each
/// (`sim_wall` is the only field that varies across reps).
fn run_pair(bench: &Bench, n: u32, reps: u32) -> (RunStats, RunStats) {
    let mut scalar: Option<RunStats> = None;
    let mut soa: Option<RunStats> = None;
    for _ in 0..reps {
        for (backend, best) in [
            (AccelBackend::Scalar, &mut scalar),
            (AccelBackend::Soa, &mut soa),
        ] {
            let stats = run_once(bench, n, backend);
            let faster = best
                .as_ref()
                .map(|b| stats.sim_wall < b.sim_wall)
                .unwrap_or(true);
            if faster {
                *best = Some(stats);
            }
        }
    }
    (scalar.expect("reps >= 1"), soa.expect("reps >= 1"))
}

fn render_json(cus: u32, reps: u32, rows: &[Row], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"simt\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"compute_units\": {cus},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    out.push_str("  \"kernels\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"simulated_cycles\": {}, \
             \"simulated_cycles_per_second\": {{\"scalar\": {:.0}, \"soa\": {:.0}}}, \
             \"soa_speedup\": {:.2}}}",
            r.kernel,
            r.n,
            r.cycles,
            r.scalar_cps,
            r.soa_cps,
            r.speedup(),
        );
        out.push_str(if idx + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simt.json".into());

    // Benchmarked at `SimtConfig::default()` — the configuration the
    // fault-injection campaigns and the planner's per-candidate probes
    // actually run, which is the throughput this PR is about.
    let cus = SimtConfig::default().compute_units;
    let reps: u32 = if smoke { 1 } else { 5 };

    let mut kernels: Vec<Bench> = bench::all().to_vec();
    kernels.push(bench::mat_mul_local());

    let mut rows = Vec::new();
    for b in &kernels {
        // mat_mul_local needs full wavefronts; 256 satisfies both.
        let n = if smoke { 256 } else { b.gpu_n };
        eprintln!("running {} (n={n}, {cus} CU) ...", b.name);
        let (scalar, soa) = run_pair(b, n, reps);
        // Backend-agreement gate: architectural stats must be
        // bit-identical (RunStats::eq excludes host-perf fields).
        assert_eq!(
            scalar, soa,
            "backends disagree on {} — SoA fast path is not bit-identical",
            b.name
        );
        let scalar_cps = scalar.cycles as f64 / scalar.sim_wall.as_secs_f64();
        let soa_cps = soa.cycles as f64 / soa.sim_wall.as_secs_f64();
        eprintln!(
            "  {} cycles; scalar {:.2} Mcyc/s, soa {:.2} Mcyc/s ({:.1}x)",
            scalar.cycles,
            scalar_cps / 1e6,
            soa_cps / 1e6,
            soa_cps / scalar_cps,
        );
        rows.push(Row {
            kernel: b.name,
            n,
            cycles: scalar.cycles,
            scalar_cps,
            soa_cps,
        });
    }

    let fast = rows.iter().filter(|r| r.speedup() >= 5.0).count();
    eprintln!(
        "{fast}/{} kernels reach a 5x SoA speedup; all 8 backend-agreement checks passed",
        rows.len()
    );

    let json = render_json(cus, reps, &rows, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
