//! Tracked baseline for the fault-injection subsystem: seeded SEU
//! campaigns over the 1-CU design under three protection policies
//! (unprotected / parity / SEC-DED), reporting the outcome taxonomy
//! and AVF per scenario.
//!
//! The campaign runner is deterministic by construction — the per-trial
//! RNG is keyed by `(seed, trial)`, independent of thread scheduling —
//! and this binary *asserts* that as it measures: the first scenario is
//! re-run single-threaded and its report JSON must be byte-identical to
//! the parallel run.
//!
//! Results go to `BENCH_fault.json` (override with `--out PATH`);
//! `--smoke` runs one kernel at 64 trials per policy, sized for CI.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin fault_bench
//! cargo run --release -p ggpu-bench --bin fault_bench -- --smoke --out target/BENCH_fault_smoke.json
//! ```

use ggpu_fault::{run_campaign, CampaignConfig, CampaignReport, MacroMap, Workload};
use ggpu_kernels::bench;
use ggpu_netlist::EccPolicy;
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::sram::EccScheme;
use std::fmt::Write as _;
use std::time::Instant;

struct Scenario {
    kernel: &'static str,
    policy_name: &'static str,
    overhead_pct: f64,
    wall_ms: f64,
    report: CampaignReport,
}

fn policies() -> [(&'static str, EccPolicy); 3] {
    [
        ("unprotected", EccPolicy::unprotected()),
        ("parity", EccPolicy::uniform(EccScheme::Parity)),
        ("secded", EccPolicy::uniform(EccScheme::SecDed)),
    ]
}

fn render_json(seed: u64, trials: u32, scenarios: &[Scenario], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fault\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"design\": \"1cu\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"trials_per_scenario\": {trials},");
    out.push_str("  \"scenarios\": [\n");
    for (idx, s) in scenarios.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"policy\": \"{}\", \"ecc_overhead_pct\": {:.2}, \
             \"avf\": {:.4}, \"wall_ms\": {:.1}, \"report\": {}}}",
            s.kernel,
            s.policy_name,
            s.overhead_pct,
            s.report.avf(),
            s.wall_ms,
            s.report.to_json(),
        );
        out.push_str(if idx + 1 < scenarios.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fault.json".into());

    let seed: u64 = 0x5eed_f417;
    let trials: u32 = std::env::var("GGPU_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 64 } else { 256 });
    let n: u32 = 256;

    let design = generate(&GgpuConfig::with_cus(1).expect("1 CU is valid")).expect("generates");
    let kernels: Vec<ggpu_kernels::bench::Bench> = if smoke {
        vec![bench::all()[1]] // copy
    } else {
        bench::all()[..4].to_vec() // vec_add, copy, saxpy, reduce-class
    };

    let mut scenarios = Vec::new();
    for kernel in &kernels {
        let workload = Workload::from_bench(kernel, n).expect("workload builds");
        for (policy_name, policy) in policies() {
            let map = MacroMap::from_design(&design, &policy).expect("design has macros");
            let overhead_pct =
                ggpu_fault::ResilienceReport::from_map(&map, policy.to_string()).overhead_pct();
            let cfg = CampaignConfig::new(seed, trials);
            eprintln!(
                "running {}/{policy_name} ({trials} trials) ...",
                kernel.name
            );
            let t0 = Instant::now();
            let report = run_campaign(&workload, &map, &cfg).expect("campaign runs");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "  avf {:.3}  (masked {}, sdc {}, corrected {}, due {}, hang {}, crash {})  \
                 {wall_ms:.0} ms",
                report.avf(),
                report.counts.masked,
                report.counts.sdc,
                report.counts.detected_corrected,
                report.counts.detected_uncorrectable,
                report.counts.hang,
                report.counts.crash,
            );
            scenarios.push(Scenario {
                kernel: kernel.name,
                policy_name,
                overhead_pct,
                wall_ms,
                report,
            });
        }
    }

    // Determinism gate: replay the first scenario single-threaded; the
    // report must be byte-identical to the parallel run above.
    {
        let kernel = &kernels[0];
        let workload = Workload::from_bench(kernel, n).expect("workload builds");
        let (_, policy) = &policies()[0];
        let map = MacroMap::from_design(&design, policy).expect("design has macros");
        let mut cfg = CampaignConfig::new(seed, trials);
        cfg.threads = 1;
        let replay = run_campaign(&workload, &map, &cfg).expect("campaign runs");
        assert_eq!(
            replay.to_json(),
            scenarios[0].report.to_json(),
            "seeded campaign must be byte-identical across thread counts"
        );
        eprintln!("determinism gate: single-threaded replay is byte-identical");
    }

    let json = render_json(seed, trials, &scenarios, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
