//! Regenerates the paper's **Fig. 5**: raw speed-up of the G-GPU over
//! the RISC-V for each kernel and CU count, using the paper's
//! pessimistic input-size scaling.

use ggpu_bench::{ascii_table, collect_table3, BENCH_CUS};

fn bar(v: f64, scale: f64) -> String {
    let n = ((v.max(1.0)).log10() * scale).round() as usize;
    "#".repeat(n.max(1))
}

fn main() {
    let data = collect_table3();
    let header: Vec<String> = ["kernel", "1cu", "2cu", "4cu", "8cu", "chart (log10, 8cu)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut best: f64 = 0.0;
    let mut worst = f64::INFINITY;
    for kc in &data {
        let speedups: Vec<f64> = (0..BENCH_CUS.len()).map(|i| kc.speedup(i)).collect();
        best = best.max(speedups[3]);
        worst = worst.min(speedups[0]);
        rows.push(vec![
            kc.bench.name.to_string(),
            format!("{:.1}", speedups[0]),
            format!("{:.1}", speedups[1]),
            format!("{:.1}", speedups[2]),
            format!("{:.1}", speedups[3]),
            bar(speedups[3], 10.0),
        ]);
    }
    println!("Fig. 5: raw speed-up over RISC-V (measured; paper peaks at ~223x, floor ~1.2x)\n");
    println!("{}", ascii_table(&header, &rows));
    println!("measured range: {worst:.1}x .. {best:.1}x");
}
