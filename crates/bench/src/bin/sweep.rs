//! Frequency-sweep ablation: runs the DSE across a range of target
//! frequencies and prints the resulting area/macro-count/power curve —
//! the diminishing-returns picture behind the paper's choice of 500,
//! 590 and 667 MHz as "versions worth the PPA trade-off".

use ggpu_bench::ascii_table;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{GpuPlanner, PlanError, Specification};

fn main() {
    let cus: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let planner = GpuPlanner::new(Tech::l65());
    let header: Vec<String> = [
        "target MHz",
        "fmax",
        "area mm2",
        "d.area %",
        "#mem",
        "divisions",
        "pipelines",
        "total W",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut base_area = None;
    for target in (500..=900).step_by(50) {
        let spec = Specification::new(cus, Mhz::new(f64::from(target)));
        match planner.plan(&spec) {
            Ok(v) => {
                let area = v.synthesis.stats.total_area().to_mm2();
                let base = *base_area.get_or_insert(area);
                rows.push(vec![
                    target.to_string(),
                    format!("{:.0}", v.synthesis.fmax.map(|f| f.value()).unwrap_or(0.0)),
                    format!("{area:.2}"),
                    format!("{:+.1}", (area / base - 1.0) * 100.0),
                    v.synthesis.stats.macro_count.to_string(),
                    v.plan.divisions.len().to_string(),
                    v.plan.pipelines.len().to_string(),
                    format!("{:.2}", v.synthesis.total_power().to_watts()),
                ]);
            }
            Err(PlanError::Dse(e)) => {
                rows.push(vec![target.to_string(), format!("({e})")]);
            }
            Err(e) => panic!("{e}"),
        }
    }
    println!("Frequency sweep for {cus} CU (DSE cost curve)\n");
    println!("{}", ascii_table(&header, &rows));
}
