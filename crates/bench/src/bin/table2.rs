//! Regenerates the paper's **Table II**: routing wirelength per metal
//! layer for the four physically implemented versions (the 8-CU
//! 667 MHz request closes at a reduced clock, as in the paper).

use ggpu_bench::ascii_table;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{physical_versions, GpuPlanner};

/// Paper Table II (µm): [M2..M7] per version.
const PAPER: [(&str, [f64; 6]); 4] = [
    (
        "1cu@500MHz",
        [
            3_185_110.0,
            5_132_356.0,
            2_987_163.0,
            2_713_788.0,
            1_430_594.0,
            616_666.0,
        ],
    ),
    (
        "1cu@667MHz",
        [
            15_340_072.0,
            21_219_705.0,
            9_866_798.0,
            11_293_663.0,
            8_801_517.0,
            2_915_533.0,
        ],
    ),
    (
        "8cu@500MHz",
        [
            20_314_957.0,
            27_928_578.0,
            19_209_669.0,
            21_953_276.0,
            14_074_944.0,
            6_316_321.0,
        ],
    ),
    (
        "8cu@600MHz",
        [
            25_637_608.0,
            34_890_963.0,
            22_387_405.0,
            26_355_211.0,
            11_111_664.0,
            5_315_697.0,
        ],
    ),
];

const LAYERS: [&str; 6] = ["M2", "M3", "M4", "M5", "M6", "M7"];

fn main() {
    let planner = GpuPlanner::new(Tech::l65());
    let mut header = vec!["layer".to_string()];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut achieved: Vec<String> = Vec::new();

    for spec in physical_versions() {
        let planned = planner
            .plan(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.version_name()));
        let implemented = planner
            .implement(&planned)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.version_name()));
        let clock: Mhz = implemented.achieved_clock();
        achieved.push(format!("{}: achieved {clock:.0}", spec.version_name()));
        header.push(format!("{}cu@{:.0}", spec.compute_units, clock.value()));
        columns.push(
            LAYERS
                .iter()
                .map(|l| implemented.layout.wirelength.layer(l).value())
                .collect(),
        );
    }
    for (name, _) in PAPER {
        header.push(format!("paper {name}"));
    }

    let mut rows = Vec::new();
    for (li, layer) in LAYERS.iter().enumerate() {
        let mut row = vec![layer.to_string()];
        for col in &columns {
            row.push(format!("{:.0}", col[li]));
        }
        for (_, vals) in PAPER {
            row.push(format!("{:.0}", vals[li]));
        }
        rows.push(row);
    }
    let mut totals = vec!["total".to_string()];
    for col in &columns {
        totals.push(format!("{:.0}", col.iter().sum::<f64>()));
    }
    for (_, vals) in PAPER {
        totals.push(format!("{:.0}", vals.iter().sum::<f64>()));
    }
    rows.push(totals);

    println!("Table II: routing wirelength per metal layer, um (measured vs paper)\n");
    println!("{}", ascii_table(&header, &rows));
    for line in achieved {
        println!("{line}");
    }
}
