//! Tracked performance baseline for the transactional transform
//! engine (`TransformJournal`, copy-on-write netlists).
//!
//! Three scenario families, each asserting bit-identity while it
//! measures (the property suite in
//! `crates/planner/tests/prop_journal_equiv.rs` owns the randomized
//! version of the same claims):
//!
//! * **replay** — applying a full Table-I optimization plan through
//!   the journal (`apply_plan_dirty`: one CoW clone, per-action
//!   transactions) versus the retained pre-refactor path
//!   (`apply_plan_clone_dirty`: whole-design deep clone + replay).
//! * **revert_walk** — apply every action of the plan as a journal
//!   transaction, then revert all of them; the walk must restore the
//!   base design bit-identically (snapshot restores are O(1) Arc
//!   swaps, so the revert side is expected to be far cheaper than the
//!   apply side).
//! * **beam** — the DSE under `DseConfig::with_beam_width(w)`: width 1
//!   must be bit-identical to greedy, wider beams must still meet the
//!   target in no more transform steps.
//!
//! Results go to `BENCH_journal.json` (override with `--out PATH`);
//! `--smoke` runs the 1-CU scenarios only, sized for CI.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin journal_bench
//! cargo run --release -p ggpu-bench --bin journal_bench -- --smoke --out target/BENCH_journal_smoke.json
//! ```

use ggpu_netlist::{design_clone_count, module_copy_count, Design};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{
    apply_plan_clone_dirty, apply_plan_dirty, optimize_for_with, optimize_with_config, DseConfig,
    OptimizationPlan, StaCache, TransformJournal,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Best wall-clock (ms) of `iters` runs of `work`.
fn best_ms(iters: u32, mut work: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        work();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Debug)]
struct ReplayScenario {
    name: String,
    actions: usize,
    clone_ms: f64,
    journal_ms: f64,
    /// `Design::clone` calls for one journal replay (expected 1: the
    /// journal's own CoW working copy).
    journal_design_clones: u64,
    /// Module materializations for one journal replay — exactly one
    /// CoW copy per transaction (the pre-transaction snapshot keeps
    /// the old `Arc` alive, so the first mutation of the transaction
    /// copies; later mutations in the same transaction hit the now
    /// unique module) — vs. one deep-clone replay (every module).
    journal_module_copies: u64,
    clone_module_copies: u64,
}

impl ReplayScenario {
    fn speedup(&self) -> f64 {
        if self.journal_ms > 0.0 {
            self.clone_ms / self.journal_ms
        } else {
            f64::INFINITY
        }
    }
}

/// A Table-I plan for `cus` CUs at `mhz`, via the shipping DSE.
fn plan_for(base: &Design, tech: &Tech, mhz: f64) -> OptimizationPlan {
    optimize_for_with(base, tech, Mhz::new(mhz), &StaCache::new())
        .expect("Table-I target reachable")
        .plan
}

fn replay_scenario(
    cus: u32,
    mhz: f64,
    iters: u32,
    base: &Design,
    plan: &OptimizationPlan,
) -> ReplayScenario {
    // Bit-identity first, then timing.
    let (d_journal, dirty_j) = apply_plan_dirty(base, plan).expect("journal replay");
    let (d_clone, dirty_c) = apply_plan_clone_dirty(base, plan).expect("clone replay");
    assert_eq!(d_journal, d_clone, "replay paths diverge");
    assert_eq!(dirty_j, dirty_c, "dirty sets diverge");

    let clones0 = design_clone_count();
    let copies0 = module_copy_count();
    let (d, _) = apply_plan_dirty(base, plan).expect("journal replay");
    let journal_design_clones = design_clone_count() - clones0;
    let journal_module_copies = module_copy_count() - copies0;
    drop(d);

    let copies1 = module_copy_count();
    let (d, _) = apply_plan_clone_dirty(base, plan).expect("clone replay");
    let clone_module_copies = module_copy_count() - copies1;
    drop(d);

    assert_eq!(
        journal_design_clones, 1,
        "one journal replay must clone exactly once (the CoW working copy)"
    );
    assert_eq!(
        journal_module_copies,
        plan.actions().len() as u64,
        "one journal replay must materialize exactly one module copy per transaction"
    );
    assert_eq!(
        clone_module_copies,
        base.module_count() as u64,
        "one deep-clone replay must copy every module"
    );

    let journal_ms = best_ms(iters, || {
        let _ = apply_plan_dirty(base, plan).expect("journal replay");
    });
    let clone_ms = best_ms(iters, || {
        let _ = apply_plan_clone_dirty(base, plan).expect("clone replay");
    });

    ReplayScenario {
        name: format!("replay/{cus}cu@{mhz:.0}"),
        actions: plan.actions().len(),
        clone_ms,
        journal_ms,
        journal_design_clones,
        journal_module_copies,
        clone_module_copies,
    }
}

#[derive(Debug)]
struct RevertScenario {
    name: String,
    actions: usize,
    apply_ms: f64,
    revert_ms: f64,
    restored_bit_identical: bool,
}

fn revert_scenario(
    cus: u32,
    mhz: f64,
    iters: u32,
    base: &Design,
    plan: &OptimizationPlan,
) -> RevertScenario {
    let actions = plan.actions();

    // Correctness once: apply* -> revert* restores the base design
    // bit-identically, exported Verilog included.
    let mut journal = TransformJournal::new(base);
    for action in &actions {
        journal.apply(action).expect("action applies");
    }
    while journal.revert_last().is_some() {}
    let restored_bit_identical = journal.design() == base
        && journal.design().structural_fingerprint() == base.structural_fingerprint()
        && ggpu_netlist::to_structural_verilog(journal.design())
            == ggpu_netlist::to_structural_verilog(base);
    assert!(restored_bit_identical, "revert walk failed to restore base");

    // Timing: the apply side does real transform work; the revert side
    // is snapshot restores only, timed directly on a freshly applied
    // journal each iteration.
    let apply_ms = best_ms(iters, || {
        let mut journal = TransformJournal::new(base);
        for action in &actions {
            journal.apply(action).expect("action applies");
        }
    });
    let mut revert_ms = f64::MAX;
    for _ in 0..iters.max(1) {
        let mut journal = TransformJournal::new(base);
        for action in &actions {
            journal.apply(action).expect("action applies");
        }
        let t0 = Instant::now();
        while journal.revert_last().is_some() {}
        revert_ms = revert_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    RevertScenario {
        name: format!("revert_walk/{cus}cu@{mhz:.0}"),
        actions: actions.len(),
        apply_ms,
        revert_ms,
        restored_bit_identical,
    }
}

#[derive(Debug)]
struct BeamScenario {
    name: String,
    width: usize,
    wall_ms: f64,
    steps: usize,
    fmax_mhz: f64,
    met: bool,
}

fn beam_scenarios(
    cus: u32,
    mhz: f64,
    iters: u32,
    tech: &Tech,
    base: &Design,
    widths: &[usize],
) -> Vec<BeamScenario> {
    let target = Mhz::new(mhz);
    let greedy = optimize_for_with(base, tech, target, &StaCache::new()).expect("reachable");
    let mut out = Vec::new();
    for &width in widths {
        let config = DseConfig::with_beam_width(width);
        let result =
            optimize_with_config(base, tech, target, &StaCache::new(), &config).expect("reachable");
        if width <= 1 {
            // Width 1 IS greedy, bit for bit.
            assert_eq!(
                result.plan, greedy.plan,
                "width-1 plan diverges from greedy"
            );
            assert_eq!(
                result.fmax.value().to_bits(),
                greedy.fmax.value().to_bits(),
                "width-1 fmax diverges from greedy"
            );
        } else {
            // Wider beams are never worse: target met, no more steps.
            assert!(result.fmax.value() >= target.value(), "beam missed target");
            assert!(
                result.trace.len() <= greedy.trace.len(),
                "beam used more steps than greedy"
            );
        }
        let wall_ms = best_ms(iters, || {
            let _ = optimize_with_config(base, tech, target, &StaCache::new(), &config)
                .expect("reachable");
        });
        out.push(BeamScenario {
            name: format!("beam/{cus}cu@{mhz:.0}/w{width}"),
            width,
            wall_ms,
            steps: result.trace.len(),
            fmax_mhz: result.fmax.value(),
            met: result.fmax.value() >= target.value(),
        });
    }
    out
}

fn render_json(
    replays: &[ReplayScenario],
    reverts: &[RevertScenario],
    beams: &[BeamScenario],
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"journal\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"replay\": [\n");
    for (idx, s) in replays.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"actions\": {}, \"clone_ms\": {:.3}, \
             \"journal_ms\": {:.3}, \"speedup\": {:.2}, \"journal_design_clones\": {}, \
             \"journal_module_copies\": {}, \"clone_module_copies\": {}}}",
            s.name,
            s.actions,
            s.clone_ms,
            s.journal_ms,
            s.speedup(),
            s.journal_design_clones,
            s.journal_module_copies,
            s.clone_module_copies,
        );
        out.push_str(if idx + 1 < replays.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"revert_walk\": [\n");
    for (idx, s) in reverts.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"actions\": {}, \"apply_ms\": {:.3}, \
             \"revert_ms\": {:.3}, \"restored_bit_identical\": {}}}",
            s.name, s.actions, s.apply_ms, s.revert_ms, s.restored_bit_identical,
        );
        out.push_str(if idx + 1 < reverts.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"beam\": [\n");
    for (idx, s) in beams.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"width\": {}, \"wall_ms\": {:.3}, \"steps\": {}, \
             \"fmax_mhz\": {:.2}, \"met\": {}}}",
            s.name, s.width, s.wall_ms, s.steps, s.fmax_mhz, s.met,
        );
        out.push_str(if idx + 1 < beams.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_journal.json".into());

    let tech = Tech::l65();
    let iters: u32 = std::env::var("GGPU_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 25 });

    let points: &[(u32, f64)] = if smoke {
        &[(1, 667.0)]
    } else {
        &[(1, 667.0), (8, 667.0)]
    };
    let widths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    let mut replays = Vec::new();
    let mut reverts = Vec::new();
    let mut beams = Vec::new();
    for &(cus, mhz) in points {
        let base =
            generate(&GgpuConfig::with_cus(cus).expect("valid CU count")).expect("generates");
        let plan = plan_for(&base, &tech, mhz);

        eprintln!("running replay/{cus}cu@{mhz:.0} ...");
        let r = replay_scenario(cus, mhz, iters, &base, &plan);
        eprintln!(
            "  clone {:.2} ms -> journal {:.2} ms ({:.2}x), module copies {} -> {}",
            r.clone_ms,
            r.journal_ms,
            r.speedup(),
            r.clone_module_copies,
            r.journal_module_copies
        );
        replays.push(r);

        eprintln!("running revert_walk/{cus}cu@{mhz:.0} ...");
        let r = revert_scenario(cus, mhz, iters, &base, &plan);
        eprintln!(
            "  apply {:.2} ms, revert {:.2} ms, restored bit-identically: {}",
            r.apply_ms, r.revert_ms, r.restored_bit_identical
        );
        reverts.push(r);

        eprintln!("running beam/{cus}cu@{mhz:.0} (widths {widths:?}) ...");
        for b in beam_scenarios(cus, mhz, iters, &tech, &base, widths) {
            eprintln!(
                "  width {} -> {:.1} ms, {} steps, fmax {:.1} MHz",
                b.width, b.wall_ms, b.steps, b.fmax_mhz
            );
            beams.push(b);
        }
    }

    let json = render_json(&replays, &reverts, &beams, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
