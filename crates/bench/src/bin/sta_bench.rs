//! Tracked performance baseline for the incremental STA engine.
//!
//! Times the design-space-exploration entry points twice per scenario:
//!
//! * **baseline** — `StaCache::legacy()`: the pre-incremental engine
//!   reproduced exactly (Debug-string fingerprints over the whole
//!   design, full recompute on every miss), with the process-wide
//!   SRAM-compile memo disabled.
//! * **incremental** — `StaCache::new()` (design-level memo over
//!   cached structural fingerprints, backed by the module-level
//!   `IncrementalSta` engine) with the SRAM memo enabled: the
//!   shipping flow.
//!
//! Both paths are property-tested to produce bit-identical plans and
//! reports (`crates/planner/tests/prop_incremental_equiv.rs`), so this
//! binary asserts equality as it measures. Results go to
//! `BENCH_sta.json` (override with `--out PATH`); `--smoke` runs the
//! 1-CU scenarios only, sized for CI.
//!
//! Since the transactional-transform refactor the binary also runs a
//! three-way *transform engine* comparison per DSE point (all three on
//! the incremental STA engine, so only the candidate mechanics
//! differ):
//!
//! * **clone** — `optimize_for_clone`: the pre-refactor loop, one
//!   whole-design deep clone per candidate.
//! * **cow** — `optimize_for_cow`: copy-on-write clones, but still a
//!   full plan replay per candidate.
//! * **journal** — `optimize_for_with`: the shipping
//!   `TransformJournal` rebase; zero clones on the candidate hot path,
//!   which the binary *asserts* via the netlist crate's clone
//!   counters (exact counts are meaningful here because the
//!   comparison runs single-threaded).
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin sta_bench
//! cargo run --release -p ggpu-bench --bin sta_bench -- --smoke --out target/BENCH_sta_smoke.json
//! ```

use ggpu_netlist::{design_clone_count, module_copy_count};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::sram::{raw_compile_count, CompiledSramCache};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{
    optimize_for_clone, optimize_for_cow, optimize_for_with, GpuPlanner, Optimized, StaCache,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One side (baseline or incremental) of a measured scenario.
#[derive(Debug, Clone)]
struct Side {
    wall_ms: f64,
    /// STA queries issued (design-level `max_frequency` + `analyze`).
    sta_queries: u64,
    /// STA queries actually computed (not answered from a memo).
    sta_computed: u64,
    /// Raw (non-memoized) SRAM compiler runs during the scenario.
    sram_raw_compiles: u64,
    /// Module-level engine hit rate (0 for the baseline, which has no
    /// module cache).
    module_hit_rate: f64,
}

#[derive(Debug, Clone)]
struct Scenario {
    name: String,
    baseline: Side,
    incremental: Side,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        if self.incremental.wall_ms > 0.0 {
            self.baseline.wall_ms / self.incremental.wall_ms
        } else {
            f64::INFINITY
        }
    }

    fn sram_reduction(&self) -> f64 {
        if self.incremental.sram_raw_compiles > 0 {
            self.baseline.sram_raw_compiles as f64 / self.incremental.sram_raw_compiles as f64
        } else {
            f64::INFINITY
        }
    }
}

/// Runs `work` `iters` times, each on a fresh cache from `mk_cache`
/// (cold-start measurement, the conservative comparison), and records
/// the best wall-clock; the query/compile counters come from the final
/// iteration. DSE is deterministic, so every iteration does identical
/// work.
fn measure(
    iters: u32,
    sram_memo: bool,
    mk_cache: impl Fn() -> StaCache,
    mut work: impl FnMut(Arc<StaCache>),
) -> Side {
    CompiledSramCache::global().set_enabled(sram_memo);
    let mut best_ms = f64::MAX;
    // SRAM compiles are counted on the first iteration only — the
    // process-global memo means later iterations are warm, which is
    // the production behaviour but not the interesting number.
    let mut first_sram = None;
    let mut side = None;
    for _ in 0..iters.max(1) {
        let cache = Arc::new(mk_cache());
        let sram0 = raw_compile_count();
        let t0 = Instant::now();
        work(Arc::clone(&cache));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(wall_ms);
        first_sram.get_or_insert(raw_compile_count() - sram0);
        let stats = cache.engine_stats();
        side = Some(Side {
            wall_ms: best_ms,
            sta_queries: cache.hits() + cache.misses(),
            sta_computed: cache.misses(),
            sram_raw_compiles: first_sram.unwrap_or(0),
            module_hit_rate: stats.hit_rate(),
        });
    }
    CompiledSramCache::global().set_enabled(true);
    let mut side = side.expect("at least one iteration");
    side.wall_ms = best_ms;
    side
}

/// One `optimize_for` scenario: DSE toward `mhz` on a `cus`-CU design.
fn dse_scenario(cus: u32, mhz: f64, iters: u32, tech: &Tech) -> Scenario {
    let base = generate(&GgpuConfig::with_cus(cus).expect("valid CU count")).expect("generates");
    let target = Mhz::new(mhz);

    // Baseline first: with the SRAM memo disabled it cannot poison the
    // incremental side, and the incremental side's warm-up mirrors
    // production (one process, one global memo).
    let mut plan_base = None;
    let baseline = measure(iters, false, StaCache::legacy, |cache| {
        plan_base = Some(optimize_for_with(&base, tech, target, &cache).expect("reachable"));
    });

    let mut plan_inc = None;
    let incremental = measure(iters, true, StaCache::new, |cache| {
        plan_inc = Some(optimize_for_with(&base, tech, target, &cache).expect("reachable"));
    });

    let (b, i) = (plan_base.unwrap(), plan_inc.unwrap());
    assert_eq!(b.plan, i.plan, "engines must agree on the plan");
    assert_eq!(
        b.fmax.value().to_bits(),
        i.fmax.value().to_bits(),
        "engines must agree on fmax"
    );

    Scenario {
        name: format!("optimize_for/{cus}cu@{mhz:.0}"),
        baseline,
        incremental,
    }
}

/// One transform-engine leg of the clone-vs-CoW-vs-journal comparison.
#[derive(Debug, Clone)]
struct EngineLeg {
    wall_ms: f64,
    /// `Design::clone` calls during one DSE run (CoW clones included;
    /// a deep clone also counts one).
    design_clones: u64,
    /// Module materializations during one DSE run (CoW copy-outs plus
    /// the per-module copies of every deep clone).
    module_copies: u64,
}

#[derive(Debug, Clone)]
struct EngineScenario {
    name: String,
    /// Transform candidates the greedy loop measured (trace length
    /// minus the final "met" advice) — identical across legs.
    candidates: u64,
    clone: EngineLeg,
    cow: EngineLeg,
    journal: EngineLeg,
}

impl EngineScenario {
    fn speedup_vs_clone(leg: &EngineLeg, clone: &EngineLeg) -> f64 {
        if leg.wall_ms > 0.0 {
            clone.wall_ms / leg.wall_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Measures one engine leg: best wall over `iters` runs, clone
/// counters from the final run (the DSE is deterministic, so every run
/// performs identical work and the counters are stable).
fn measure_engine(iters: u32, mut work: impl FnMut() -> Optimized) -> (EngineLeg, Optimized) {
    let mut best_ms = f64::MAX;
    let mut leg = None;
    let mut result = None;
    for _ in 0..iters.max(1) {
        let clones0 = design_clone_count();
        let copies0 = module_copy_count();
        let t0 = Instant::now();
        let opt = work();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(wall_ms);
        leg = Some(EngineLeg {
            wall_ms: best_ms,
            design_clones: design_clone_count() - clones0,
            module_copies: module_copy_count() - copies0,
        });
        result = Some(opt);
    }
    let mut leg = leg.expect("at least one iteration");
    leg.wall_ms = best_ms;
    (leg, result.expect("at least one iteration"))
}

/// The clone-vs-CoW-vs-journal DSE comparison on one Table-I point.
/// All three legs run the incremental STA engine on a fresh cache, so
/// the only variable is the transform-candidate mechanics.
fn engines_scenario(cus: u32, mhz: f64, iters: u32, tech: &Tech) -> EngineScenario {
    let base = generate(&GgpuConfig::with_cus(cus).expect("valid CU count")).expect("generates");
    let target = Mhz::new(mhz);
    let module_count = base.module_count() as u64;

    let (clone, r_clone) = measure_engine(iters, || {
        optimize_for_clone(&base, tech, target, &StaCache::new()).expect("reachable")
    });
    let (cow, r_cow) = measure_engine(iters, || {
        optimize_for_cow(&base, tech, target, &StaCache::new()).expect("reachable")
    });
    let (journal, r_journal) = measure_engine(iters, || {
        optimize_for_with(&base, tech, target, &StaCache::new()).expect("reachable")
    });

    // The three engines are property-tested bit-identical; assert it
    // again on the measured runs.
    for (name, r) in [("cow", &r_cow), ("clone", &r_clone)] {
        assert_eq!(r_journal.plan, r.plan, "{name} plan diverges");
        assert_eq!(r_journal.trace, r.trace, "{name} trace diverges");
        assert_eq!(
            r_journal.fmax.value().to_bits(),
            r.fmax.value().to_bits(),
            "{name} fmax diverges"
        );
    }
    let candidates = (r_journal.trace.len() - 1) as u64;

    // The refactor's headline accounting claim: the journal performs
    // exactly ONE copy-on-write clone per DSE run (creating the
    // journal's working design) and ZERO clones of any kind per
    // candidate. The clone reference deep-copies the whole design once
    // per candidate plus once up front. Exact equality is meaningful
    // because this comparison runs single-threaded.
    assert_eq!(
        journal.design_clones, 1,
        "journal path must clone exactly once per run (0 per candidate)"
    );
    assert_eq!(
        clone.design_clones,
        candidates + 1,
        "clone path deep-clones once per candidate plus the initial copy"
    );
    assert!(
        clone.module_copies >= (candidates + 1) * module_count,
        "deep clones must copy every module"
    );
    assert_eq!(
        cow.design_clones,
        candidates + 1,
        "CoW path clones (cheaply) once per candidate plus the initial copy"
    );
    assert!(
        journal.module_copies <= cow.module_copies,
        "the journal must materialize no more modules than CoW replay"
    );

    EngineScenario {
        name: format!("dse_engines/{cus}cu@{mhz:.0}"),
        candidates,
        clone,
        cow,
        journal,
    }
}

/// The full `best_within` sweep (24 design points) under both engines.
fn sweep_scenario(iters: u32, tech: &Tech) -> Scenario {
    const MAX_AREA_MM2: f64 = 200.0;
    const MAX_POWER_W: f64 = 50.0;

    let mut best_base = None;
    let baseline = measure(iters, false, StaCache::legacy, |cache| {
        // A fresh planner sharing the measured cache, as production
        // constructs one per sweep.
        let planner = GpuPlanner::new(tech.clone()).with_sta_cache(cache);
        best_base = Some(
            planner
                .best_within(MAX_AREA_MM2, MAX_POWER_W)
                .expect("sweep runs"),
        );
    });

    let mut best_inc = None;
    let incremental = measure(iters, true, StaCache::new, |cache| {
        let planner = GpuPlanner::new(tech.clone()).with_sta_cache(cache);
        best_inc = Some(
            planner
                .best_within(MAX_AREA_MM2, MAX_POWER_W)
                .expect("sweep runs"),
        );
    });

    let (b, i) = (best_base.unwrap(), best_inc.unwrap());
    match (&b, &i) {
        (Some(b), Some(i)) => {
            assert_eq!(b.spec, i.spec, "engines must pick the same winner");
            assert_eq!(b.plan, i.plan, "engines must agree on the winning plan");
        }
        (b, i) => assert_eq!(b.is_some(), i.is_some()),
    }

    Scenario {
        name: "best_within/24pt_sweep".into(),
        baseline,
        incremental,
    }
}

fn json_side(s: &Side) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"sta_queries\": {}, \"sta_computed\": {}, \
         \"sram_raw_compiles\": {}, \"module_hit_rate\": {:.4}}}",
        s.wall_ms, s.sta_queries, s.sta_computed, s.sram_raw_compiles, s.module_hit_rate
    )
}

fn json_engine_leg(l: &EngineLeg) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"design_clones\": {}, \"module_copies\": {}}}",
        l.wall_ms, l.design_clones, l.module_copies
    )
}

fn render_json(scenarios: &[Scenario], engines: &[EngineScenario], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"sta\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"threads\": {},",
        std::env::var("GGPU_THREADS").unwrap_or_else(|_| "0".into())
    );
    out.push_str("  \"scenarios\": [\n");
    for (idx, s) in scenarios.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"baseline\": {}, \"incremental\": {}, \
             \"wall_speedup\": {:.2}, \"sram_compile_reduction\": {}}}",
            s.name,
            json_side(&s.baseline),
            json_side(&s.incremental),
            s.speedup(),
            if s.sram_reduction().is_finite() {
                format!("{:.1}", s.sram_reduction())
            } else {
                format!("\"inf ({}:0)\"", s.baseline.sram_raw_compiles)
            }
        );
        out.push_str(if idx + 1 < scenarios.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"engine_comparison\": [\n");
    for (idx, e) in engines.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"candidates\": {}, \"clone\": {}, \"cow\": {}, \
             \"journal\": {}, \"journal_speedup_vs_clone\": {:.2}, \
             \"cow_speedup_vs_clone\": {:.2}}}",
            e.name,
            e.candidates,
            json_engine_leg(&e.clone),
            json_engine_leg(&e.cow),
            json_engine_leg(&e.journal),
            EngineScenario::speedup_vs_clone(&e.journal, &e.clone),
            EngineScenario::speedup_vs_clone(&e.cow, &e.clone),
        );
        out.push_str(if idx + 1 < engines.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sta.json".into());

    let tech = Tech::l65();
    let mut scenarios = Vec::new();
    let iters: u32 = std::env::var("GGPU_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 25 });

    let points: &[(u32, f64)] = if smoke {
        &[(1, 590.0), (1, 667.0)]
    } else {
        &[(1, 590.0), (1, 667.0), (8, 590.0), (8, 667.0)]
    };
    for &(cus, mhz) in points {
        eprintln!("running optimize_for/{cus}cu@{mhz:.0} ...");
        let s = dse_scenario(cus, mhz, iters, &tech);
        eprintln!(
            "  wall {:.1} ms -> {:.1} ms ({:.2}x), sram compiles {} -> {}",
            s.baseline.wall_ms,
            s.incremental.wall_ms,
            s.speedup(),
            s.baseline.sram_raw_compiles,
            s.incremental.sram_raw_compiles
        );
        scenarios.push(s);
    }

    let mut engines = Vec::new();
    for &(cus, mhz) in points {
        eprintln!("running dse_engines/{cus}cu@{mhz:.0} (clone vs cow vs journal) ...");
        let e = engines_scenario(cus, mhz, iters, &tech);
        eprintln!(
            "  clone {:.1} ms -> cow {:.1} ms -> journal {:.1} ms \
             ({:.2}x vs clone); clones/candidate: clone {}, journal 0",
            e.clone.wall_ms,
            e.cow.wall_ms,
            e.journal.wall_ms,
            EngineScenario::speedup_vs_clone(&e.journal, &e.clone),
            if e.candidates > 0 { 1 } else { 0 },
        );
        engines.push(e);
    }

    if !smoke {
        eprintln!("running best_within/24pt_sweep ...");
        let s = sweep_scenario(iters.min(5), &tech);
        eprintln!(
            "  wall {:.1} ms -> {:.1} ms ({:.2}x), sram compiles {} -> {}",
            s.baseline.wall_ms,
            s.incremental.wall_ms,
            s.speedup(),
            s.baseline.sram_raw_compiles,
            s.incremental.sram_raw_compiles
        );
        scenarios.push(s);
    }

    let json = render_json(&scenarios, &engines, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
