//! Regenerates the paper's **Figs. 3–4**: floorplan layouts of the
//! four physically implemented versions as SVG files with memories
//! coloured by role (CU memories green, memory-controller yellow/pink).

use ggpu_pnr::to_svg;
use ggpu_tech::Tech;
use gpuplanner::{physical_versions, GpuPlanner};
use std::fs;
use std::path::Path;

fn main() {
    let out_dir = Path::new("target/layouts");
    fs::create_dir_all(out_dir).expect("create output directory");
    let planner = GpuPlanner::new(Tech::l65());
    for spec in physical_versions() {
        let planned = planner
            .plan(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.version_name()));
        let implemented = planner
            .implement(&planned)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.version_name()));
        let svg = to_svg(&implemented.layout);
        let path = out_dir.join(format!("{}.svg", spec.version_name().replace('@', "_")));
        fs::write(&path, svg).expect("write svg");
        println!(
            "{}: chip {:.2} mm2, achieved {:.0} -> {}",
            spec.version_name(),
            implemented.layout.floorplan.chip.area().to_mm2(),
            implemented.achieved_clock(),
            path.display()
        );
    }
}
