//! Ablation: the paper's future-work proposal of replicating the
//! general memory controller to rescue the 8-CU 667 MHz layout.
//! Prints achieved clock and area cost with one vs two controllers
//! for every CU count.

use ggpu_bench::ascii_table;
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use gpuplanner::{GpuPlanner, Specification};

fn main() {
    let planner = GpuPlanner::new(Tech::l65());
    let header: Vec<String> = [
        "version",
        "1 GMC: achieved",
        "area mm2",
        "2 GMC: achieved",
        "area mm2",
        "worst route ns (1->2)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for cus in [2u32, 4, 8] {
        let mut cells = vec![format!("{cus}cu@667MHz")];
        let mut worst = Vec::new();
        for replicas in [1u32, 2] {
            let spec = Specification::new(cus, Mhz::new(667.0)).with_memory_controllers(replicas);
            let implemented = planner
                .implement(&planner.plan(&spec).expect("frequency reachable"))
                .expect("implements");
            cells.push(format!("{:.0} MHz", implemented.achieved_clock().value()));
            cells.push(format!(
                "{:.2}",
                implemented.planned.synthesis.stats.total_area().to_mm2()
            ));
            let w = implemented
                .layout
                .cu_route_delays
                .iter()
                .cloned()
                .fold(ggpu_tech::units::Ns::ZERO, ggpu_tech::units::Ns::max);
            worst.push(format!("{:.2}", w.value()));
        }
        cells.push(worst.join(" -> "));
        rows.push(cells);
    }
    println!("Ablation: replicated general memory controller (paper future work)\n");
    println!("{}", ascii_table(&header, &rows));
    println!(
        "The second controller halves the peripheral-CU route delay at the\n\
         cost of duplicated cache/RTM macros — the trade the paper proposes."
    );
}
