//! Tracked performance baseline for the physical-synthesis flow.
//!
//! Two measurements, written to `BENCH_pnr.json` (override with
//! `--out PATH`; `--smoke` runs a reduced grid sized for CI):
//!
//! * **HPWL quality** — legacy shelf packer vs the analytical
//!   electrostatic placer on the same floorplans, at 8/16/32/64 CUs
//!   (the extended geometries are the paper's listed future work).
//!   The analytical placer must reduce the weighted macro
//!   half-perimeter wirelength at 8 CUs — asserted as it measures.
//! * **scratch vs incremental** — a cold [`place_and_route`] per
//!   candidate vs [`IncrementalPnr`]'s delta path re-solving exactly
//!   one dirtied partition (a single-module mutation, the DSE inner
//!   loop's shape). The delta path must be at least 5x faster —
//!   asserted — and its rate is reported as `placements_per_second`,
//!   the number of candidate layouts the DSE loop can evaluate per
//!   second.
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin pnr_bench
//! cargo run --release -p ggpu-bench --bin pnr_bench -- --smoke --out target/BENCH_pnr_smoke.json
//! ```

use ggpu_netlist::module::MemoryRole;
use ggpu_pnr::{
    build_floorplan, macro_hpwl, place_and_route, place_macros_pooled, DensityTargets,
    IncrementalPnr, PlacementDelta, Placer, PnrOptions, Pool,
};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::fmt::Write as _;
use std::time::Instant;

fn config(cus: u32) -> GgpuConfig {
    GgpuConfig {
        compute_units: cus,
        memory_controllers: if cus > 8 { 2 } else { 1 },
        allow_extended_cus: cus > 8,
        ..GgpuConfig::default()
    }
}

fn analytical_options() -> PnrOptions {
    PnrOptions {
        placer: Placer::Analytical,
        ..PnrOptions::default()
    }
}

/// HPWL of both placers on one geometry, plus the analytical placer's
/// cold placement wall-clock (best of `iters`).
#[derive(Debug)]
struct HpwlPoint {
    cus: u32,
    legacy_um: f64,
    analytical_um: f64,
    analytical_wall_ms: f64,
}

impl HpwlPoint {
    fn improvement_pct(&self) -> f64 {
        (1.0 - self.analytical_um / self.legacy_um) * 100.0
    }
}

fn hpwl_point(cus: u32, iters: u32, tech: &Tech) -> HpwlPoint {
    let design = generate(&config(cus)).expect("valid config");
    let fp = build_floorplan(&design, tech, DensityTargets::default()).expect("floorplan");
    let legacy = place_macros_pooled(&design, &fp, tech, &PnrOptions::default(), Pool::global())
        .expect("legacy placement");
    let options = analytical_options();
    let mut best_ms = f64::MAX;
    let mut analytical = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let placed =
            place_macros_pooled(&design, &fp, tech, &options, Pool::global()).expect("analytical");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        analytical = Some(placed);
    }
    let analytical = analytical.expect("at least one iteration");
    HpwlPoint {
        cus,
        legacy_um: macro_hpwl(&fp, &legacy, &options.net_weights).value(),
        analytical_um: macro_hpwl(&fp, &analytical, &options.net_weights).value(),
        analytical_wall_ms: best_ms,
    }
}

/// Scratch-vs-incremental comparison: one dirtied partition per
/// candidate, full layouts out of both paths.
#[derive(Debug)]
struct Incremental {
    scratch_wall_ms: f64,
    delta_wall_ms: f64,
}

impl Incremental {
    fn speedup(&self) -> f64 {
        if self.delta_wall_ms > 0.0 {
            self.scratch_wall_ms / self.delta_wall_ms
        } else {
            f64::INFINITY
        }
    }

    /// Candidate layouts per second the incremental session sustains.
    fn placements_per_second(&self) -> f64 {
        if self.delta_wall_ms > 0.0 {
            1e3 / self.delta_wall_ms
        } else {
            f64::INFINITY
        }
    }
}

fn incremental_scenario(iters: u32, tech: &Tech) -> Incremental {
    let target = Mhz::new(500.0);
    let options = analytical_options();
    let mut design = generate(&config(8)).expect("valid config");
    let gmc = build_floorplan(&design, tech, options.densities)
        .expect("floorplan")
        .gmc()
        .expect("design has a controller")
        .module;
    // Candidate mutations: single-module role changes (fingerprint-
    // visible, geometry-neutral — the cheapest genuine dirty set).
    let roles = [
        MemoryRole::ScratchRam,
        MemoryRole::Fifo,
        MemoryRole::RuntimeMemory,
        MemoryRole::CacheTag,
        MemoryRole::SchedulerState,
        MemoryRole::InstructionRam,
        MemoryRole::RegisterFile,
        MemoryRole::Other,
    ];

    let mut session = IncrementalPnr::new(options);
    session
        .place_and_route(&design, tech, target)
        .expect("warm-up run");

    let mut scratch_best = f64::MAX;
    let mut delta_best = f64::MAX;
    let mut last_pair = None;
    for i in 0..iters.max(1) as usize {
        design.module_mut(gmc).macros[0].role = roles[i % roles.len()];

        let t0 = Instant::now();
        let scratch = place_and_route(&design, tech, target, options).expect("scratch flow");
        scratch_best = scratch_best.min(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        let delta = session
            .place_and_route_delta(&design, tech, target, &PlacementDelta::of(vec![gmc]))
            .expect("delta flow");
        delta_best = delta_best.min(t0.elapsed().as_secs_f64() * 1e3);
        last_pair = Some((scratch, delta));
    }
    let (scratch, delta) = last_pair.expect("at least one iteration");
    assert_eq!(scratch, delta, "delta layout must equal the scratch flow");
    assert_eq!(
        session.stats().undeclared_dirty,
        0,
        "every mutation was declared"
    );

    Incremental {
        scratch_wall_ms: scratch_best,
        delta_wall_ms: delta_best,
    }
}

fn render_json(points: &[HpwlPoint], inc: &Incremental, smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"pnr\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"threads\": {},",
        std::env::var("GGPU_THREADS").unwrap_or_else(|_| "0".into())
    );
    let _ = writeln!(
        out,
        "  \"placements_per_second\": {:.1},",
        inc.placements_per_second()
    );
    out.push_str("  \"hpwl\": [\n");
    for (idx, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cus\": {}, \"legacy_hpwl_um\": {:.0}, \"analytical_hpwl_um\": {:.0}, \
             \"improvement_pct\": {:.1}, \"analytical_wall_ms\": {:.3}}}",
            p.cus,
            p.legacy_um,
            p.analytical_um,
            p.improvement_pct(),
            p.analytical_wall_ms
        );
        out.push_str(if idx + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"incremental\": {{\"scratch_wall_ms\": {:.3}, \"delta_wall_ms\": {:.3}, \
         \"speedup\": {:.2}, \"placements_per_second\": {:.1}}}",
        inc.scratch_wall_ms,
        inc.delta_wall_ms,
        inc.speedup(),
        inc.placements_per_second()
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pnr.json".into());

    let tech = Tech::l65();
    let iters: u32 = std::env::var("GGPU_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 8 });

    let cu_grid: &[u32] = if smoke { &[8, 16] } else { &[8, 16, 32, 64] };
    let mut points = Vec::new();
    for &cus in cu_grid {
        eprintln!("placing {cus} CUs (legacy vs analytical) ...");
        let p = hpwl_point(cus, iters, &tech);
        eprintln!(
            "  HPWL {:.1} mm -> {:.1} mm ({:+.1} %), analytical wall {:.1} ms",
            p.legacy_um / 1e3,
            p.analytical_um / 1e3,
            -p.improvement_pct(),
            p.analytical_wall_ms
        );
        points.push(p);
    }
    let eight = points.iter().find(|p| p.cus == 8).expect("8-CU point");
    assert!(
        eight.analytical_um < eight.legacy_um,
        "analytical HPWL {:.0} um must beat legacy {:.0} um at 8 CUs",
        eight.analytical_um,
        eight.legacy_um
    );

    eprintln!("running scratch vs incremental (8 CUs, one dirty partition) ...");
    let inc = incremental_scenario(iters, &tech);
    eprintln!(
        "  scratch {:.1} ms -> delta {:.1} ms ({:.1}x, {:.1} placements/s)",
        inc.scratch_wall_ms,
        inc.delta_wall_ms,
        inc.speedup(),
        inc.placements_per_second()
    );
    assert!(
        inc.speedup() >= 5.0,
        "incremental re-place must be at least 5x faster than scratch (got {:.2}x)",
        inc.speedup()
    );

    let json = render_json(&points, &inc, smoke);
    std::fs::write(&out_path, &json).expect("write results");
    println!("{json}");
    println!("wrote {out_path}");
}
