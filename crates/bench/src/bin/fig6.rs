//! Regenerates the paper's **Fig. 6**: speed-up over the RISC-V
//! derated by the area ratio. The paper's headline: the 1-CU version
//! wins per area (10.2x at a 6.5x area), the 8-CU version is worst
//! (5.7x best at a 41x area).

use ggpu_bench::{area_ratio_vs_riscv, ascii_table, collect_table3, BENCH_CUS};

fn main() {
    let data = collect_table3();
    let ratios: Vec<f64> = BENCH_CUS.iter().map(|&c| area_ratio_vs_riscv(c)).collect();
    println!("Fig. 6: speed-up derated by area (measured)\n");
    println!(
        "area ratios vs RISC-V: 1cu {:.1}x, 2cu {:.1}x, 4cu {:.1}x, 8cu {:.1}x (paper: 6.5x .. 41x)\n",
        ratios[0], ratios[1], ratios[2], ratios[3]
    );
    let header: Vec<String> = ["kernel", "1cu", "2cu", "4cu", "8cu"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut best_per_cu = [0.0f64; 4];
    for kc in &data {
        let mut row = vec![kc.bench.name.to_string()];
        for i in 0..BENCH_CUS.len() {
            let derated = kc.speedup(i) / ratios[i];
            best_per_cu[i] = best_per_cu[i].max(derated);
            row.push(format!("{:.2}", derated));
        }
        rows.push(row);
    }
    println!("{}", ascii_table(&header, &rows));
    println!(
        "best per area: 1cu {:.2}, 2cu {:.2}, 4cu {:.2}, 8cu {:.2} (paper: 1cu best, 8cu worst)",
        best_per_cu[0], best_per_cu[1], best_per_cu[2], best_per_cu[3]
    );
}
