//! Regenerates the paper's **Table I**: characteristics of the 12
//! G-GPU versions after logic synthesis, with the paper's values for
//! side-by-side comparison.

use ggpu_bench::ascii_table;
use ggpu_tech::Tech;
use gpuplanner::{paper_versions, GpuPlanner};

/// One paper Table-I row: version, total mm², memory mm², #FF, #comb,
/// #mem, leakage mW, dynamic W, total W.
type PaperRow = (&'static str, f64, f64, u64, u64, u64, f64, f64, f64);

/// Paper Table I.
const PAPER: [PaperRow; 12] = [
    (
        "1cu@500MHz",
        4.19,
        2.68,
        119_778,
        127_826,
        51,
        4.62,
        1.97,
        2.055,
    ),
    (
        "1cu@590MHz",
        4.66,
        3.15,
        120_035,
        128_894,
        68,
        4.73,
        2.57,
        2.66,
    ),
    (
        "1cu@667MHz",
        4.77,
        3.26,
        120_035,
        130_802,
        71,
        4.65,
        2.62,
        2.72,
    ),
    (
        "2cu@500MHz",
        7.45,
        4.64,
        229_171,
        214_243,
        93,
        8.54,
        3.63,
        3.77,
    ),
    (
        "2cu@590MHz",
        8.16,
        5.34,
        229_172,
        221_946,
        120,
        8.73,
        4.63,
        4.81,
    ),
    (
        "2cu@667MHz",
        8.27,
        5.45,
        229_172,
        222_028,
        123,
        8.72,
        4.69,
        4.87,
    ),
    (
        "4cu@500MHz",
        13.84,
        8.56,
        437_318,
        387_246,
        177,
        16.07,
        6.88,
        7.14,
    ),
    (
        "4cu@590MHz",
        15.03,
        9.72,
        436_807,
        397_995,
        224,
        16.41,
        8.70,
        9.02,
    ),
    (
        "4cu@667MHz",
        15.15,
        9.83,
        436_807,
        398_124,
        227,
        16.43,
        8.75,
        9.07,
    ),
    (
        "8cu@500MHz",
        26.51,
        16.39,
        852_094,
        714_256,
        345,
        30.79,
        13.33,
        13.86,
    ),
    (
        "8cu@590MHz",
        28.65,
        18.49,
        850_559,
        737_232,
        432,
        31.25,
        16.81,
        17.40,
    ),
    (
        "8cu@667MHz",
        28.69,
        18.60,
        848_511,
        730_506,
        435,
        30.21,
        19.10,
        19.76,
    ),
];

fn main() {
    let planner = GpuPlanner::new(Tech::l65());
    let header: Vec<String> = [
        "version", "mm2", "mem mm2", "#FF", "#comb", "#mem", "leak mW", "dyn W", "tot W",
        "| paper:", "mm2", "mem mm2", "#mem", "tot W",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for spec in paper_versions() {
        let version = planner
            .plan(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.version_name()));
        let s = &version.synthesis;
        let paper = PAPER
            .iter()
            .find(|p| p.0 == spec.version_name())
            .expect("every version is in the paper table");
        rows.push(vec![
            spec.version_name(),
            format!("{:.2}", s.stats.total_area().to_mm2()),
            format!("{:.2}", s.stats.macro_area.to_mm2()),
            s.stats.ff_cells.to_string(),
            s.stats.comb_cells.to_string(),
            s.stats.macro_count.to_string(),
            format!("{:.2}", s.leakage.value()),
            format!("{:.2}", s.dynamic.to_watts()),
            format!("{:.2}", s.total_power().to_watts()),
            "|".to_string(),
            format!("{:.2}", paper.1),
            format!("{:.2}", paper.2),
            paper.5.to_string(),
            format!("{:.2}", paper.8),
        ]);
    }
    println!("Table I: 12 G-GPU versions after logic synthesis (measured vs paper)\n");
    println!("{}", ascii_table(&header, &rows));
}
