//! Shared harness code for regenerating the paper's tables and
//! figures. Each binary in `src/bin/` prints one artifact:
//!
//! | binary    | artifact |
//! |-----------|----------|
//! | `table1`  | Table I — 12 logic-synthesis versions |
//! | `table2`  | Table II — per-layer wirelength of the 4 layouts |
//! | `table3`  | Table III — benchmark cycle counts |
//! | `fig5`    | Fig. 5 — raw speed-up over RISC-V |
//! | `fig6`    | Fig. 6 — speed-up derated by area |
//! | `layouts` | Figs. 3–4 — floorplan SVGs |

pub mod timer;

use ggpu_kernels::{all, scaled_speedup, Bench};
use ggpu_netlist::stats::design_stats;
use ggpu_rtl::{generate_riscv, RiscvConfig};
use ggpu_tech::Tech;
use std::fmt::Write as _;

/// CU counts of the paper's benchmark comparison.
pub const BENCH_CUS: [u32; 4] = [1, 2, 4, 8];

/// Pre-flight static verification of every shipped kernel: the
/// cycle-count harnesses run for minutes, so a kernel edit that would
/// fault in the simulator should fail here, in milliseconds, with the
/// lint report instead. Returns the one-line summary it also prints.
///
/// # Panics
///
/// Panics with the full report if any shipped kernel has a deny-level
/// finding.
pub fn lint_preflight() -> String {
    let reports = ggpu_lint::verify_shipped(&ggpu_lint::LintConfig::new());
    let denials: usize = reports.iter().map(ggpu_lint::Report::denial_count).sum();
    for report in &reports {
        assert_eq!(
            report.denial_count(),
            0,
            "shipped kernel failed static verification:\n{report}"
        );
    }
    let summary = format!(
        "lint preflight: {} kernels, {} denials",
        reports.len(),
        denials
    );
    println!("{summary}");
    summary
}

/// Renders an ASCII table: a header row plus data rows, columns
/// right-aligned and sized to the widest cell.
pub fn ascii_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    fmt_row(&mut out, header);
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Cycle counts of one benchmark row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCycles {
    /// The benchmark.
    pub bench: Bench,
    /// RISC-V cycles at its input size.
    pub riscv: u64,
    /// G-GPU cycles at its input size, for 1/2/4/8 CUs.
    pub gpu: [u64; 4],
}

impl KernelCycles {
    /// Raw speed-up over the RISC-V for the CU-count index `i`
    /// (the paper's pessimistic input-size scaling).
    pub fn speedup(&self, i: usize) -> f64 {
        scaled_speedup(
            self.riscv,
            self.bench.riscv_n,
            self.gpu[i],
            self.bench.gpu_n,
        )
    }
}

/// Runs every benchmark at the paper's input sizes on the RISC-V and
/// on 1/2/4/8-CU G-GPUs, verifying outputs.
///
/// # Panics
///
/// Panics if any simulation faults or produces a wrong result — the
/// harness must not silently report numbers from broken runs.
pub fn collect_table3() -> Vec<KernelCycles> {
    all()
        .into_iter()
        .map(|bench| {
            let riscv = bench
                .run_riscv(bench.riscv_n)
                .unwrap_or_else(|e| panic!("{} riscv: {e}", bench.name))
                .cycles;
            let mut gpu = [0u64; 4];
            for (i, cus) in BENCH_CUS.into_iter().enumerate() {
                gpu[i] = bench
                    .run_gpu(bench.gpu_n, cus)
                    .unwrap_or_else(|e| panic!("{} gpu {cus}cu: {e}", bench.name))
                    .cycles;
            }
            KernelCycles { bench, riscv, gpu }
        })
        .collect()
}

/// Area of the G-GPU with `cus` CUs relative to the RISC-V baseline
/// (Fig. 6's derating denominator), computed from the same technology
/// models.
///
/// # Panics
///
/// Panics if either design fails to generate — both are fixed known
/// configurations.
pub fn area_ratio_vs_riscv(cus: u32) -> f64 {
    let tech = Tech::l65();
    let ggpu = ggpu_rtl::generate(&ggpu_rtl::GgpuConfig::with_cus(cus).expect("1-8 CUs"))
        .expect("valid config");
    let ggpu_area = design_stats(&ggpu, &tech).expect("in range").total_area();
    let riscv = generate_riscv(&RiscvConfig::default());
    let riscv_area = design_stats(&riscv, &tech).expect("in range").total_area();
    ggpu_area / riscv_area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns() {
        let t = ascii_table(
            &["a".into(), "long".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("long"));
    }

    #[test]
    fn area_ratios_match_fig6_scale() {
        // Paper: 1 CU is ~6.5x the RISC-V, 8 CUs ~41x.
        let r1 = area_ratio_vs_riscv(1);
        let r8 = area_ratio_vs_riscv(8);
        assert!((4.0..9.0).contains(&r1), "1-CU ratio {r1}");
        assert!((25.0..55.0).contains(&r8), "8-CU ratio {r8}");
    }

    #[test]
    fn speedup_indexing() {
        let kc = KernelCycles {
            bench: ggpu_kernels::all()[1],
            riscv: 1000,
            gpu: [4000, 2000, 1000, 500],
        };
        // copy: 512 -> 32768 is a 64x scale.
        assert!((kc.speedup(0) - 16.0).abs() < 1e-9);
        assert!((kc.speedup(3) - 128.0).abs() < 1e-9);
    }
}
