//! Criterion-free micro-benchmark harness.
//!
//! The workspace must build with no network access, so the external
//! `criterion` crate is replaced by this self-contained harness: each
//! `[[bench]]` target stays `harness = false` and drives a [`Suite`]
//! directly from `main`. Measurements are wall-clock medians over a
//! fixed iteration budget (scale with `GGPU_BENCH_ITERS`), printed as
//! an aligned table — enough fidelity to track the order-of-magnitude
//! regressions these benches exist to catch.

use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Iterations measured.
    pub iters: u32,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
}

/// A named collection of benchmarks, printed on [`Suite::finish`].
#[derive(Debug)]
pub struct Suite {
    name: &'static str,
    default_iters: u32,
    rows: Vec<Measurement>,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Suite {
    /// A suite with the given default per-bench iteration count
    /// (overridable globally via `GGPU_BENCH_ITERS`).
    pub fn new(name: &'static str, default_iters: u32) -> Self {
        let default_iters = std::env::var("GGPU_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_iters)
            .max(1);
        Self {
            name,
            default_iters,
            rows: Vec::new(),
        }
    }

    /// Times `f` over the suite's iteration budget (plus one warm-up
    /// iteration) and records the result.
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) {
        let iters = self.default_iters;
        std::hint::black_box(f()); // warm-up
        let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / iters;
        let row = Measurement {
            name: name.into(),
            iters,
            median,
            min,
            mean,
        };
        eprintln!(
            "  {:<40} median {:>12}  (n={})",
            row.name,
            fmt_duration(row.median),
            row.iters
        );
        self.rows.push(row);
    }

    /// The measurements so far.
    pub fn rows(&self) -> &[Measurement] {
        &self.rows
    }

    /// Prints the result table.
    pub fn finish(self) {
        println!("\n== {} ==", self.name);
        println!(
            "{:<40} {:>7} {:>14} {:>14} {:>14}",
            "benchmark", "iters", "median", "min", "mean"
        );
        for r in &self.rows {
            println!(
                "{:<40} {:>7} {:>14} {:>14} {:>14}",
                r.name,
                r.iters,
                fmt_duration(r.median),
                fmt_duration(r.min),
                fmt_duration(r.mean)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut s = Suite::new("t", 3);
        s.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(s.rows().len(), 1);
        let r = &s.rows()[0];
        assert!(r.min <= r.median);
        assert!(r.median > Duration::ZERO);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
