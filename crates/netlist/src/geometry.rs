//! Unified memory geometry: structural bank groups.
//!
//! Every layer of the flow used to encode memory shape its own way —
//! name-stem matching in the synthesis transforms, a duplicated
//! sibling scan in the planner's plan replay, substring aggregation in
//! the fault maps, and an unrelated line/bank model in the simulator.
//! This module is the one shared abstraction: the macros implementing
//! the banks of one *logical* memory carry the same structural
//! [`BankGroupId`], and [`MemGeometry`] summarizes the group's shape
//! (bank count, ports per bank, interleave stride) for any consumer.
//!
//! Group ids are assigned by the RTL generator (and propagated by the
//! synthesis transforms), so membership is a structural fact of the
//! netlist — a user macro whose *name* happens to look like a sibling
//! bank (`"lsu_b12"` next to `"lsu_b0"`/`"lsu_b1"`) can never be
//! misgrouped the way name-stem matching allowed.

use crate::module::{MacroInst, Module};
use std::fmt;

/// Structural identity of one logical memory's bank group, unique
/// within its module. Two macros belong to the same logical memory iff
/// they carry the same id — this replaces name-stem matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankGroupId(pub u32);

impl fmt::Display for BankGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The shape of one banked memory: how many physical banks implement
/// the logical word space, how they interleave, and the per-bank port
/// budget. Derived from a bank group's members, never stored — the
/// macros stay the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    /// Number of physical banks.
    pub banks: u32,
    /// Ports on each bank (1 single-ported, 2 dual-ported).
    pub ports_per_bank: u32,
    /// Interleave stride in words: word `w` lives in bank
    /// `(w / interleave_words) % banks`. `1` is word-interleaved —
    /// the layout every banking transform in this flow produces.
    pub interleave_words: u32,
    /// Words held by each bank.
    pub words_per_bank: u32,
    /// Data bits per word.
    pub bits: u32,
}

impl MemGeometry {
    /// The geometry of an unbanked memory: one bank holding every word.
    pub fn flat(words: u32, bits: u32, ports: u32) -> Self {
        Self {
            banks: 1,
            ports_per_bank: ports,
            interleave_words: 1,
            words_per_bank: words,
            bits,
        }
    }

    /// The bank serving logical word `word`.
    pub fn bank_of_word(&self, word: u32) -> u32 {
        (word / self.interleave_words.max(1)) % self.banks.max(1)
    }

    /// Total logical words across all banks.
    pub fn total_words(&self) -> u64 {
        u64::from(self.banks) * u64::from(self.words_per_bank)
    }

    /// Total data bits across all banks.
    pub fn total_bits(&self) -> u64 {
        self.total_words() * u64::from(self.bits)
    }

    /// Total ports across all banks — the concurrency the memory
    /// offers one wavefront beat.
    pub fn total_ports(&self) -> u32 {
        self.banks * self.ports_per_bank
    }
}

impl fmt::Display for MemGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}w x{}b ({}p/bank)",
            self.banks, self.words_per_bank, self.bits, self.ports_per_bank
        )
    }
}

impl Module {
    /// The bank group of the named macro, if it carries one.
    pub fn bank_group_of(&self, macro_name: &str) -> Option<BankGroupId> {
        self.find_macro(macro_name).and_then(|m| m.bank_group)
    }

    /// The members of `group`, in macro order.
    pub fn bank_group_members(&self, group: BankGroupId) -> Vec<&MacroInst> {
        self.macros
            .iter()
            .filter(|m| m.bank_group == Some(group))
            .collect()
    }

    /// A fresh group id, greater than every id used in this module.
    pub fn next_bank_group_id(&self) -> BankGroupId {
        BankGroupId(
            self.macros
                .iter()
                .filter_map(|m| m.bank_group)
                .map(|g| g.0 + 1)
                .max()
                .unwrap_or(0),
        )
    }

    /// The geometry of `group`, derived from its members: bank count is
    /// the member count, per-bank words/bits/ports come from the first
    /// member (banking transforms keep members homogeneous), and the
    /// interleave is word-granular. `None` for an empty group.
    pub fn bank_group_geometry(&self, group: BankGroupId) -> Option<MemGeometry> {
        let members = self.bank_group_members(group);
        let first = members.first()?;
        Some(MemGeometry {
            banks: members.len() as u32,
            ports_per_bank: first.config.port_count(),
            interleave_words: 1,
            words_per_bank: first.config.words,
            bits: first.config.bits,
        })
    }

    /// The structural siblings of `target`: the members of its bank
    /// group that share its exact SRAM configuration, or the macro
    /// alone when it carries no group id. This is the sibling set the
    /// memory transforms operate on — membership comes from the
    /// structural id, never from the instance name.
    pub fn sibling_macro_names(&self, target: &MacroInst) -> Vec<String> {
        match target.bank_group {
            Some(group) => self
                .macros
                .iter()
                .filter(|m| m.bank_group == Some(group) && m.config == target.config)
                .map(|m| m.name.clone())
                .collect(),
            None => vec![target.name.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::MemoryRole;
    use ggpu_tech::sram::SramConfig;

    fn bank(name: &str, group: Option<u32>) -> MacroInst {
        let m = MacroInst::new(
            name,
            SramConfig::single(64, 32),
            MemoryRole::ScratchRam,
            0.5,
        );
        match group {
            Some(g) => m.with_bank_group(BankGroupId(g)),
            None => m,
        }
    }

    #[test]
    fn geometry_summarizes_a_group() {
        let mut m = Module::new("cu");
        for i in 0..4 {
            m.macros.push(bank(&format!("lram{i}"), Some(1)));
        }
        m.macros.push(bank("scratch", None));
        let g = m.bank_group_geometry(BankGroupId(1)).unwrap();
        assert_eq!(g.banks, 4);
        assert_eq!(g.words_per_bank, 64);
        assert_eq!(g.bits, 32);
        assert_eq!(g.ports_per_bank, 1);
        assert_eq!(g.total_words(), 256);
        assert_eq!(g.total_bits(), 256 * 32);
        assert_eq!(g.total_ports(), 4);
        assert!(m.bank_group_geometry(BankGroupId(9)).is_none());
    }

    #[test]
    fn word_interleave_maps_words_round_robin() {
        let g = MemGeometry {
            banks: 4,
            ports_per_bank: 1,
            interleave_words: 1,
            words_per_bank: 64,
            bits: 32,
        };
        assert_eq!(g.bank_of_word(0), 0);
        assert_eq!(g.bank_of_word(5), 1);
        assert_eq!(g.bank_of_word(7), 3);
        let flat = MemGeometry::flat(256, 32, 2);
        assert_eq!(flat.banks, 1);
        assert_eq!(flat.bank_of_word(123), 0);
        assert_eq!(flat.total_ports(), 2);
    }

    #[test]
    fn siblings_come_from_structure_not_names() {
        let mut m = Module::new("cu");
        m.macros.push(bank("lsu_b0", Some(3)));
        m.macros.push(bank("lsu_b1", Some(3)));
        // Same config, sibling-looking name, but no group id: a
        // different logical memory.
        m.macros.push(bank("lsu_b12", None));
        let target = m.find_macro("lsu_b0").unwrap().clone();
        assert_eq!(m.sibling_macro_names(&target), vec!["lsu_b0", "lsu_b1"]);
        let lone = m.find_macro("lsu_b12").unwrap().clone();
        assert_eq!(m.sibling_macro_names(&lone), vec!["lsu_b12"]);
    }

    #[test]
    fn config_mismatch_excludes_a_member_from_siblings() {
        let mut m = Module::new("cu");
        m.macros.push(bank("a0", Some(0)));
        m.macros.push(bank("a1", Some(0)));
        let odd = MacroInst::new("a2", SramConfig::dual(64, 32), MemoryRole::ScratchRam, 0.5)
            .with_bank_group(BankGroupId(0));
        m.macros.push(odd);
        let target = m.find_macro("a0").unwrap().clone();
        assert_eq!(m.sibling_macro_names(&target), vec!["a0", "a1"]);
    }

    #[test]
    fn next_group_id_is_fresh() {
        let mut m = Module::new("cu");
        assert_eq!(m.next_bank_group_id(), BankGroupId(0));
        m.macros.push(bank("x0", Some(2)));
        m.macros.push(bank("y0", Some(7)));
        m.macros.push(bank("z", None));
        assert_eq!(m.next_bank_group_id(), BankGroupId(8));
    }
}
