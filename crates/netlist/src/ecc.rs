//! Error-protection policy for a design's SRAM macros.
//!
//! The netlist records *what* memories exist ([`MacroInst`]); an
//! [`EccPolicy`] records *how* each architectural role is protected
//! against soft errors. The two are kept separate on purpose:
//! [`MacroInst`]'s structural hash participates in the incremental-STA
//! fingerprints, so protection (a planner-level concern that only
//! widens words at compile time) must not perturb netlist identity.
//!
//! The policy is consumed by
//!
//! * `ggpu-lint`'s N008 coverage check (macros left at
//!   [`EccScheme::None`] under a resilience target),
//! * `ggpu-fault`'s injection engine (which ECC model guards each
//!   injection site), and
//! * `gpuplanner`'s datasheet / frequency-map resilience columns.

use crate::module::MemoryRole;
use ggpu_tech::sram::EccScheme;
use std::collections::BTreeMap;
use std::fmt;

/// Maps every [`MemoryRole`] to the [`EccScheme`] protecting macros of
/// that role. Roles without an explicit entry fall back to `default`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EccPolicy {
    /// Scheme applied to roles with no explicit override.
    pub default: EccScheme,
    /// Per-role overrides (deterministically ordered for stable
    /// reports).
    pub per_role: BTreeMap<String, EccScheme>,
}

impl EccPolicy {
    /// Policy protecting every role with the same `scheme`.
    pub fn uniform(scheme: EccScheme) -> Self {
        Self {
            default: scheme,
            per_role: BTreeMap::new(),
        }
    }

    /// Policy with no protection anywhere (every site injectable and
    /// silent) — also [`EccPolicy::default`].
    pub fn unprotected() -> Self {
        Self::uniform(EccScheme::None)
    }

    /// Overrides the scheme for one role (builder-style).
    pub fn with_role(mut self, role: MemoryRole, scheme: EccScheme) -> Self {
        self.per_role.insert(role.to_string(), scheme);
        self
    }

    /// The scheme protecting macros of `role`.
    pub fn scheme_for(&self, role: MemoryRole) -> EccScheme {
        self.per_role
            .get(&role.to_string())
            .copied()
            .unwrap_or(self.default)
    }

    /// `true` if no role resolves to a protecting scheme — i.e. the
    /// whole design is exposed.
    pub fn is_unprotected(&self) -> bool {
        self.default == EccScheme::None && self.per_role.values().all(|s| *s == EccScheme::None)
    }

    /// Parses the [`fmt::Display`] form back into a policy.
    ///
    /// Accepted inputs: a bare scheme name (`"secded"` — shorthand for
    /// a uniform policy) or a comma-separated assignment list with an
    /// optional `default=` entry and role names as rendered by
    /// [`MemoryRole`]'s `Display` (`"default=parity,cache-data=none"`).
    /// Round-trips with `Display` exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparseable token. Role
    /// names are not validated against the `MemoryRole` enum (it is
    /// `#[non_exhaustive]`); unknown roles simply never match a macro.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(scheme) = EccScheme::parse(s) {
            return Ok(Self::uniform(scheme));
        }
        let mut policy = Self::unprotected();
        for tok in s.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected `role=scheme`, got `{tok}`"))?;
            let scheme = EccScheme::parse(val.trim())
                .ok_or_else(|| format!("unknown ECC scheme `{}` in `{tok}`", val.trim()))?;
            if key.trim() == "default" {
                policy.default = scheme;
            } else {
                policy.per_role.insert(key.trim().to_string(), scheme);
            }
        }
        Ok(policy)
    }
}

impl fmt::Display for EccPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "default={}", self.default)?;
        for (role, scheme) in &self.per_role {
            write!(f, ",{role}={scheme}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_covers_all_roles() {
        let p = EccPolicy::uniform(EccScheme::SecDed);
        assert_eq!(p.scheme_for(MemoryRole::RegisterFile), EccScheme::SecDed);
        assert_eq!(p.scheme_for(MemoryRole::Other), EccScheme::SecDed);
        assert!(!p.is_unprotected());
    }

    #[test]
    fn per_role_override_wins() {
        let p = EccPolicy::uniform(EccScheme::Parity)
            .with_role(MemoryRole::RegisterFile, EccScheme::SecDed)
            .with_role(MemoryRole::CacheTag, EccScheme::None);
        assert_eq!(p.scheme_for(MemoryRole::RegisterFile), EccScheme::SecDed);
        assert_eq!(p.scheme_for(MemoryRole::CacheTag), EccScheme::None);
        assert_eq!(p.scheme_for(MemoryRole::ScratchRam), EccScheme::Parity);
    }

    #[test]
    fn unprotected_detection() {
        assert!(EccPolicy::unprotected().is_unprotected());
        assert!(EccPolicy::default().is_unprotected());
        let p = EccPolicy::unprotected().with_role(MemoryRole::ScratchRam, EccScheme::Parity);
        assert!(!p.is_unprotected());
        let all_none =
            EccPolicy::uniform(EccScheme::None).with_role(MemoryRole::Fifo, EccScheme::None);
        assert!(all_none.is_unprotected());
    }

    #[test]
    fn parse_round_trips_display() {
        let p = EccPolicy::uniform(EccScheme::Parity)
            .with_role(MemoryRole::ScratchRam, EccScheme::SecDed)
            .with_role(MemoryRole::CacheData, EccScheme::None);
        assert_eq!(EccPolicy::parse(&p.to_string()), Ok(p));
        assert_eq!(
            EccPolicy::parse("secded"),
            Ok(EccPolicy::uniform(EccScheme::SecDed))
        );
        assert_eq!(
            EccPolicy::parse("register-file=parity"),
            Ok(EccPolicy::unprotected().with_role(MemoryRole::RegisterFile, EccScheme::Parity))
        );
        assert!(EccPolicy::parse("default=bogus").is_err());
        assert!(EccPolicy::parse("nonsense").is_err());
    }

    #[test]
    fn display_is_deterministic() {
        let p = EccPolicy::uniform(EccScheme::Parity)
            .with_role(MemoryRole::ScratchRam, EccScheme::SecDed)
            .with_role(MemoryRole::CacheData, EccScheme::None);
        assert_eq!(
            p.to_string(),
            "default=parity,cache-data=none,scratch-ram=secded"
        );
    }
}
