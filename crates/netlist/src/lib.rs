//! Structural netlist intermediate representation for the G-GPU flow.
//!
//! A [`design::Design`] is an arena of [`module::Module`]s forming a
//! DAG under instantiation. Modules hold run-length-encoded standard
//! cell populations ([`module::CellGroup`]), memory macros
//! ([`module::MacroInst`]) and representative timing paths
//! ([`timing::TimingPath`]) — the three things the synthesis and
//! physical-design models consume.
//!
//! # Example
//!
//! ```
//! use ggpu_netlist::design::Design;
//! use ggpu_netlist::module::{CellGroup, Module};
//! use ggpu_netlist::stats::design_stats;
//! use ggpu_tech::stdcell::CellClass;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut design = Design::new("demo");
//! let top = design.add_module(
//!     Module::new("top").with_group(CellGroup::new("regs", CellClass::Dff, 128, 0.3)),
//! );
//! design.set_top(top);
//! design.validate()?;
//! let stats = design_stats(&design, &Tech::l65())?;
//! assert_eq!(stats.ff_cells, 128);
//! # Ok(())
//! # }
//! ```

pub mod design;
pub mod ecc;
pub mod export;
pub mod geometry;
pub mod ids;
pub mod module;
pub mod stats;
pub mod timing;

pub use design::{design_clone_count, module_copy_count, Design, MacroIter, ModuleSnapshot};
pub use ecc::EccPolicy;
pub use export::to_structural_verilog;
pub use geometry::{BankGroupId, MemGeometry};
pub use ids::ModuleId;
pub use module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
pub use stats::{design_stats, NetlistStats};
pub use timing::{LogicStage, PathEndpoint, TimingPath};
