//! The design arena: a DAG of modules with a designated top.

use crate::ids::ModuleId;
use crate::module::{MacroInst, Module};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide count of [`Design::clone`] / [`Design::deep_clone`]
/// invocations. Test/bench instrumentation only — see
/// [`design_clone_count`].
static DESIGN_CLONES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of per-module deep copies: copy-on-write breaks
/// in [`Design::module_mut`] plus the forced copies of
/// [`Design::deep_clone`]. See [`module_copy_count`].
static MODULE_COPIES: AtomicU64 = AtomicU64::new(0);

/// Cumulative number of design clones (`clone` and `deep_clone`) in
/// this process. Monotone; meant for *relative* measurements in
/// single-threaded harnesses (the DSE benches assert the journal path
/// performs zero clones per candidate). Parallel test runners share
/// the counter, so tests should only assert deltas `>=` an expected
/// floor, never exact values.
pub fn design_clone_count() -> u64 {
    DESIGN_CLONES.load(Ordering::Relaxed)
}

/// Cumulative number of module deep copies in this process: every time
/// copy-on-write actually copied a shared module ([`Design::module_mut`]
/// on a module shared with another design) or [`Design::deep_clone`]
/// forced copies. The same caveats as [`design_clone_count`] apply.
pub fn module_copy_count() -> u64 {
    MODULE_COPIES.load(Ordering::Relaxed)
}

/// A complete design: an arena of modules forming a DAG under
/// instantiation, with one top module.
///
/// Modules are stored behind [`Arc`] with **copy-on-write** semantics:
/// [`Design::clone`] is O(module count) pointer bumps, and a cloned
/// design shares every module (and its cached fingerprint) with its
/// origin until [`Design::module_mut`] breaks the sharing for exactly
/// the module being mutated. This is what makes design-space
/// exploration variants cheap: a variant that touched one module deep
/// copies one module.
///
/// ```
/// use ggpu_netlist::design::Design;
/// use ggpu_netlist::module::Module;
///
/// let mut design = Design::new("demo");
/// let leaf = design.add_module(Module::new("leaf"));
/// let mut top = Module::new("top");
/// top.children.push(ggpu_netlist::module::Instance {
///     name: "u0".into(),
///     module: leaf,
/// });
/// let top = design.add_module(top);
/// design.set_top(top);
/// assert!(design.validate().is_ok());
/// ```
pub struct Design {
    name: String,
    modules: Vec<Arc<Module>>,
    top: Option<ModuleId>,
    /// Lazily computed structural fingerprint per module, parallel to
    /// `modules`. A slot is filled on first demand
    /// ([`Design::module_fingerprint`]) and invalidated whenever the
    /// module is borrowed mutably ([`Design::module_mut`]). Cloning a
    /// design clones the filled slots — a fingerprint is a pure
    /// function of module content, which cloning preserves — so a DSE
    /// variant derived by clone-then-mutate re-hashes only the modules
    /// it actually touched. Excluded from `PartialEq`/`Debug`/`Hash`:
    /// it is a cache, not part of the design's identity.
    fp_cache: Vec<OnceLock<u64>>,
}

impl Clone for Design {
    /// Copy-on-write clone: O(module count) `Arc` bumps, no module
    /// content is copied. Bumps the process-wide
    /// [`design_clone_count`].
    fn clone(&self) -> Self {
        DESIGN_CLONES.fetch_add(1, Ordering::Relaxed);
        Self {
            name: self.name.clone(),
            modules: self.modules.clone(),
            top: self.top,
            fp_cache: self.fp_cache.clone(),
        }
    }
}

/// Equality is structural: name, modules and top. The fingerprint
/// cache never participates — two designs with identical contents are
/// equal regardless of which fingerprints happen to be computed.
impl PartialEq for Design {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.modules == other.modules && self.top == other.top
    }
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `Arc<Module>` renders exactly like `Module`, so this output
        // (and the legacy Debug-string fingerprint derived from it) is
        // byte-identical to the pre-CoW representation.
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("modules", &self.modules)
            .field("top", &self.top)
            .finish()
    }
}

/// Structural hash consistent with `PartialEq` (name, modules, top);
/// module contents are folded in via their cached fingerprints, so
/// hashing a warm design is O(module count), not O(design size).
impl Hash for Design {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        state.write_usize(self.modules.len());
        for id in self.module_ids() {
            state.write_u64(self.module_fingerprint(id));
        }
        self.top.hash(state);
    }
}

/// Structural problems detected by [`Design::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateDesignError {
    /// No top module was set.
    MissingTop,
    /// A child instance refers to a module id not in the arena.
    DanglingChild {
        /// The parent module's name.
        parent: String,
        /// The offending instance name.
        instance: String,
    },
    /// The instantiation graph contains a cycle through this module.
    InstantiationCycle(String),
    /// Two modules share a name.
    DuplicateModuleName(String),
    /// Two children of one module share an instance name.
    DuplicateInstanceName {
        /// The parent module's name.
        parent: String,
        /// The duplicated instance name.
        instance: String,
    },
    /// Two macros of one module share an instance name.
    DuplicateMacroName {
        /// The owning module's name.
        module: String,
        /// The duplicated macro name.
        name: String,
    },
}

impl fmt::Display for ValidateDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateDesignError::MissingTop => f.write_str("design has no top module"),
            ValidateDesignError::DanglingChild { parent, instance } => {
                write!(
                    f,
                    "instance {instance} in {parent} refers to a missing module"
                )
            }
            ValidateDesignError::InstantiationCycle(m) => {
                write!(f, "instantiation cycle through module {m}")
            }
            ValidateDesignError::DuplicateModuleName(m) => {
                write!(f, "duplicate module name {m}")
            }
            ValidateDesignError::DuplicateInstanceName { parent, instance } => {
                write!(f, "duplicate instance name {instance} in {parent}")
            }
            ValidateDesignError::DuplicateMacroName { module, name } => {
                write!(f, "duplicate macro name {name} in {module}")
            }
        }
    }
}

impl Error for ValidateDesignError {}

/// The saved state of one module slot: the module's shared content
/// plus its fingerprint-cache slot, captured by
/// [`Design::snapshot_module`]. Restoring a snapshot
/// ([`Design::restore_module`]) is O(1) — it reinstates the original
/// `Arc` (and the fingerprint that was cached for it), so a
/// snapshot/mutate/restore round-trip is *bit-identical*, shared
/// pointers and all. This is the primitive the transactional transform
/// journal builds `revert` on.
#[derive(Debug, Clone)]
pub struct ModuleSnapshot {
    id: ModuleId,
    module: Arc<Module>,
    fp: OnceLock<u64>,
}

impl ModuleSnapshot {
    /// The module slot this snapshot belongs to.
    pub fn id(&self) -> ModuleId {
        self.id
    }
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            modules: Vec::new(),
            top: None,
            fp_cache: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design (used when the DSE derives variants).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a module to the arena and returns its id.
    pub fn add_module(&mut self, module: Module) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(Arc::new(module));
        self.fp_cache.push(OnceLock::new());
        id
    }

    /// Designates the top module.
    pub fn set_top(&mut self, id: ModuleId) {
        assert!(id.index() < self.modules.len(), "top id out of range");
        self.top = Some(id);
    }

    /// The top module id.
    ///
    /// # Panics
    ///
    /// Panics if no top was set; call [`Design::validate`] first when
    /// handling untrusted designs.
    pub fn top(&self) -> ModuleId {
        self.top.expect("design has no top module")
    }

    /// Borrows a module.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Mutably borrows a module.
    ///
    /// Copy-on-write: if the module is shared with another design (or
    /// snapshot), its content is deep copied first — exactly one
    /// module, never the whole design. Conservatively invalidates the
    /// module's cached fingerprint: any mutable access is assumed to
    /// change content (re-hashing an unchanged module is cheap;
    /// serving a stale fingerprint would poison every downstream
    /// content-addressed cache).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut Module {
        let slot = &mut self.modules[id.index()];
        if Arc::strong_count(slot) > 1 {
            MODULE_COPIES.fetch_add(1, Ordering::Relaxed);
        }
        self.fp_cache[id.index()] = OnceLock::new();
        Arc::make_mut(slot)
    }

    /// A clone that forces a deep copy of every module, reproducing
    /// the pre-copy-on-write clone cost (O(design size)). The content
    /// is identical to [`Design::clone`]; only the sharing differs.
    /// Retained as the tracked benchmark baseline for the transform
    /// journal — production code should never need it.
    pub fn deep_clone(&self) -> Self {
        DESIGN_CLONES.fetch_add(1, Ordering::Relaxed);
        MODULE_COPIES.fetch_add(self.modules.len() as u64, Ordering::Relaxed);
        Self {
            name: self.name.clone(),
            modules: self
                .modules
                .iter()
                .map(|m| Arc::new(Module::clone(m)))
                .collect(),
            top: self.top,
            fp_cache: self.fp_cache.clone(),
        }
    }

    /// Number of module slots whose content is *shared* (same `Arc`)
    /// with `other`, compared slot-by-slot. Diagnostic for
    /// copy-on-write effectiveness: a fresh clone shares everything; a
    /// clone that mutated one module shares `module_count() - 1`.
    pub fn shared_modules_with(&self, other: &Design) -> usize {
        self.modules
            .iter()
            .zip(&other.modules)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Captures the current state of one module slot (content +
    /// cached fingerprint) as an O(1) [`ModuleSnapshot`]. Restoring it
    /// with [`Design::restore_module`] reinstates this exact state
    /// bit-for-bit.
    pub fn snapshot_module(&self, id: ModuleId) -> ModuleSnapshot {
        ModuleSnapshot {
            id,
            module: Arc::clone(&self.modules[id.index()]),
            fp: self.fp_cache[id.index()].clone(),
        }
    }

    /// Restores a module slot from a snapshot taken on this design (or
    /// a design sharing the same arena layout, e.g. a clone). O(1):
    /// the original `Arc` and fingerprint slot are put back, so
    /// sharing relationships and cached fingerprints round-trip
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's id is out of range for this arena.
    pub fn restore_module(&mut self, snapshot: ModuleSnapshot) {
        let idx = snapshot.id.index();
        self.modules[idx] = snapshot.module;
        self.fp_cache[idx] = snapshot.fp;
    }

    /// The structural fingerprint of one module: a 64-bit hash of its
    /// full contents (name, cell groups, macros, children, timing
    /// paths — floats by bit pattern). Computed lazily and cached;
    /// repeated calls on an unmutated module are a single atomic load.
    ///
    /// Deterministic across processes and designs: two modules with
    /// bit-identical contents fingerprint equal wherever they live,
    /// which is what lets the incremental STA engine share timed
    /// results between the 24 sweep points of a design-space search.
    pub fn module_fingerprint(&self, id: ModuleId) -> u64 {
        *self.fp_cache[id.index()].get_or_init(|| {
            let mut h = DefaultHasher::new();
            self.modules[id.index()].hash(&mut h);
            h.finish()
        })
    }

    /// The structural fingerprint of the whole design: module count,
    /// every per-module fingerprint in arena order, and the top id.
    ///
    /// The design *name* is deliberately excluded — timing, synthesis
    /// and power are pure functions of structure, and the flow renames
    /// designs (`ggpu_1cu_590mhz`, …) after optimization; including
    /// the name would only split cache entries that must agree.
    ///
    /// Replaces the old `Debug`-string hashing, which formatted the
    /// entire design (O(design size)) on every cache probe; on a warm
    /// fingerprint cache this is O(module count).
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        h.write_usize(self.modules.len());
        for id in self.module_ids() {
            h.write_u64(self.module_fingerprint(id));
        }
        match self.top {
            Some(t) => h.write_u64(t.index() as u64 + 1),
            None => h.write_u64(0),
        }
        h.finish()
    }

    /// Finds a module by type name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId::from_index)
    }

    /// All module ids in arena order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len()).map(ModuleId::from_index)
    }

    /// Number of modules in the arena.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Checks structural invariants: a top exists, all children
    /// resolve, names are unique, and instantiation is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), ValidateDesignError> {
        if self.top.is_none() {
            return Err(ValidateDesignError::MissingTop);
        }
        let mut seen_names: HashMap<&str, ()> = HashMap::new();
        for module in &self.modules {
            if seen_names.insert(&module.name, ()).is_some() {
                return Err(ValidateDesignError::DuplicateModuleName(
                    module.name.clone(),
                ));
            }
            let mut inst_names: HashMap<&str, ()> = HashMap::new();
            for child in &module.children {
                if child.module.index() >= self.modules.len() {
                    return Err(ValidateDesignError::DanglingChild {
                        parent: module.name.clone(),
                        instance: child.name.clone(),
                    });
                }
                if inst_names.insert(&child.name, ()).is_some() {
                    return Err(ValidateDesignError::DuplicateInstanceName {
                        parent: module.name.clone(),
                        instance: child.name.clone(),
                    });
                }
            }
            let mut macro_names: HashMap<&str, ()> = HashMap::new();
            for m in &module.macros {
                if macro_names.insert(&m.name, ()).is_some() {
                    return Err(ValidateDesignError::DuplicateMacroName {
                        module: module.name.clone(),
                        name: m.name.clone(),
                    });
                }
            }
        }
        // Cycle check: iterative DFS with colouring and an explicit
        // frame stack (`(module, next child)`), so arbitrarily deep
        // hierarchies cannot overflow the call stack. The traversal
        // order matches the recursive formulation exactly: descend
        // fully into a child before considering its next sibling.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.modules.len()];
        let mut stack: Vec<(ModuleId, usize)> = Vec::new();
        for root in self.module_ids() {
            if colour[root.index()] != Colour::White {
                continue;
            }
            colour[root.index()] = Colour::Grey;
            stack.push((root, 0));
            while let Some(&(id, next_child)) = stack.last() {
                let children = &self.module(id).children;
                if next_child < children.len() {
                    stack.last_mut().expect("frame exists").1 += 1;
                    let child = children[next_child].module;
                    match colour[child.index()] {
                        Colour::Black => {}
                        Colour::Grey => {
                            return Err(ValidateDesignError::InstantiationCycle(
                                self.module(child).name.clone(),
                            ));
                        }
                        Colour::White => {
                            colour[child.index()] = Colour::Grey;
                            stack.push((child, 0));
                        }
                    }
                } else {
                    colour[id.index()] = Colour::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Visits every instance in the hierarchy under the top module,
    /// depth-first, yielding `(hierarchical_path, module_id)` pairs.
    /// The top module itself is visited with an empty path.
    ///
    /// Iterative (explicit frame stack), so designs with extremely
    /// deep hierarchies — e.g. `allow_extended_cus` configurations —
    /// cannot overflow the call stack.
    pub fn visit_instances<F: FnMut(&str, ModuleId)>(&self, mut f: F) {
        // Frame: (module, next child to descend into, path length up
        // to and including this module's own instance name).
        let mut path = String::new();
        let top = self.top();
        f(&path, top);
        let mut stack: Vec<(ModuleId, usize, usize)> = vec![(top, 0, 0)];
        while let Some(&(id, next_child, path_len)) = stack.last() {
            let children = &self.module(id).children;
            if next_child < children.len() {
                stack.last_mut().expect("frame exists").1 += 1;
                let child = &children[next_child];
                path.truncate(path_len);
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(&child.name);
                f(&path, child.module);
                stack.push((child.module, 0, path.len()));
            } else {
                stack.pop();
            }
        }
    }

    /// Iterates every macro instance under the top module with its
    /// full hierarchical path (`"cu0/pe3/rf_bank2"`), pre-order:
    /// a module's own macros before its children's.
    ///
    /// Lazy and allocation-light: the macro itself is *borrowed* (the
    /// seed's `all_macros` cloned every `MacroInst` into a fresh `Vec`
    /// on each call — an allocation storm when probed per DSE
    /// candidate); only the hierarchical path `String` is built per
    /// item. The traversal uses an explicit stack, so hierarchy depth
    /// is bounded by memory, not the call stack.
    pub fn all_macros(&self) -> MacroIter<'_> {
        let top = self.top();
        MacroIter {
            design: self,
            path: String::new(),
            stack: vec![MacroFrame {
                id: top,
                next_macro: 0,
                next_child: 0,
                path_len: 0,
            }],
        }
    }

    /// Counts how many times each module is instantiated under the top
    /// (the top itself counts once). Modules unreachable from the top
    /// have multiplicity zero.
    ///
    /// Iterative (explicit work stack): hierarchy depth cannot
    /// overflow the call stack.
    pub fn multiplicities(&self) -> Vec<u64> {
        let mut mult = vec![0u64; self.modules.len()];
        let mut stack = vec![self.top()];
        while let Some(id) = stack.pop() {
            mult[id.index()] += 1;
            for child in &self.module(id).children {
                stack.push(child.module);
            }
        }
        mult
    }
}

/// One frame of [`MacroIter`]'s explicit traversal stack.
#[derive(Clone, Copy)]
struct MacroFrame {
    id: ModuleId,
    next_macro: usize,
    next_child: usize,
    path_len: usize,
}

/// Iterator over every macro instantiation under a design's top, with
/// hierarchical paths. Produced by [`Design::all_macros`].
pub struct MacroIter<'a> {
    design: &'a Design,
    path: String,
    stack: Vec<MacroFrame>,
}

impl<'a> Iterator for MacroIter<'a> {
    type Item = (String, &'a MacroInst);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(&MacroFrame {
            id,
            next_macro,
            next_child,
            path_len,
        }) = self.stack.last()
        {
            let module = self.design.module(id);
            if next_macro < module.macros.len() {
                self.stack.last_mut().expect("frame exists").next_macro += 1;
                let mac = &module.macros[next_macro];
                self.path.truncate(path_len);
                let full = if self.path.is_empty() {
                    mac.name.clone()
                } else {
                    format!("{}/{}", self.path, mac.name)
                };
                return Some((full, mac));
            }
            if next_child < module.children.len() {
                self.stack.last_mut().expect("frame exists").next_child += 1;
                let child = &module.children[next_child];
                self.path.truncate(path_len);
                if !self.path.is_empty() {
                    self.path.push('/');
                }
                self.path.push_str(&child.name);
                self.stack.push(MacroFrame {
                    id: child.module,
                    next_macro: 0,
                    next_child: 0,
                    path_len: self.path.len(),
                });
            } else {
                self.stack.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Instance;

    fn two_level() -> Design {
        let mut d = Design::new("t");
        let leaf = d.add_module(Module::new("leaf"));
        let mut mid = Module::new("mid");
        mid.children.push(Instance {
            name: "l0".into(),
            module: leaf,
        });
        mid.children.push(Instance {
            name: "l1".into(),
            module: leaf,
        });
        let mid = d.add_module(mid);
        let mut top = Module::new("top");
        for i in 0..3 {
            top.children.push(Instance {
                name: format!("m{i}"),
                module: mid,
            });
        }
        let top = d.add_module(top);
        d.set_top(top);
        d
    }

    #[test]
    fn validate_accepts_dag() {
        assert!(two_level().validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_top() {
        let d = Design::new("x");
        assert_eq!(d.validate(), Err(ValidateDesignError::MissingTop));
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut d = Design::new("x");
        let a = d.add_module(Module::new("a"));
        let b = d.add_module(Module::new("b"));
        d.module_mut(a).children.push(Instance {
            name: "u".into(),
            module: b,
        });
        d.module_mut(b).children.push(Instance {
            name: "v".into(),
            module: a,
        });
        d.set_top(a);
        assert!(matches!(
            d.validate(),
            Err(ValidateDesignError::InstantiationCycle(_))
        ));
    }

    #[test]
    fn validate_rejects_self_cycle() {
        let mut d = Design::new("x");
        let a = d.add_module(Module::new("a"));
        d.module_mut(a).children.push(Instance {
            name: "u".into(),
            module: a,
        });
        d.set_top(a);
        assert_eq!(
            d.validate(),
            Err(ValidateDesignError::InstantiationCycle("a".into()))
        );
    }

    #[test]
    fn validate_rejects_duplicate_module_names() {
        let mut d = Design::new("x");
        let a = d.add_module(Module::new("a"));
        d.add_module(Module::new("a"));
        d.set_top(a);
        assert_eq!(
            d.validate(),
            Err(ValidateDesignError::DuplicateModuleName("a".into()))
        );
    }

    #[test]
    fn validate_rejects_duplicate_instance_names() {
        let mut d = Design::new("x");
        let leaf = d.add_module(Module::new("leaf"));
        let mut top = Module::new("top");
        for _ in 0..2 {
            top.children.push(Instance {
                name: "u0".into(),
                module: leaf,
            });
        }
        let top = d.add_module(top);
        d.set_top(top);
        assert!(matches!(
            d.validate(),
            Err(ValidateDesignError::DuplicateInstanceName { .. })
        ));
    }

    #[test]
    fn multiplicities_multiply_through_hierarchy() {
        let d = two_level();
        let mult = d.multiplicities();
        let leaf = d.module_by_name("leaf").unwrap();
        let mid = d.module_by_name("mid").unwrap();
        let top = d.module_by_name("top").unwrap();
        assert_eq!(mult[top.index()], 1);
        assert_eq!(mult[mid.index()], 3);
        assert_eq!(mult[leaf.index()], 6);
    }

    #[test]
    fn visit_builds_hierarchical_paths() {
        let d = two_level();
        let mut paths = Vec::new();
        d.visit_instances(|p, _| paths.push(p.to_string()));
        assert!(paths.contains(&"".to_string()));
        assert!(paths.contains(&"m1/l0".to_string()));
        assert_eq!(paths.len(), 1 + 3 + 6);
        // Pre-order: a parent instance is visited before its children.
        let pos = |s: &str| paths.iter().position(|p| p == s).unwrap();
        assert!(pos("m1") < pos("m1/l0"));
        assert!(pos("m1/l0") < pos("m1/l1"));
        assert!(pos("m0") < pos("m1"));
    }

    /// A linear chain deep enough that recursive walks would overflow
    /// the call stack. All hierarchy traversals must be iterative.
    fn deep_chain(levels: usize) -> Design {
        use crate::module::{MacroInst, MemoryRole};
        use ggpu_tech::sram::SramConfig;
        let mut d = Design::new("deep");
        let mut leaf = Module::new("m0");
        leaf.macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(64, 8),
            MemoryRole::Other,
            0.5,
        ));
        let mut prev = d.add_module(leaf);
        for i in 1..levels {
            let mut m = Module::new(format!("m{i}"));
            m.children.push(Instance {
                name: "c".into(),
                module: prev,
            });
            prev = d.add_module(m);
        }
        d.set_top(prev);
        d
    }

    #[test]
    fn deep_hierarchy_walks_do_not_overflow_the_stack() {
        // >= 10k levels per the extended-CU requirement; 50k to leave
        // no doubt a recursive walk (~100+ bytes/frame) would have
        // blown the 2 MiB test-thread stack.
        const LEVELS: usize = 50_000;
        let d = deep_chain(LEVELS);
        assert!(d.validate().is_ok());
        let mult = d.multiplicities();
        assert!(mult.iter().all(|&m| m == 1));
        let mut visited = 0usize;
        let mut deepest = 0usize;
        d.visit_instances(|p, _| {
            visited += 1;
            deepest = deepest.max(p.len());
        });
        assert_eq!(visited, LEVELS);
        // The deepest path is LEVELS-1 segments of "c" + separators.
        assert_eq!(deepest, 2 * (LEVELS - 1) - 1);
        let macros: Vec<_> = d.all_macros().collect();
        assert_eq!(macros.len(), 1);
        assert!(macros[0].0.ends_with("/ram"));
    }

    #[test]
    fn all_macros_reports_full_paths() {
        use crate::module::{MacroInst, MemoryRole};
        use ggpu_tech::sram::SramConfig;
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf).macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(64, 8),
            MemoryRole::Other,
            0.5,
        ));
        let macros: Vec<(String, &MacroInst)> = d.all_macros().collect();
        assert_eq!(macros.len(), 6);
        assert!(macros.iter().any(|(p, _)| p == "m2/l1/ram"));
        // Order matches visit_instances (pre-order by instance).
        assert_eq!(macros[0].0, "m0/l0/ram");
        // The iterator borrows: no MacroInst is cloned.
        assert!(std::ptr::eq(
            macros[0].1,
            d.module(leaf).find_macro("ram").unwrap()
        ));
    }

    #[test]
    fn all_macros_order_interleaves_own_macros_before_children() {
        use crate::module::{MacroInst, MemoryRole};
        use ggpu_tech::sram::SramConfig;
        let mut d = Design::new("t");
        let leaf = d.add_module(Module::new("leaf").with_macro(MacroInst::new(
            "l_ram",
            SramConfig::dual(64, 8),
            MemoryRole::Other,
            0.5,
        )));
        let mut top = Module::new("top").with_macro(MacroInst::new(
            "t_ram",
            SramConfig::dual(64, 8),
            MemoryRole::Other,
            0.5,
        ));
        top.children.push(Instance {
            name: "u0".into(),
            module: leaf,
        });
        let top = d.add_module(top);
        d.set_top(top);
        let names: Vec<String> = d.all_macros().map(|(p, _)| p).collect();
        assert_eq!(names, vec!["t_ram".to_string(), "u0/l_ram".to_string()]);
    }

    #[test]
    fn fingerprints_are_cached_and_invalidated_on_mutation() {
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        let fp1 = d.module_fingerprint(leaf);
        assert_eq!(fp1, d.module_fingerprint(leaf), "stable while unmutated");
        let whole1 = d.structural_fingerprint();
        assert_eq!(whole1, d.structural_fingerprint());

        // Mutating one module changes its fingerprint and the design's.
        d.module_mut(leaf).name = "leaf2".into();
        assert_ne!(d.module_fingerprint(leaf), fp1);
        assert_ne!(d.structural_fingerprint(), whole1);

        // An untouched sibling keeps its fingerprint.
        let mid = d.module_by_name("mid").unwrap();
        let mid_fp = d.module_fingerprint(mid);
        d.module_mut(leaf).name = "leaf".into();
        assert_eq!(d.module_fingerprint(mid), mid_fp);
        assert_eq!(d.module_fingerprint(leaf), fp1, "content round-trip");
        assert_eq!(d.structural_fingerprint(), whole1);
    }

    #[test]
    fn clone_preserves_fingerprints_and_equality_ignores_cache() {
        let d = two_level();
        let fp = d.structural_fingerprint(); // warm the cache
        let cold = two_level(); // nothing computed
        assert_eq!(d, cold, "cache state must not affect equality");
        let cloned = d.clone();
        assert_eq!(cloned.structural_fingerprint(), fp);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let d = two_level();
        let mut variant = d.clone();
        // A fresh clone shares every module with its origin.
        assert_eq!(variant.shared_modules_with(&d), d.module_count());
        // Mutating one module breaks sharing for exactly that module.
        let leaf = variant.module_by_name("leaf").unwrap();
        variant.module_mut(leaf).name = "leaf_x".into();
        assert_eq!(variant.shared_modules_with(&d), d.module_count() - 1);
        // The origin is untouched.
        assert!(d.module_by_name("leaf").is_some());
        assert!(d.module_by_name("leaf_x").is_none());
        // Deep clone shares nothing but is content-equal.
        let deep = d.deep_clone();
        assert_eq!(deep.shared_modules_with(&d), 0);
        assert_eq!(deep, d);
    }

    #[test]
    fn clone_counters_are_monotone() {
        let before_clones = design_clone_count();
        let before_copies = module_copy_count();
        let d = two_level();
        let mut v = d.clone();
        let _ = d.deep_clone();
        let leaf = v.module_by_name("leaf").unwrap();
        v.module_mut(leaf).name = "leaf2".into();
        // Parallel tests share the process-wide counters, so only a
        // floor can be asserted: >= 2 design clones (clone +
        // deep_clone), >= module_count + 1 module copies (deep clone
        // forces all, the CoW break adds one).
        assert!(design_clone_count() >= before_clones + 2);
        assert!(module_copy_count() > before_copies + d.module_count() as u64);
    }

    #[test]
    fn unshared_module_mut_does_not_count_a_copy() {
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        // Warm: touch once so any lazy state settles.
        d.module_mut(leaf).name = "leaf".into();
        // A design that shares nothing pays no copy for mutation; we
        // can't assert the global counter exactly (parallel tests),
        // but we can assert sharing stays local.
        let observer = d.clone();
        d.module_mut(leaf).name = "leaf_b".into();
        assert_eq!(d.shared_modules_with(&observer), d.module_count() - 1);
        d.module_mut(leaf).name = "leaf_c".into();
        // Second mutation of the now-unshared module keeps sharing.
        assert_eq!(d.shared_modules_with(&observer), d.module_count() - 1);
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        let fp_before = d.structural_fingerprint(); // warm every slot
        let leaf_fp = d.module_fingerprint(leaf);
        let snap = d.snapshot_module(leaf);
        assert_eq!(snap.id(), leaf);

        d.module_mut(leaf).name = "mutant".into();
        d.module_mut(leaf)
            .groups
            .push(crate::module::CellGroup::new(
                "junk",
                ggpu_tech::stdcell::CellClass::Inv,
                7,
                0.1,
            ));
        assert_ne!(d.structural_fingerprint(), fp_before);

        d.restore_module(snap);
        assert_eq!(d.structural_fingerprint(), fp_before);
        // The restored fingerprint slot is still *warm* (it was
        // captured filled), so no re-hash is needed.
        assert_eq!(d.module_fingerprint(leaf), leaf_fp);
        assert_eq!(d, two_level());
    }

    #[test]
    fn structural_fingerprint_ignores_design_name() {
        let mut a = two_level();
        let b = two_level();
        a.set_name("renamed_variant");
        assert_ne!(a, b, "names differ so designs differ");
        assert_eq!(
            a.structural_fingerprint(),
            b.structural_fingerprint(),
            "structure is identical"
        );
    }

    #[test]
    fn identical_module_content_fingerprints_equal_across_designs() {
        let a = two_level();
        let b = two_level();
        let la = a.module_by_name("leaf").unwrap();
        let lb = b.module_by_name("leaf").unwrap();
        assert_eq!(a.module_fingerprint(la), b.module_fingerprint(lb));
    }

    #[test]
    fn module_lookup() {
        let d = two_level();
        assert!(d.module_by_name("mid").is_some());
        assert!(d.module_by_name("nope").is_none());
        assert_eq!(d.module_count(), 3);
    }
}
